//! Probability-trace synthesis and construction from real classifiers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A per-window probability stream with ground-truth event positions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityTrace {
    /// Probability of the target class for each classification window.
    pub probs: Vec<f32>,
    /// Window indices at which true events are centered.
    pub truth: Vec<usize>,
}

impl ProbabilityTrace {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// Parameters for synthetic trace generation — the "synthetically
/// generated data" input mode of the calibration tool.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Total classification windows.
    pub windows: usize,
    /// Number of true events to embed.
    pub events: usize,
    /// Windows each event's probability bump spans.
    pub event_width: usize,
    /// Peak probability during an event (before noise).
    pub event_peak: f32,
    /// Background probability level (before noise).
    pub background: f32,
    /// Uniform noise amplitude added everywhere.
    pub noise: f32,
    /// Probability that a background window spikes (model false positives).
    pub spike_rate: f32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            windows: 600,
            events: 6,
            event_width: 4,
            event_peak: 0.92,
            background: 0.08,
            noise: 0.06,
            spike_rate: 0.01,
        }
    }
}

impl TraceConfig {
    /// Generates a deterministic trace.
    ///
    /// Events are spread evenly with jitter; each spans `event_width`
    /// windows with a triangular profile peaking at `event_peak`.
    ///
    /// # Panics
    ///
    /// Panics if `windows == 0` while `events > 0`.
    pub fn generate(&self, seed: u64) -> ProbabilityTrace {
        assert!(self.windows > 0 || self.events == 0, "cannot embed events in zero windows");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probs: Vec<f32> = (0..self.windows)
            .map(|_| {
                let base = if rng.gen::<f32>() < self.spike_rate {
                    self.event_peak // a model false positive
                } else {
                    self.background
                };
                (base + rng.gen_range(-self.noise..=self.noise)).clamp(0.0, 1.0)
            })
            .collect();
        let mut truth = Vec::with_capacity(self.events);
        if self.events > 0 {
            let stride = self.windows / (self.events + 1);
            for e in 1..=self.events {
                let jitter = if stride > 4 {
                    rng.gen_range(0..stride / 4) as isize - (stride / 8) as isize
                } else {
                    0
                };
                let center =
                    ((e * stride) as isize + jitter).clamp(0, self.windows as isize - 1) as usize;
                truth.push(center);
                let half = (self.event_width / 2).max(1) as isize;
                for off in -half..=half {
                    let idx = center as isize + off;
                    if idx < 0 || idx as usize >= self.windows {
                        continue;
                    }
                    let falloff = 1.0 - (off.unsigned_abs() as f32 / (half as f32 + 1.0));
                    let p = self.event_peak * falloff.max(0.4)
                        + rng.gen_range(-self.noise..=self.noise);
                    probs[idx as usize] = p.clamp(0.0, 1.0);
                }
            }
        }
        truth.sort_unstable();
        ProbabilityTrace { probs, truth }
    }
}

/// Builds a trace by sliding a real classifier over a composed raw stream.
///
/// `stream` is the raw signal; `truth_sample_positions` the sample indices
/// where true events start; `window`/`stride` the classification geometry;
/// `classify` returns the target-class probability for one raw window.
///
/// This is the "user-supplied raw data along with the trained model" input
/// mode of the calibration tool.
pub fn trace_from_classifier<F>(
    stream: &[f32],
    truth_sample_positions: &[usize],
    window: usize,
    stride: usize,
    mut classify: F,
) -> ProbabilityTrace
where
    F: FnMut(&[f32]) -> f32,
{
    let mut probs = Vec::new();
    let mut start = 0usize;
    while start + window <= stream.len() {
        probs.push(classify(&stream[start..start + window]));
        start += stride;
    }
    let truth = truth_sample_positions
        .iter()
        .filter(|&&p| p / stride.max(1) < probs.len())
        .map(|&p| p / stride.max(1))
        .collect();
    ProbabilityTrace { probs, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.generate(1), cfg.generate(1));
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn events_embedded_at_truth_positions() {
        let cfg = TraceConfig { noise: 0.0, spike_rate: 0.0, ..TraceConfig::default() };
        let trace = cfg.generate(3);
        assert_eq!(trace.truth.len(), 6);
        for &t in &trace.truth {
            assert!(trace.probs[t] > 0.8, "event at {t} has prob {}", trace.probs[t]);
        }
        // background stays low
        let background_windows = trace
            .probs
            .iter()
            .enumerate()
            .filter(|(i, _)| trace.truth.iter().all(|&t| i.abs_diff(t) > 5))
            .map(|(_, &p)| p);
        for p in background_windows {
            assert!(p < 0.2, "background prob {p}");
        }
    }

    #[test]
    fn zero_events_trace() {
        let cfg = TraceConfig { events: 0, spike_rate: 0.0, ..TraceConfig::default() };
        let trace = cfg.generate(1);
        assert!(trace.truth.is_empty());
        assert_eq!(trace.len(), 600);
    }

    #[test]
    fn classifier_trace_geometry() {
        // fake classifier: probability 1 when the window mean exceeds 0.5
        let mut stream = vec![0.0f32; 1000];
        for v in stream[400..500].iter_mut() {
            *v = 1.0;
        }
        let trace = trace_from_classifier(&stream, &[400], 100, 50, |w| {
            if w.iter().sum::<f32>() / w.len() as f32 > 0.5 {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(trace.len(), (1000 - 100) / 50 + 1);
        assert_eq!(trace.truth, vec![8]);
        assert!(trace.probs[8] > 0.5);
        assert!(trace.probs[0] < 0.5);
    }
}
