//! The streaming post-processing chain and its FAR/FRR metrics.

/// Post-processing applied to the per-window probability of the target
/// class before declaring an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostProcessConfig {
    /// Moving-average length over consecutive window probabilities
    /// (1 disables smoothing).
    pub mean_filter: usize,
    /// Detection threshold on the smoothed probability.
    pub threshold: f32,
    /// Windows to suppress after a detection (debounce).
    pub suppression: usize,
}

impl Default for PostProcessConfig {
    fn default() -> Self {
        PostProcessConfig { mean_filter: 3, threshold: 0.8, suppression: 5 }
    }
}

impl PostProcessConfig {
    /// Clamps all fields into their valid domains (used after mutation).
    pub fn clamped(self) -> PostProcessConfig {
        PostProcessConfig {
            mean_filter: self.mean_filter.clamp(1, 32),
            threshold: self.threshold.clamp(0.05, 0.999),
            suppression: self.suppression.min(64),
        }
    }
}

/// Runs a [`PostProcessConfig`] over a probability stream.
#[derive(Debug, Clone)]
pub struct EventDetector {
    config: PostProcessConfig,
}

impl EventDetector {
    /// Creates a detector (config is clamped to valid ranges).
    pub fn new(config: PostProcessConfig) -> EventDetector {
        EventDetector { config: config.clamped() }
    }

    /// The active configuration.
    pub fn config(&self) -> PostProcessConfig {
        self.config
    }

    /// Returns the window indices at which events fire.
    pub fn detect(&self, probs: &[f32]) -> Vec<usize> {
        let mut events = Vec::new();
        let k = self.config.mean_filter;
        let mut suppressed_until = 0usize;
        for i in 0..probs.len() {
            if i < suppressed_until {
                continue;
            }
            let start = (i + 1).saturating_sub(k);
            let window = &probs[start..=i];
            let mean = window.iter().sum::<f32>() / window.len() as f32;
            if mean >= self.config.threshold {
                events.push(i);
                suppressed_until = i + 1 + self.config.suppression;
            }
        }
        events
    }
}

/// FAR/FRR metrics of one detector run against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectionMetrics {
    /// True events detected.
    pub hits: usize,
    /// True events missed.
    pub misses: usize,
    /// Detections with no matching true event.
    pub false_accepts: usize,
    /// False-acceptance rate: false accepts per 1000 windows.
    pub far_per_1k: f32,
    /// False-rejection rate: fraction of true events missed (0–1).
    pub frr: f32,
}

/// Scores detections against ground-truth event positions.
///
/// A detection within `tolerance` windows of a true event counts as a hit
/// for that event (each event matches at most one detection; extra
/// detections are false accepts).
pub fn score_detections(
    detections: &[usize],
    truth: &[usize],
    tolerance: usize,
    total_windows: usize,
) -> DetectionMetrics {
    let mut matched_truth = vec![false; truth.len()];
    let mut false_accepts = 0usize;
    for &d in detections {
        let hit = truth
            .iter()
            .enumerate()
            .find(|(ti, &t)| !matched_truth[*ti] && d.abs_diff(t) <= tolerance);
        match hit {
            Some((ti, _)) => matched_truth[ti] = true,
            None => false_accepts += 1,
        }
    }
    let hits = matched_truth.iter().filter(|&&m| m).count();
    let misses = truth.len() - hits;
    DetectionMetrics {
        hits,
        misses,
        false_accepts,
        far_per_1k: if total_windows == 0 {
            0.0
        } else {
            false_accepts as f32 * 1000.0 / total_windows as f32
        },
        frr: if truth.is_empty() { 0.0 } else { misses as f32 / truth.len() as f32 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_controls_firing() {
        let probs = vec![0.1, 0.2, 0.95, 0.1, 0.1];
        let strict = EventDetector::new(PostProcessConfig {
            mean_filter: 1,
            threshold: 0.9,
            suppression: 0,
        });
        assert_eq!(strict.detect(&probs), vec![2]);
        let lax = EventDetector::new(PostProcessConfig {
            mean_filter: 1,
            threshold: 0.15,
            suppression: 0,
        });
        assert_eq!(lax.detect(&probs), vec![1, 2], "0.2 and 0.95 clear the 0.15 threshold");
    }

    #[test]
    fn mean_filter_suppresses_single_spikes() {
        // one-window spike in noise
        let probs = vec![0.1, 0.1, 0.99, 0.1, 0.1, 0.1];
        let smoothed = EventDetector::new(PostProcessConfig {
            mean_filter: 3,
            threshold: 0.6,
            suppression: 0,
        });
        assert!(smoothed.detect(&probs).is_empty(), "spike must be averaged away");
        // a sustained event survives smoothing
        let sustained = vec![0.1, 0.9, 0.95, 0.9, 0.1];
        assert!(!smoothed.detect(&sustained).is_empty());
    }

    #[test]
    fn suppression_debounces() {
        let probs = vec![0.95; 10];
        let detector = EventDetector::new(PostProcessConfig {
            mean_filter: 1,
            threshold: 0.5,
            suppression: 4,
        });
        // fires at 0, suppressed until 5, fires at 5
        assert_eq!(detector.detect(&probs), vec![0, 5]);
    }

    #[test]
    fn clamping_repairs_degenerate_configs() {
        let cfg = PostProcessConfig { mean_filter: 0, threshold: 7.0, suppression: 1000 }.clamped();
        assert_eq!(cfg.mean_filter, 1);
        assert!(cfg.threshold <= 0.999);
        assert_eq!(cfg.suppression, 64);
    }

    #[test]
    fn scoring_hits_and_false_accepts() {
        let metrics = score_detections(&[10, 50, 80], &[11, 48], 3, 1000);
        assert_eq!(metrics.hits, 2);
        assert_eq!(metrics.misses, 0);
        assert_eq!(metrics.false_accepts, 1);
        assert!((metrics.far_per_1k - 1.0).abs() < 1e-6);
        assert_eq!(metrics.frr, 0.0);
    }

    #[test]
    fn scoring_counts_misses() {
        let metrics = score_detections(&[], &[5, 10], 2, 100);
        assert_eq!(metrics.misses, 2);
        assert_eq!(metrics.frr, 1.0);
        assert_eq!(metrics.false_accepts, 0);
    }

    #[test]
    fn one_event_matches_one_detection() {
        // two detections near the same truth: second is a false accept
        let metrics = score_detections(&[10, 12], &[11], 3, 100);
        assert_eq!(metrics.hits, 1);
        assert_eq!(metrics.false_accepts, 1);
    }

    #[test]
    fn empty_cases() {
        let metrics = score_detections(&[], &[], 2, 0);
        assert_eq!(metrics.far_per_1k, 0.0);
        assert_eq!(metrics.frr, 0.0);
    }
}
