//! The genetic algorithm that searches post-processing configurations.

use crate::postprocess::{score_detections, DetectionMetrics, EventDetector, PostProcessConfig};
use crate::stream::ProbabilityTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f32,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Window tolerance when matching detections to truth.
    pub match_tolerance: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 20,
            mutation_rate: 0.3,
            tournament: 3,
            match_tolerance: 4,
            seed: 11,
        }
    }
}

/// A configuration with its measured trade-off point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredConfig {
    /// The post-processing configuration.
    pub config: PostProcessConfig,
    /// Aggregate metrics over all calibration traces.
    pub metrics: DetectionMetrics,
    /// Scalar fitness (higher is better) under the weighting it was
    /// evolved with.
    pub fitness: f32,
}

/// Evaluates one configuration over all traces.
pub fn evaluate(
    config: PostProcessConfig,
    traces: &[ProbabilityTrace],
    tolerance: usize,
) -> DetectionMetrics {
    let detector = EventDetector::new(config);
    let mut agg = DetectionMetrics::default();
    let mut total_windows = 0usize;
    let mut total_truth = 0usize;
    for trace in traces {
        let detections = detector.detect(&trace.probs);
        let m = score_detections(&detections, &trace.truth, tolerance, trace.len());
        agg.hits += m.hits;
        agg.misses += m.misses;
        agg.false_accepts += m.false_accepts;
        total_windows += trace.len();
        total_truth += trace.truth.len();
    }
    agg.far_per_1k = if total_windows == 0 {
        0.0
    } else {
        agg.false_accepts as f32 * 1000.0 / total_windows as f32
    };
    agg.frr = if total_truth == 0 { 0.0 } else { agg.misses as f32 / total_truth as f32 };
    agg
}

/// Scalar fitness: negative weighted cost of FAR and FRR.
fn fitness(metrics: DetectionMetrics, far_weight: f32, frr_weight: f32) -> f32 {
    -(far_weight * metrics.far_per_1k + frr_weight * metrics.frr * 100.0)
}

fn random_config(rng: &mut StdRng) -> PostProcessConfig {
    PostProcessConfig {
        mean_filter: rng.gen_range(1..=8),
        threshold: rng.gen_range(0.2f32..0.95),
        suppression: rng.gen_range(0..=16),
    }
}

fn mutate(config: PostProcessConfig, rate: f32, rng: &mut StdRng) -> PostProcessConfig {
    let mut c = config;
    if rng.gen::<f32>() < rate {
        c.mean_filter = (c.mean_filter as i64 + rng.gen_range(-2i64..=2)).max(1) as usize;
    }
    if rng.gen::<f32>() < rate {
        c.threshold += rng.gen_range(-0.1f32..=0.1);
    }
    if rng.gen::<f32>() < rate {
        c.suppression = (c.suppression as i64 + rng.gen_range(-3i64..=3)).max(0) as usize;
    }
    c.clamped()
}

fn crossover(a: PostProcessConfig, b: PostProcessConfig, rng: &mut StdRng) -> PostProcessConfig {
    PostProcessConfig {
        mean_filter: if rng.gen() { a.mean_filter } else { b.mean_filter },
        threshold: if rng.gen() { a.threshold } else { b.threshold },
        suppression: if rng.gen() { a.suppression } else { b.suppression },
    }
}

/// Runs the GA once with a fixed FAR/FRR weighting, returning the best
/// configuration found and the full evaluation archive.
fn evolve(
    traces: &[ProbabilityTrace],
    config: &GaConfig,
    far_weight: f32,
    frr_weight: f32,
    seed: u64,
    archive: &mut Vec<ScoredConfig>,
) -> ScoredConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut population: Vec<PostProcessConfig> =
        (0..config.population).map(|_| random_config(&mut rng)).collect();
    let score = |c: PostProcessConfig, archive: &mut Vec<ScoredConfig>| -> ScoredConfig {
        let metrics = evaluate(c, traces, config.match_tolerance);
        let scored =
            ScoredConfig { config: c, metrics, fitness: fitness(metrics, far_weight, frr_weight) };
        archive.push(scored.clone());
        scored
    };
    let mut best = score(population[0], archive);
    for _gen in 0..config.generations {
        let scored: Vec<ScoredConfig> = population.iter().map(|&c| score(c, archive)).collect();
        for s in &scored {
            if s.fitness > best.fitness {
                best = s.clone();
            }
        }
        // tournament selection + crossover + mutation, with elitism
        let mut next = vec![best.config];
        while next.len() < config.population {
            let pick = |rng: &mut StdRng| -> PostProcessConfig {
                let mut champion = &scored[rng.gen_range(0..scored.len())];
                for _ in 1..config.tournament {
                    let challenger = &scored[rng.gen_range(0..scored.len())];
                    if challenger.fitness > champion.fitness {
                        champion = challenger;
                    }
                }
                champion.config
            };
            let a = pick(&mut rng);
            let b = pick(&mut rng);
            next.push(mutate(crossover(a, b, &mut rng), config.mutation_rate, &mut rng));
        }
        population = next;
    }
    best
}

/// Calibrates post-processing for a set of traces: evolves configurations
/// under several FAR/FRR weightings and returns the Pareto-optimal
/// suggestions (sorted from lowest FAR to lowest FRR) — the list of
/// configurations the tool presents to the user.
pub fn calibrate(traces: &[ProbabilityTrace], config: &GaConfig) -> Vec<ScoredConfig> {
    let mut archive: Vec<ScoredConfig> = Vec::new();
    // sweep the trade-off: FAR-averse ... balanced ... FRR-averse
    let weightings = [(10.0, 1.0), (3.0, 1.0), (1.0, 1.0), (1.0, 3.0), (1.0, 10.0)];
    for (i, &(fw, rw)) in weightings.iter().enumerate() {
        evolve(traces, config, fw, rw, config.seed.wrapping_add(i as u64), &mut archive);
    }
    // pareto-filter the archive on (far, frr)
    let mut front: Vec<ScoredConfig> = Vec::new();
    for s in &archive {
        let dominated = archive.iter().any(|o| {
            (o.metrics.far_per_1k < s.metrics.far_per_1k && o.metrics.frr <= s.metrics.frr)
                || (o.metrics.far_per_1k <= s.metrics.far_per_1k && o.metrics.frr < s.metrics.frr)
        });
        if !dominated
            && !front.iter().any(|f| {
                f.metrics.far_per_1k == s.metrics.far_per_1k && f.metrics.frr == s.metrics.frr
            })
        {
            front.push(s.clone());
        }
    }
    front.sort_by(|a, b| {
        a.metrics
            .far_per_1k
            .partial_cmp(&b.metrics.far_per_1k)
            .expect("finite far")
            .then(a.metrics.frr.partial_cmp(&b.metrics.frr).expect("finite frr"))
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TraceConfig;

    fn traces() -> Vec<ProbabilityTrace> {
        (0..3).map(|s| TraceConfig::default().generate(s)).collect()
    }

    #[test]
    fn evaluate_aggregates_across_traces() {
        let ts = traces();
        let metrics = evaluate(PostProcessConfig::default(), &ts, 4);
        let total_truth: usize = ts.iter().map(|t| t.truth.len()).sum();
        assert_eq!(metrics.hits + metrics.misses, total_truth);
    }

    #[test]
    fn degenerate_thresholds_behave() {
        let ts = traces();
        // threshold ~0: everything fires -> no misses, many false accepts
        let lax =
            evaluate(PostProcessConfig { mean_filter: 1, threshold: 0.05, suppression: 0 }, &ts, 4);
        assert_eq!(lax.frr, 0.0);
        assert!(lax.far_per_1k > 50.0);
        // threshold ~1: nothing fires -> FRR = 1, FAR = 0
        let strict = evaluate(
            PostProcessConfig { mean_filter: 1, threshold: 0.999, suppression: 0 },
            &ts,
            4,
        );
        assert_eq!(strict.frr, 1.0);
        assert_eq!(strict.far_per_1k, 0.0);
    }

    #[test]
    fn calibrate_returns_pareto_front() {
        let ts = traces();
        let cfg = GaConfig { population: 12, generations: 8, ..GaConfig::default() };
        let suggestions = calibrate(&ts, &cfg);
        assert!(!suggestions.is_empty());
        // no member dominates another
        for a in &suggestions {
            for b in &suggestions {
                let dominates =
                    a.metrics.far_per_1k < b.metrics.far_per_1k && a.metrics.frr < b.metrics.frr;
                assert!(!dominates, "pareto front contains dominated member");
            }
        }
        // sorted by far ascending
        for pair in suggestions.windows(2) {
            assert!(pair[0].metrics.far_per_1k <= pair[1].metrics.far_per_1k);
        }
    }

    #[test]
    fn ga_finds_good_operating_point() {
        let ts = traces();
        let cfg = GaConfig { population: 16, generations: 12, ..GaConfig::default() };
        let suggestions = calibrate(&ts, &cfg);
        // on clean synthetic traces a balanced config should get most
        // events with few false accepts
        let best_balanced = suggestions
            .iter()
            .min_by(|a, b| {
                let ca = a.metrics.far_per_1k + a.metrics.frr * 100.0;
                let cb = b.metrics.far_per_1k + b.metrics.frr * 100.0;
                ca.partial_cmp(&cb).unwrap()
            })
            .unwrap();
        assert!(best_balanced.metrics.frr < 0.35, "frr {}", best_balanced.metrics.frr);
        assert!(
            best_balanced.metrics.far_per_1k < 20.0,
            "far {}",
            best_balanced.metrics.far_per_1k
        );
    }

    #[test]
    fn calibrate_deterministic() {
        let ts = traces();
        let cfg = GaConfig { population: 8, generations: 4, ..GaConfig::default() };
        let a = calibrate(&ts, &cfg);
        let b = calibrate(&ts, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.config, y.config);
        }
    }
}
