//! Continuous (streaming) classification with calibrated post-processing.
//!
//! On-device keyword spotting never sees isolated clips: audio streams in,
//! the impulse classifies overlapping windows, and the calibrated
//! post-processing chain turns per-window probabilities into *events*.
//! [`ContinuousClassifier`] is that runtime: push samples as they arrive,
//! get back the events that fired. The detection chain is causal, so
//! streaming results are identical to batch-processing the same signal.

use crate::postprocess::{EventDetector, PostProcessConfig};
use ei_core::impulse::TrainedImpulse;
use ei_core::Result;
use ei_runtime::ModelArtifact;

/// An event fired by the streaming post-processing chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedEvent {
    /// Classification-window index at which the event fired.
    pub window_index: usize,
    /// Sample offset of the window's start within the stream.
    pub sample_offset: usize,
    /// Smoothed probability at firing time.
    pub probability: f32,
}

/// Sliding-window streaming classifier for one target class.
#[derive(Debug, Clone)]
pub struct ContinuousClassifier {
    impulse: TrainedImpulse,
    artifact: ModelArtifact,
    detector: EventDetector,
    target_class: usize,
    stride: usize,
    /// Raw samples not yet fully consumed.
    buffer: Vec<f32>,
    /// Absolute sample offset of `buffer[0]` within the stream.
    buffer_offset: usize,
    /// Per-window probabilities so far.
    probs: Vec<f32>,
    /// Number of events already reported.
    reported: usize,
}

impl ContinuousClassifier {
    /// Creates a streaming classifier.
    ///
    /// `stride` is the hop between consecutive windows in samples;
    /// `target_class` indexes [`TrainedImpulse::labels`].
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `target_class` is out of range.
    pub fn new(
        impulse: TrainedImpulse,
        artifact: ModelArtifact,
        target_class: usize,
        stride: usize,
        config: PostProcessConfig,
    ) -> ContinuousClassifier {
        assert!(stride > 0, "stride must be non-zero");
        assert!(target_class < impulse.labels().len(), "target class out of range");
        ContinuousClassifier {
            impulse,
            artifact,
            detector: EventDetector::new(config),
            target_class,
            stride,
            buffer: Vec::new(),
            buffer_offset: 0,
            probs: Vec::new(),
            reported: 0,
        }
    }

    /// The label being detected.
    pub fn target_label(&self) -> &str {
        &self.impulse.labels()[self.target_class]
    }

    /// Number of classification windows processed so far.
    pub fn windows_processed(&self) -> usize {
        self.probs.len()
    }

    /// Feeds new samples; returns events that fired since the last call.
    ///
    /// # Errors
    ///
    /// Propagates classification failures.
    pub fn push(&mut self, samples: &[f32]) -> Result<Vec<DetectedEvent>> {
        self.buffer.extend_from_slice(samples);
        let window = self.impulse.design().window_samples;
        // classify every complete window
        while self.buffer.len() >= window {
            let result = self.impulse.classify_with(&self.artifact, &self.buffer[..window])?;
            self.probs.push(result.probabilities[self.target_class]);
            let advance = self.stride.min(self.buffer.len());
            self.buffer.drain(..advance);
            self.buffer_offset += advance;
        }
        // causal detection: re-running on the longer prefix cannot change
        // already-reported events
        let detections = self.detector.detect(&self.probs);
        let fresh: Vec<DetectedEvent> = detections[self.reported.min(detections.len())..]
            .iter()
            .map(|&window_index| DetectedEvent {
                window_index,
                sample_offset: window_index * self.stride,
                probability: self.smoothed_at(window_index),
            })
            .collect();
        self.reported = detections.len();
        Ok(fresh)
    }

    fn smoothed_at(&self, i: usize) -> f32 {
        let k = self.detector.config().mean_filter;
        let start = (i + 1).saturating_sub(k);
        let window = &self.probs[start..=i.min(self.probs.len() - 1)];
        window.iter().sum::<f32>() / window.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_core::impulse::ImpulseDesign;
    use ei_data::synth::KwsGenerator;
    use ei_dsp::{DspConfig, MfccConfig};
    use ei_nn::presets;
    use ei_nn::train::TrainConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn generator() -> KwsGenerator {
        KwsGenerator {
            classes: vec!["go".into()],
            sample_rate_hz: 8_000,
            duration_s: 0.25,
            noise: 0.03,
        }
    }

    /// "go" clips vs *white noise* backgrounds — the distribution the
    /// streaming classifier actually sees between keywords.
    fn spotter_dataset() -> ei_data::Dataset {
        use ei_data::{Sample, SensorKind};
        let gen = generator();
        let mut ds = ei_data::Dataset::new("stream");
        let mut rng = StdRng::seed_from_u64(77);
        for k in 0..20 {
            ds.add(Sample::new(0, gen.generate(0, k), SensorKind::Audio).with_label("go"));
            let noise: Vec<f32> = (0..2_000).map(|_| rng.gen_range(-0.06f32..0.06)).collect();
            ds.add(Sample::new(0, noise, SensorKind::Audio).with_label("background"));
        }
        ds
    }

    fn spotter() -> TrainedImpulse {
        let dataset = spotter_dataset();
        let design = ImpulseDesign::new(
            "stream",
            2_000,
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 20,
                sample_rate_hz: 8_000,
            }),
        )
        .unwrap();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
        design
            .train(
                &spec,
                &dataset,
                &TrainConfig { epochs: 16, learning_rate: 0.01, ..TrainConfig::default() },
            )
            .unwrap()
    }

    fn stream_with_keywords(positions: &[usize], len: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stream: Vec<f32> = (0..len).map(|_| rng.gen_range(-0.04f32..0.04)).collect();
        for (k, &pos) in positions.iter().enumerate() {
            let clip = generator().generate(0, 300 + k as u64);
            for (i, &v) in clip.iter().enumerate() {
                stream[pos + i] += v;
            }
        }
        stream
    }

    fn classifier(trained: TrainedImpulse) -> ContinuousClassifier {
        let artifact = trained.float_artifact();
        let go = trained.labels().iter().position(|l| l == "go").expect("'go' is a class");
        ContinuousClassifier::new(
            trained,
            artifact,
            go,
            500,
            PostProcessConfig { mean_filter: 1, threshold: 0.6, suppression: 6 },
        )
    }

    #[test]
    fn detects_embedded_keywords_near_their_positions() {
        let trained = spotter();
        let mut cc = classifier(trained);
        assert_eq!(cc.target_label(), "go");
        let positions = [4_000usize, 14_000];
        let stream = stream_with_keywords(&positions, 24_000);
        let mut events = Vec::new();
        // push in uneven chunks like a real audio driver
        for chunk in stream.chunks(733) {
            events.extend(cc.push(chunk).unwrap());
        }
        assert_eq!(events.len(), 2, "events: {events:?}");
        for (event, &pos) in events.iter().zip(&positions) {
            let distance = event.sample_offset.abs_diff(pos);
            assert!(distance <= 2_500, "event at {} vs keyword at {pos}", event.sample_offset);
            assert!(event.probability >= 0.6);
        }
    }

    #[test]
    fn quiet_stream_fires_nothing() {
        let mut cc = classifier(spotter());
        let mut rng = StdRng::seed_from_u64(9);
        let quiet: Vec<f32> = (0..16_000).map(|_| rng.gen_range(-0.03f32..0.03)).collect();
        let mut events = Vec::new();
        for chunk in quiet.chunks(1000) {
            events.extend(cc.push(chunk).unwrap());
        }
        assert!(events.is_empty(), "spurious events: {events:?}");
        assert!(cc.windows_processed() > 20);
    }

    #[test]
    fn streaming_equals_batch() {
        let trained = spotter();
        let stream = stream_with_keywords(&[5_000], 12_000);
        // streaming in chunks
        let mut chunked = classifier(trained.clone());
        let mut chunked_events = Vec::new();
        for chunk in stream.chunks(311) {
            chunked_events.extend(chunked.push(chunk).unwrap());
        }
        // one big push
        let mut whole = classifier(trained);
        let whole_events = whole.push(&stream).unwrap();
        assert_eq!(chunked_events, whole_events);
    }
}
