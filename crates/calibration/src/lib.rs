#![warn(missing_docs)]

//! Performance calibration for streaming event detection (paper §4.4).
//!
//! A deployed keyword spotter classifies overlapping windows continuously;
//! raw per-window probabilities must be post-processed (smoothed,
//! thresholded, debounced) before they become *events*. The calibration
//! tool "accepts an input of user-supplied raw data or synthetically
//! generated data along with the trained model. Using a genetic algorithm,
//! it suggests a number of optimal post-processing configurations that
//! trade off false acceptance rate (FAR) and false rejection rate (FRR)."
//!
//! * [`postprocess::PostProcessConfig`] / [`postprocess::EventDetector`] —
//!   the on-device post-processing chain;
//! * [`stream`] — synthetic probability-trace generation with known ground
//!   truth, plus a builder that runs a real classifier over a composed
//!   stream;
//! * [`ga`] — the genetic algorithm and the FAR/FRR Pareto suggestions;
//! * [`continuous`] — the deployment side: a streaming classifier that
//!   applies the calibrated chain to live sample feeds.

pub mod continuous;
pub mod ga;
pub mod postprocess;
pub mod stream;

pub use continuous::{ContinuousClassifier, DetectedEvent};
pub use ga::{calibrate, GaConfig, ScoredConfig};
pub use postprocess::{DetectionMetrics, EventDetector, PostProcessConfig};
pub use stream::{ProbabilityTrace, TraceConfig};
