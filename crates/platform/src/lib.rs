#![warn(missing_docs)]

//! The MLOps layer of `edgelab`: projects, teams, versioning, a typed API
//! facade and a job scheduler.
//!
//! Edge Impulse exposes "all functionality … via publicly accessible REST
//! APIs, which allows users to automate the data collection, model
//! training, and deployment processes" (paper §4.9), runs workloads on
//! dynamically scaled, containerized infrastructure (§4.10), and supports
//! team collaboration through organizations, project versioning and public
//! projects (§3 objective 6, §6.3). This crate models that layer
//! in-process:
//!
//! * [`entities`] — users, organizations, projects, version snapshots;
//! * [`api::Api`] — the typed request/response facade standing in for the
//!   REST API (every mutation goes through it, like the real platform);
//! * [`jobs::JobScheduler`] — a fault-tolerant worker pool executing
//!   queued jobs with status tracking, retry policies with seeded jittered
//!   backoff, per-attempt watchdog timeouts, panic isolation, cooperative
//!   cancellation and a dead-letter queue (the EKS substitute, built on
//!   `ei-faults`);
//! * streaming endpoints ([`Api::stream_open`](api::Api::stream_open) /
//!   [`Api::stream_push`](api::Api::stream_push) /
//!   [`Api::stream_close`](api::Api::stream_close)) — live
//!   continuous-inference sessions over `ei-stream`, billed to the
//!   project and access-checked per call;
//! * [`registry`] — the searchable public-project index;
//! * [`features`] — the MLOps feature-support matrix of paper Table 5.

pub mod api;
pub mod dist;
pub mod entities;
pub mod error;
pub mod features;
pub mod jobs;
pub mod registry;

pub use api::{Api, ShardReport};
pub use entities::{
    OrgId, Organization, Project, ProjectId, ProjectVersion, SessionId, User, UserId,
};
pub use error::PlatformError;
pub use jobs::{DeadLetter, JobContext, JobScheduler, JobStatus};

pub use ei_serve::{InferenceSpec, ModelName};

pub use ei_stream::{SessionConfig, SessionStats, WindowVerdict};

pub use ei_faults::{AttemptRecord, CancelToken, FailureCause, RetryPolicy};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PlatformError>;
