//! The searchable public-project index (paper §6.3: "a searchable index
//! allows developers to sort, filter, and search for relevant examples and
//! public work").

use crate::entities::{Project, ProjectId, UserId};
use std::collections::BTreeMap;

/// A search hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Project id.
    pub id: ProjectId,
    /// Project name.
    pub name: String,
    /// Tags.
    pub tags: Vec<String>,
    /// Dataset size (samples).
    pub samples: usize,
}

/// Searches public projects by free-text query over names and tags.
///
/// Takes the sharded store's merged snapshot
/// ([`crate::Api::registry_snapshot`]) — a key-ordered map, so the
/// candidate order (and therefore every tie-break) is deterministic at
/// any shard count. Empty queries list everything, sorted by dataset
/// size (descending) then name — "sort, filter, and search".
pub fn search(snapshot: &BTreeMap<u64, Project>, query: &str) -> Vec<RegistryEntry> {
    let needle = query.trim().to_lowercase();
    let mut hits: Vec<RegistryEntry> = snapshot
        .values()
        .filter(|p| p.public)
        .filter(|p| {
            needle.is_empty()
                || p.name.to_lowercase().contains(&needle)
                || p.tags.iter().any(|t| t.to_lowercase().contains(&needle))
        })
        .map(|p| RegistryEntry {
            id: p.id,
            name: p.name.clone(),
            tags: p.tags.clone(),
            samples: p.dataset.len(),
        })
        .collect();
    hits.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.name.cmp(&b.name)));
    hits
}

/// Clones a public project into a new private copy for `new_owner` — the
/// "review and clone" sharing flow.
pub fn clone_project(source: &Project, new_id: ProjectId, new_owner: UserId) -> Option<Project> {
    if !source.public {
        return None;
    }
    let mut cloned = source.clone();
    cloned.id = new_id;
    cloned.owner = new_owner;
    cloned.collaborators.clear();
    cloned.public = false;
    cloned.versions.clear();
    Some(cloned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_data::{Sample, SensorKind};

    fn public_project(id: u64, name: &str, tags: &[&str], samples: usize) -> Project {
        let mut p = Project::new(ProjectId(id), name, UserId(1));
        p.public = true;
        p.tags = tags.iter().map(|t| t.to_string()).collect();
        for _ in 0..samples {
            p.dataset.add(Sample::new(0, vec![0.0], SensorKind::Other));
        }
        p
    }

    fn snapshot_of(projects: Vec<Project>) -> BTreeMap<u64, Project> {
        projects.into_iter().map(|p| (p.id.0, p)).collect()
    }

    #[test]
    fn search_matches_name_and_tags() {
        let projects = snapshot_of(vec![
            public_project(1, "keyword-spotting", &["audio"], 10),
            public_project(2, "fall-detection", &["imu", "audio"], 20),
            public_project(3, "plant-disease", &["vision"], 5),
        ]);
        let audio = search(&projects, "audio");
        assert_eq!(audio.len(), 2);
        assert_eq!(audio[0].id, ProjectId(2), "sorted by dataset size descending");
        let vision = search(&projects, "PLANT");
        assert_eq!(vision.len(), 1);
        assert_eq!(search(&projects, "").len(), 3);
        assert!(search(&projects, "nonexistent").is_empty());
    }

    #[test]
    fn private_projects_never_listed() {
        let mut p = public_project(1, "secret", &[], 3);
        p.public = false;
        assert!(search(&snapshot_of(vec![p]), "").is_empty());
    }

    #[test]
    fn cloning_resets_ownership() {
        let source = public_project(1, "shared", &["demo"], 4);
        let cloned = clone_project(&source, ProjectId(99), UserId(42)).unwrap();
        assert_eq!(cloned.id, ProjectId(99));
        assert_eq!(cloned.owner, UserId(42));
        assert!(!cloned.public);
        assert!(cloned.versions.is_empty());
        assert_eq!(cloned.dataset.len(), 4, "data comes along");
        // private projects cannot be cloned
        let mut private = source;
        private.public = false;
        assert!(clone_project(&private, ProjectId(100), UserId(42)).is_none());
    }
}
