//! The MLOps feature-support matrix of paper Table 5.

/// The platforms compared in Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MlopsPlatform {
    /// This platform (the paper's subject).
    EdgeImpulse,
    /// Amazon SageMaker.
    AmazonSageMaker,
    /// Google Vertex AI.
    GoogleVertexAi,
    /// Microsoft Azure ML & IoT.
    AzureMlIot,
    /// Neuton AI.
    NeutonAi,
    /// Latent AI.
    LatentAi,
    /// NanoEdge AI Studio.
    NanoEdge,
    /// Imagimob.
    Imagimob,
}

impl MlopsPlatform {
    /// Display name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MlopsPlatform::EdgeImpulse => "Edge Impulse",
            MlopsPlatform::AmazonSageMaker => "Amazon SageMaker",
            MlopsPlatform::GoogleVertexAi => "Google VertexAI",
            MlopsPlatform::AzureMlIot => "Azure ML & IoT",
            MlopsPlatform::NeutonAi => "Neuton AI",
            MlopsPlatform::LatentAi => "Latent AI",
            MlopsPlatform::NanoEdge => "NanoEdge",
            MlopsPlatform::Imagimob => "Imagimob",
        }
    }

    /// All platforms in Table 5 row order.
    pub fn all() -> [MlopsPlatform; 8] {
        [
            MlopsPlatform::EdgeImpulse,
            MlopsPlatform::AmazonSageMaker,
            MlopsPlatform::GoogleVertexAi,
            MlopsPlatform::AzureMlIot,
            MlopsPlatform::NeutonAi,
            MlopsPlatform::LatentAi,
            MlopsPlatform::NanoEdge,
            MlopsPlatform::Imagimob,
        ]
    }
}

/// The feature areas compared in Table 5 (columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureArea {
    /// Data collection and analysis.
    DataCollection,
    /// DSP and model design.
    DspModelDesign,
    /// Embedded deployment.
    EmbeddedDeployment,
    /// AutoML and active learning.
    AutoMlActiveLearning,
    /// IoT management and monitoring.
    IotManagementMonitoring,
}

impl FeatureArea {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureArea::DataCollection => "Data Collection & Analysis",
            FeatureArea::DspModelDesign => "DSP & Model Design",
            FeatureArea::EmbeddedDeployment => "Embedded Deployment",
            FeatureArea::AutoMlActiveLearning => "AutoML & Active Learning",
            FeatureArea::IotManagementMonitoring => "IoT Management & Monitoring",
        }
    }

    /// All areas in Table 5 column order.
    pub fn all() -> [FeatureArea; 5] {
        [
            FeatureArea::DataCollection,
            FeatureArea::DspModelDesign,
            FeatureArea::EmbeddedDeployment,
            FeatureArea::AutoMlActiveLearning,
            FeatureArea::IotManagementMonitoring,
        ]
    }
}

/// Support level — the ✓ / ~ / ✗ of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// Fully supported (✓).
    Full,
    /// Partially supported (~).
    Partial,
    /// Not supported (✗).
    None,
}

impl Support {
    /// Table 5 glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            Support::Full => "Y",
            Support::Partial => "~",
            Support::None => "X",
        }
    }
}

/// Support level of one platform for one feature area, exactly as paper
/// Table 5 reports it.
pub fn support(platform: MlopsPlatform, area: FeatureArea) -> Support {
    use FeatureArea as A;
    use MlopsPlatform as P;
    use Support as S;
    match (platform, area) {
        (P::EdgeImpulse, A::IotManagementMonitoring) => S::Partial,
        (P::EdgeImpulse, _) => S::Full,

        (P::AmazonSageMaker, A::DataCollection) => S::Full,
        (P::AmazonSageMaker, A::AutoMlActiveLearning) => S::Full,
        (P::AmazonSageMaker, _) => S::Partial,

        (P::GoogleVertexAi, A::EmbeddedDeployment) => S::None,
        (P::GoogleVertexAi, A::DspModelDesign) => S::Partial,
        (P::GoogleVertexAi, _) => S::Full,

        (P::AzureMlIot, A::DspModelDesign) => S::Partial,
        (P::AzureMlIot, A::EmbeddedDeployment) => S::Partial,
        (P::AzureMlIot, _) => S::Full,

        (P::NeutonAi, A::DataCollection) => S::None,
        (P::NeutonAi, A::IotManagementMonitoring) => S::None,
        (P::NeutonAi, A::DspModelDesign) => S::Partial,
        (P::NeutonAi, A::AutoMlActiveLearning) => S::Partial,
        (P::NeutonAi, A::EmbeddedDeployment) => S::Full,

        (P::LatentAi, A::DataCollection) => S::None,
        (P::LatentAi, A::AutoMlActiveLearning) => S::None,
        (P::LatentAi, A::IotManagementMonitoring) => S::None,
        (P::LatentAi, _) => S::Full,

        (P::NanoEdge, A::DataCollection) => S::Partial,
        (P::NanoEdge, A::AutoMlActiveLearning) => S::Partial,
        (P::NanoEdge, A::IotManagementMonitoring) => S::None,
        (P::NanoEdge, _) => S::Full,

        (P::Imagimob, A::AutoMlActiveLearning) => S::Partial,
        (P::Imagimob, A::IotManagementMonitoring) => S::None,
        (P::Imagimob, _) => S::Full,
    }
}

/// Renders the complete Table 5 as text.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18}", ""));
    for area in FeatureArea::all() {
        out.push_str(&format!(" | {:<28}", area.name()));
    }
    out.push('\n');
    for platform in MlopsPlatform::all() {
        out.push_str(&format!("{:<18}", platform.name()));
        for area in FeatureArea::all() {
            out.push_str(&format!(" | {:<28}", support(platform, area).glyph()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_impulse_row_matches_paper() {
        // full support everywhere except partial IoT management
        for area in FeatureArea::all() {
            let expected = if area == FeatureArea::IotManagementMonitoring {
                Support::Partial
            } else {
                Support::Full
            };
            assert_eq!(support(MlopsPlatform::EdgeImpulse, area), expected, "{area:?}");
        }
    }

    #[test]
    fn vertex_lacks_embedded_deployment() {
        assert_eq!(
            support(MlopsPlatform::GoogleVertexAi, FeatureArea::EmbeddedDeployment),
            Support::None
        );
    }

    #[test]
    fn tinyml_specialists_lack_data_collection() {
        assert_eq!(support(MlopsPlatform::NeutonAi, FeatureArea::DataCollection), Support::None);
        assert_eq!(support(MlopsPlatform::LatentAi, FeatureArea::DataCollection), Support::None);
    }

    #[test]
    fn full_matrix_defined() {
        for p in MlopsPlatform::all() {
            for a in FeatureArea::all() {
                let _ = support(p, a); // must not panic
            }
        }
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let table = render_table();
        for p in MlopsPlatform::all() {
            assert!(table.contains(p.name()), "{} missing", p.name());
        }
        assert_eq!(table.lines().count(), 9);
    }
}
