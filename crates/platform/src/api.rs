//! The typed API facade: every platform mutation flows through here, the
//! in-process equivalent of the public REST API (paper §4.9).
//!
//! Endpoints take [`UserId`]/[`ProjectId`] newtypes rather than positional
//! `u64`s — a swapped `(project, acting)` pair is now a compile error —
//! and inference/estimation calls take one [`InferenceSpec`] instead of a
//! growing list of engine/board/dtype/deadline arguments.
//!
//! # Sharded state
//!
//! The platform's north star is heavy traffic from millions of tenants, so
//! state is no longer one `RwLock<State>`: users, organizations, projects
//! and live streams each live in an [`ei_shard::ShardMap`], striped across
//! `EI_SHARDS` lock-guarded shards by FNV-1a of the raw id. Two tenants on
//! different shards never contend; [`Api::export_json`] merges shards in
//! key order, so backups stay **byte-identical** to the serial (1-shard)
//! reference. Stream sessions are pinned to the shard of the *project*
//! that owns them, so a tenant's control-plane and data-plane state share
//! a stripe. Per-project quota ledgers ([`Api::set_project_quota`]) ride
//! the same partition.

use crate::entities::{OrgId, Organization, Project, ProjectId, SessionId, User, UserId};
use crate::jobs::JobScheduler;
use crate::{PlatformError, Result};
use ei_core::impulse::ImpulseDesign;
use ei_data::cbor::parse_cbor;
use ei_data::ingest::{parse_csv, parse_json, parse_wav};
use ei_data::netpbm::parse_netpbm_sample;
use ei_data::{Dataset, Sample, SensorKind};
use ei_nn::spec::ModelSpec;
use ei_nn::train::TrainConfig;
use ei_serve::{
    CacheStats, InferenceRequest, InferenceSpec, ModelSource, Outcome, Rejected, Server,
    ServerConfig,
};
use ei_shard::{
    fnv1a_u64, QuotaLedger, QuotaUsage, RebalancePolicy, RebalancePolicyStatus, RebalanceReport,
    ShardMap, ShardObserver,
};
use ei_stream::{SessionConfig, SessionStats, StreamError, StreamSession, WindowVerdict};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shard count used when `EI_SHARDS` is unset.
pub const DEFAULT_SHARDS: usize = 8;

/// Reads the platform shard count from `EI_SHARDS` (default
/// [`DEFAULT_SHARDS`], minimum 1).
pub fn shards_from_env() -> usize {
    std::env::var("EI_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_SHARDS)
}

/// One consolidated snapshot of the sharded store, returned by
/// [`Api::shard_report`]: everything the separate `shard_count` /
/// `shard_occupancy` / `occupancy_skew` calls reported, plus the
/// rebalance-policy status and the serving artifact-cache counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shards state is striped across.
    pub shards: usize,
    /// Projects per shard, by shard index.
    pub occupancy: Vec<usize>,
    /// max/mean project-shard occupancy (1.0 = perfectly even).
    pub skew: f64,
    /// The most recent rebalance outcome (manual or policy-driven).
    pub last_rebalance: Option<RebalanceReport>,
    /// Status of the installed [`RebalancePolicy`], if any.
    pub policy: Option<RebalancePolicyStatus>,
    /// Artifact-cache counters merged across stripes (`None` until a
    /// serving layer is attached or lazily initialized).
    pub cache: Option<CacheStats>,
    /// Per-stripe artifact-cache counters, in stripe-index order (empty
    /// without a serving layer).
    pub cache_shards: Vec<CacheStats>,
}

fn lock_plain<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The serialized backup form of the platform (what
/// [`Api::export_json`] emits and [`Api::import_json`] accepts).
///
/// Maps stay keyed by raw `u64` so exported JSON is byte-compatible with
/// pre-newtype (and pre-shard) backups; the typed ids live at the API
/// boundary. Live state is sharded — this struct only exists at the
/// export/import boundary, built from key-ordered shard merges.
#[derive(Debug, Default, serde::Serialize, serde::Deserialize)]
struct State {
    users: BTreeMap<u64, User>,
    orgs: BTreeMap<u64, Organization>,
    projects: BTreeMap<u64, Project>,
    next_id: u64,
}

/// One open stream and the project it is billed against. Not part of
/// [`State`]: a live stream is bound to this process (its DSP buffers and
/// serving tickets cannot survive an export/import round trip), so
/// backups deliberately exclude it.
#[derive(Debug)]
struct StreamEntry {
    project: ProjectId,
    session: StreamSession,
}

/// The platform API. Cheap to clone; clones share state (like concurrent
/// API clients hitting one backend).
#[derive(Debug, Clone)]
pub struct Api {
    users: Arc<ShardMap<u64, User>>,
    orgs: Arc<ShardMap<u64, Organization>>,
    projects: Arc<ShardMap<u64, Project>>,
    /// Open streaming sessions, pinned to the owning project's shard
    /// (process-local; see [`StreamEntry`]).
    streams: Arc<ShardMap<u64, StreamEntry>>,
    /// Per-project unit quotas (unlimited unless
    /// [`Api::set_project_quota`] is called).
    quotas: Arc<QuotaLedger<u64>>,
    next_id: Arc<AtomicU64>,
    next_stream: Arc<AtomicU64>,
    /// The serving front-end project inference/estimation calls execute
    /// through. Lazily built on first use (so the many callers that never
    /// serve inference pay nothing); clones share it like the state maps.
    serving: Arc<OnceLock<Arc<Server>>>,
    /// The telemetry hub [`Api::attach_obs`] bridged shard gauges into,
    /// kept so [`Api::poll_rebalance`] can read the live occupancy
    /// gauges (and the hub's clock) back out.
    obs: Arc<OnceLock<Arc<ei_obs::Obs>>>,
    /// The installed telemetry-driven rebalance policy, if any.
    rebalance_policy: Arc<Mutex<Option<RebalancePolicy>>>,
    /// The most recent rebalance outcome (manual or policy-driven),
    /// surfaced in [`Api::shard_report`].
    last_rebalance: Arc<Mutex<Option<RebalanceReport>>>,
}

impl Default for Api {
    fn default() -> Api {
        Api::with_shards(shards_from_env())
    }
}

/// Bridges [`ShardMap`] telemetry into the `ei-obs` registry:
/// `platform.shard.occupancy` (gauge per shard) and
/// `platform.shard.lock_wait` (histogram, ms), so flight dumps can name
/// hot shards.
struct ObsBridge {
    obs: Arc<ei_obs::Obs>,
}

impl ShardObserver for ObsBridge {
    fn lock_wait(&self, shard: usize, wait_ns: u64) {
        self.obs.registry().observe(
            "platform.shard.lock_wait",
            &format!("shard-{shard}"),
            wait_ns as f64 / 1_000_000.0,
            &ei_obs::LATENCY_BOUNDS,
        );
    }

    fn occupancy(&self, shard: usize, len: usize) {
        self.obs.registry().set_gauge(
            "platform.shard.occupancy",
            &format!("shard-{shard}"),
            len as f64,
        );
    }
}

impl Api {
    /// Creates an empty platform with `EI_SHARDS` shards (default
    /// [`DEFAULT_SHARDS`]).
    pub fn new() -> Api {
        Api::default()
    }

    /// Creates an empty platform striped across an explicit number of
    /// shards (minimum 1). `Api::with_shards(1)` is the serial
    /// reference every other shard count must match byte-for-byte on
    /// export.
    pub fn with_shards(shards: usize) -> Api {
        let shards = shards.max(1);
        Api {
            users: Arc::new(ShardMap::new(shards)),
            orgs: Arc::new(ShardMap::new(shards)),
            projects: Arc::new(ShardMap::new(shards)),
            streams: Arc::new(ShardMap::new(shards)),
            quotas: Arc::new(QuotaLedger::new(shards, u64::MAX)),
            next_id: Arc::new(AtomicU64::new(0)),
            next_stream: Arc::new(AtomicU64::new(0)),
            serving: Arc::default(),
            obs: Arc::default(),
            rebalance_policy: Arc::default(),
            last_rebalance: Arc::default(),
        }
    }

    /// The number of shards state is striped across.
    #[deprecated(since = "0.1.0", note = "use `Api::shard_report().shards` instead")]
    pub fn shard_count(&self) -> usize {
        self.projects.shard_count()
    }

    /// Projects per shard, by shard index.
    #[deprecated(since = "0.1.0", note = "use `Api::shard_report().occupancy` instead")]
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.projects.occupancy()
    }

    /// max/mean project-shard occupancy (1.0 = perfectly even).
    #[deprecated(since = "0.1.0", note = "use `Api::shard_report().skew` instead")]
    pub fn occupancy_skew(&self) -> f64 {
        self.projects.occupancy_skew()
    }

    /// One consolidated snapshot of the sharded store: shard count,
    /// per-shard occupancy and skew of the project map, the last
    /// rebalance outcome, the installed [`RebalancePolicy`]'s status,
    /// and the serving layer's artifact-cache counters (merged and per
    /// cache stripe; empty until a serving layer is attached or lazily
    /// initialized). Replaces the separate `shard_count` /
    /// `shard_occupancy` / `occupancy_skew` calls, which survive one
    /// release as deprecated delegates.
    pub fn shard_report(&self) -> ShardReport {
        let occupancy = self.projects.occupancy();
        let (cache, cache_shards) = match self.serving.get() {
            Some(server) => (Some(server.cache_stats()), server.cache_shard_stats()),
            None => (None, Vec::new()),
        };
        ShardReport {
            shards: self.projects.shard_count(),
            occupancy,
            skew: self.projects.occupancy_skew(),
            last_rebalance: lock_plain(&self.last_rebalance).clone(),
            policy: lock_plain(&self.rebalance_policy).as_ref().map(RebalancePolicy::status),
            cache,
            cache_shards,
        }
    }

    /// Runs one seeded cross-shard rebalance pass over the project map
    /// (see [`ShardMap::rebalance`]): moves projects off overfull shards
    /// deterministically, never changing export bytes. The outcome is
    /// recorded for [`Api::shard_report`].
    pub fn rebalance(&self, seed: u64) -> RebalanceReport {
        let report = self.projects.rebalance(seed);
        *lock_plain(&self.last_rebalance) = Some(report.clone());
        report
    }

    /// Installs (or replaces) the telemetry-driven rebalance policy
    /// consulted by [`Api::poll_rebalance`].
    pub fn set_rebalance_policy(&self, policy: RebalancePolicy) {
        *lock_plain(&self.rebalance_policy) = Some(policy);
    }

    /// Feeds one occupancy observation to the installed
    /// [`RebalancePolicy`] and, when it fires, runs the rebalance it
    /// asked for — closing the loop from the `platform.shard.occupancy`
    /// gauges back to [`Api::rebalance`], with no manual seed.
    ///
    /// The observation is read from the attached telemetry hub
    /// ([`Api::attach_obs`]) — the same `platform.shard.occupancy`
    /// gauge vector operators watch — at the hub clock's current time,
    /// and falls back to the live project map when no hub is attached
    /// (so the policy still works without telemetry, observing at time
    /// 0). Returns the rebalance report when a rebalance ran; `None`
    /// while the policy holds off (or none is installed). Like any
    /// rebalance, a policy-driven one never changes export bytes.
    pub fn poll_rebalance(&self) -> Option<RebalanceReport> {
        let seed = {
            let mut guard = lock_plain(&self.rebalance_policy);
            let policy = guard.as_mut()?;
            let (occupancy, now_ms) = match self.obs.get() {
                Some(obs) => (
                    self.occupancy_from_gauges(obs).unwrap_or_else(|| self.projects.occupancy()),
                    obs.clock().now_ms(),
                ),
                None => (self.projects.occupancy(), 0),
            };
            policy.observe(&occupancy, now_ms)?
        };
        Some(self.rebalance(seed))
    }

    /// Reads the `platform.shard.occupancy` gauge vector back out of the
    /// obs registry, in shard-index order (`None` until the gauges have
    /// been published at least once).
    fn occupancy_from_gauges(&self, obs: &Arc<ei_obs::Obs>) -> Option<Vec<usize>> {
        let snapshot = obs.registry().snapshot();
        let occupancy: Vec<usize> = (0..self.projects.shard_count())
            .map(|shard| {
                match snapshot.get(&("platform.shard.occupancy".into(), format!("shard-{shard}"))) {
                    Some(ei_obs::SeriesValue::Gauge { value, .. }) => *value as usize,
                    _ => 0,
                }
            })
            .collect();
        occupancy.iter().any(|&n| n > 0).then_some(occupancy)
    }

    /// Attaches always-on telemetry: per-shard occupancy gauges
    /// (`platform.shard.occupancy`) and lock-wait histograms
    /// (`platform.shard.lock_wait`) flow into `obs`'s registry for the
    /// project and stream maps, and [`Api::poll_rebalance`] reads its
    /// occupancy observations (and clock) back from the same hub. First
    /// caller wins, like [`ShardMap::set_observer`].
    pub fn attach_obs(&self, obs: &Arc<ei_obs::Obs>) {
        let bridge = Arc::new(ObsBridge { obs: Arc::clone(obs) });
        self.projects.set_observer(Arc::<ObsBridge>::clone(&bridge) as _);
        self.streams.set_observer(bridge as _);
        let _ = self.obs.set(Arc::clone(obs));
    }

    /// Attaches an explicitly configured serving front-end (e.g. one on a
    /// [`ei_faults::VirtualClock`] for deterministic tests).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadRequest`] when a serving layer is
    /// already attached (or was already lazily initialized).
    pub fn attach_serving(&self, server: Arc<Server>) -> Result<()> {
        self.serving
            .set(server)
            .map_err(|_| PlatformError::BadRequest("serving layer already attached".into()))
    }

    /// The serving front-end, lazily built with default configuration on
    /// the system clock and an `EI_THREADS`-sized pool.
    pub fn serving(&self) -> &Arc<Server> {
        self.serving.get_or_init(|| {
            Arc::new(Server::new(
                ServerConfig::default(),
                Arc::new(ei_faults::SystemClock::new()),
                Arc::new(ei_par::ParPool::new(ei_par::Parallelism::from_env())),
                ei_trace::Tracer::disabled(),
            ))
        })
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Registers a user, returning the id.
    pub fn create_user(&self, name: &str) -> UserId {
        let id = UserId(self.fresh_id());
        self.users.insert(id.0, User { id, name: name.to_string() });
        id
    }

    /// Creates an organization owned by `founder`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for an unknown founder.
    pub fn create_organization(&self, name: &str, founder: UserId) -> Result<OrgId> {
        if !self.users.contains_key(&founder.0) {
            return Err(PlatformError::NotFound { kind: "user", id: founder.0 });
        }
        let id = OrgId(self.fresh_id());
        self.orgs.insert(id.0, Organization { id, name: name.to_string(), members: vec![founder] });
        Ok(id)
    }

    /// Creates a project owned by `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for an unknown owner.
    pub fn create_project(&self, name: &str, owner: UserId) -> Result<ProjectId> {
        if !self.users.contains_key(&owner.0) {
            return Err(PlatformError::NotFound { kind: "user", id: owner.0 });
        }
        let id = ProjectId(self.fresh_id());
        self.projects.insert(id.0, Project::new(id, name, owner));
        Ok(id)
    }

    /// Adds a collaborator to a project (owner only).
    ///
    /// # Errors
    ///
    /// Fails for unknown entities or when `acting` is not the owner.
    pub fn add_collaborator(
        &self,
        project: ProjectId,
        acting: UserId,
        collaborator: UserId,
    ) -> Result<()> {
        if !self.users.contains_key(&collaborator.0) {
            return Err(PlatformError::NotFound { kind: "user", id: collaborator.0 });
        }
        self.projects
            .with_mut(&project.0, |p| {
                if p.owner != acting {
                    return Err(PlatformError::AccessDenied(
                        "only the owner adds collaborators".into(),
                    ));
                }
                if !p.collaborators.contains(&collaborator) {
                    p.collaborators.push(collaborator);
                }
                Ok(())
            })
            .ok_or(PlatformError::NotFound { kind: "project", id: project.0 })?
    }

    /// Runs `f` with read access to a project, enforcing access control.
    /// Only the project's own shard lock is held.
    ///
    /// Crate-internal: external callers go through the typed queries
    /// ([`Api::dataset`], [`Api::impulse`], [`Api::list_models`], …)
    /// instead of reaching into [`Project`] directly.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub(crate) fn with_project<T>(
        &self,
        project: ProjectId,
        acting: UserId,
        f: impl FnOnce(&Project) -> T,
    ) -> Result<T> {
        self.projects
            .with(&project.0, |p| {
                if !p.can_access(acting) && !p.public {
                    return Err(PlatformError::AccessDenied(format!(
                        "user {acting} on project {project}"
                    )));
                }
                Ok(f(p))
            })
            .ok_or(PlatformError::NotFound { kind: "project", id: project.0 })?
    }

    /// Runs `f` with write access to a project, enforcing access control.
    /// Only the project's own shard lock is held.
    ///
    /// Crate-internal for the same reason as [`Api::with_project`].
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub(crate) fn with_project_mut<T>(
        &self,
        project: ProjectId,
        acting: UserId,
        f: impl FnOnce(&mut Project) -> T,
    ) -> Result<T> {
        self.projects
            .with_mut(&project.0, |p| {
                if !p.can_access(acting) {
                    return Err(PlatformError::AccessDenied(format!(
                        "user {acting} on project {project}"
                    )));
                }
                Ok(f(p))
            })
            .ok_or(PlatformError::NotFound { kind: "project", id: project.0 })?
    }

    /// Read-only snapshot of a project's dataset.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn dataset(&self, project: ProjectId, acting: UserId) -> Result<Dataset> {
        self.with_project(project, acting, |p| p.dataset.clone())
    }

    /// The project's impulse design, if one is configured.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn impulse(&self, project: ProjectId, acting: UserId) -> Result<Option<ImpulseDesign>> {
        self.with_project(project, acting, |p| p.impulse.clone())
    }

    /// Sets a per-project unit quota (owner only). Ingestion and
    /// inference calls charge one unit each; once `limit` units are
    /// used, further calls fail with [`PlatformError::QuotaExceeded`].
    /// Projects without an explicit quota are unlimited.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or when `acting` is not the owner.
    pub fn set_project_quota(&self, project: ProjectId, acting: UserId, limit: u64) -> Result<()> {
        let owner = self.with_project(project, acting, |p| p.owner)?;
        if owner != acting {
            return Err(PlatformError::AccessDenied("only the owner sets quotas".into()));
        }
        self.quotas.set_limit(&project.0, limit);
        Ok(())
    }

    /// Gives a project a burst bucket on top of its cumulative quota
    /// (owner only): at most `capacity` units of burst, refilled at
    /// `refill_per_sec` units per second of the serving clock — the
    /// same token-bucket shape as the serving layer's admission
    /// buckets. A `capacity` of 0 removes the bucket. Charges remain a
    /// single atomic admit-or-deny on the project's shard.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or when `acting` is not the owner.
    pub fn set_project_burst(
        &self,
        project: ProjectId,
        acting: UserId,
        capacity: u64,
        refill_per_sec: f64,
    ) -> Result<()> {
        let owner = self.with_project(project, acting, |p| p.owner)?;
        if owner != acting {
            return Err(PlatformError::AccessDenied("only the owner sets quotas".into()));
        }
        self.quotas.set_burst(&project.0, capacity, refill_per_sec, self.quota_now_ms());
        Ok(())
    }

    /// The logical time quota charges refill against: the serving clock
    /// when a serving layer is attached, else 0 (projects without a
    /// burst bucket never read it).
    fn quota_now_ms(&self) -> u64 {
        self.serving.get().map_or(0, |server| server.clock().now_ms())
    }

    /// The project's quota ledger (limit, used units, denied calls),
    /// tracked on the project's own shard.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn project_quota(&self, project: ProjectId, acting: UserId) -> Result<QuotaUsage> {
        self.with_project(project, acting, |_| ())?;
        Ok(self.quotas.usage(&project.0).unwrap_or(QuotaUsage {
            limit: u64::MAX,
            used: 0,
            denied: 0,
        }))
    }

    /// Charges one quota unit to `project`, mapping denial to the
    /// platform error space. Burst buckets refill against the serving
    /// clock; projects without one behave exactly as before.
    fn charge_quota(&self, project: ProjectId) -> Result<()> {
        if self.quotas.charge_at(&project.0, 1, self.quota_now_ms()).is_admitted() {
            Ok(())
        } else {
            Err(PlatformError::QuotaExceeded { tenant: format!("project-{project}") })
        }
    }

    /// Ingests one sample from a supported payload (the ingestion API).
    ///
    /// `format` is `"json"`, `"cbor"`, `"csv"`, `"wav"`, `"pgm"` or
    /// `"ppm"`; binary formats pass raw bytes, text formats pass UTF-8.
    /// Charges one quota unit on success.
    ///
    /// # Errors
    ///
    /// Fails on parse errors, unknown formats, denied access, or an
    /// exhausted project quota.
    pub fn ingest(
        &self,
        project: ProjectId,
        acting: UserId,
        format: &str,
        payload: &[u8],
        label: Option<&str>,
    ) -> Result<u64> {
        let sample = match format {
            "json" => {
                let text = std::str::from_utf8(payload)
                    .map_err(|e| PlatformError::BadRequest(e.to_string()))?;
                parse_json(text, 0).map_err(|e| PlatformError::BadRequest(e.to_string()))?
            }
            "csv" => {
                let text = std::str::from_utf8(payload)
                    .map_err(|e| PlatformError::BadRequest(e.to_string()))?;
                let (_, values) =
                    parse_csv(text).map_err(|e| PlatformError::BadRequest(e.to_string()))?;
                Sample::new(0, values, SensorKind::Other)
            }
            "wav" => {
                let (rate, samples) =
                    parse_wav(payload).map_err(|e| PlatformError::BadRequest(e.to_string()))?;
                Sample::new(0, samples, SensorKind::Audio).with_sample_rate(rate)
            }
            "cbor" => {
                parse_cbor(payload, 0).map_err(|e| PlatformError::BadRequest(e.to_string()))?
            }
            "pgm" | "ppm" => parse_netpbm_sample(payload, 0)
                .map_err(|e| PlatformError::BadRequest(e.to_string()))?,
            other => {
                return Err(PlatformError::BadRequest(format!("unsupported format {other:?}")))
            }
        };
        let sample = match label {
            Some(l) => sample.with_label(l),
            None => sample,
        };
        self.charge_quota(project)?;
        let added = self.with_project_mut(project, acting, |p| p.dataset.add(sample));
        if added.is_err() {
            // the sample never landed; refund the unit
            self.quotas.release(&project.0, 1);
        }
        added
    }

    /// Stores a trained-impulse artifact in the project's model registry.
    ///
    /// `json` is the payload produced by
    /// `ei_core::impulse::TrainedImpulse::to_json` — stored opaquely so
    /// registry history survives library changes.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn upload_model(
        &self,
        project: ProjectId,
        acting: UserId,
        name: &str,
        json: String,
    ) -> Result<()> {
        self.with_project_mut(project, acting, |p| {
            p.models.insert(name.to_string(), json);
        })
    }

    /// Fetches a trained-impulse artifact from the registry.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects/models or denied access.
    pub fn download_model(&self, project: ProjectId, acting: UserId, name: &str) -> Result<String> {
        self.with_project(project, acting, |p| p.models.get(name).cloned())?
            .ok_or(PlatformError::NotFound { kind: "model", id: 0 })
    }

    /// Classifies one raw window with the registry model `spec` names,
    /// executing through the serving layer (admission control, artifact
    /// cache, micro-batching). Billed to `spec.tenant` when set, otherwise
    /// to the project (`project-<id>`); charges one project quota unit.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects/models or denied access;
    /// [`PlatformError::Overloaded`] / [`PlatformError::QuotaExceeded`]
    /// when admission (or the project quota) refuses the request;
    /// [`PlatformError::DeadlineExceeded`] when it misses its deadline;
    /// [`PlatformError::JobFailed`] when the model cannot run.
    pub fn classify(
        &self,
        project: ProjectId,
        acting: UserId,
        spec: &InferenceSpec,
        window: Vec<f32>,
    ) -> Result<ei_core::Classification> {
        let json = self.download_model(project, acting, spec.model.as_str())?;
        self.charge_quota(project)?;
        let server = self.serving();
        let request = InferenceRequest::from_spec(
            spec,
            ModelSource::new(spec.model.clone(), json),
            window,
            &format!("project-{project}"),
        );
        let ticket = server.submit(request).map_err(rejection_to_error)?;
        let completion = server
            .resolve(ticket)
            .ok_or_else(|| PlatformError::JobFailed("serving dropped the request".into()))?;
        match completion.outcome {
            Outcome::Classified(c) => Ok(c),
            Outcome::DeadlineExceeded { waited_ms } => {
                Err(PlatformError::DeadlineExceeded { waited_ms })
            }
            Outcome::Failed(msg) => Err(PlatformError::JobFailed(msg)),
        }
    }

    /// Estimates how the registry model `spec` names runs on `spec.board`
    /// (latency, memory, fit), served through the artifact cache like
    /// inference. Billed to `spec.tenant` when set, otherwise to the
    /// project (`project-<id>`) — the same tenant resolution as
    /// [`Api::classify`], so both paths stripe to the same cache shard.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects/models/boards, denied access, or a
    /// model that does not compile.
    pub fn estimate(
        &self,
        project: ProjectId,
        acting: UserId,
        spec: &InferenceSpec,
    ) -> Result<ei_serve::Estimate> {
        let json = self.download_model(project, acting, spec.model.as_str())?;
        let source = ModelSource::new(spec.model.clone(), json);
        let tenant = spec.tenant.clone().unwrap_or_else(|| format!("project-{project}"));
        self.serving().estimate(&tenant, &source, &spec.board, spec.engine, spec.quantized).map_err(
            |e| match e {
                ei_serve::ServeError::UnknownBoard(b) => {
                    PlatformError::BadRequest(format!("unknown board {b:?}"))
                }
                ei_serve::ServeError::Model(msg) => PlatformError::JobFailed(msg),
            },
        )
    }

    /// Opens a continuous-inference stream against the registry model
    /// `model`, returning a session id for [`Api::stream_push`] /
    /// [`Api::stream_close`]. The session is pinned to the owning
    /// project's shard, so stream and project state share a stripe.
    ///
    /// When `config.tenant` is empty the session bills to the project
    /// (`project-<id>`), matching [`Api::classify`]; an explicit tenant
    /// (e.g. a per-device id) is kept, so quotas and SLO monitors can be
    /// scoped finer than the project.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects/models or denied access, and
    /// [`PlatformError::BadRequest`] when the session config does not fit
    /// the model's impulse design (misaligned hop, non-streamable DSP
    /// block, undecodable model).
    pub fn stream_open(
        &self,
        project: ProjectId,
        acting: UserId,
        model: &str,
        mut config: SessionConfig,
    ) -> Result<SessionId> {
        let json = self.download_model(project, acting, model)?;
        if config.tenant.is_empty() {
            config.tenant = format!("project-{project}");
        }
        let source = ModelSource::new(model, json);
        let session =
            StreamSession::open(self.serving().clone(), source, config).map_err(stream_to_error)?;
        let id = self.next_stream.fetch_add(1, Ordering::SeqCst) + 1;
        let shard = (fnv1a_u64(project.0) % self.streams.shard_count() as u64) as usize;
        self.streams.insert_at(id, StreamEntry { project, session }, shard);
        Ok(SessionId(id))
    }

    /// Feeds one chunk of raw samples into an open stream and returns the
    /// windows classified so far (possibly none — ingest never waits for
    /// inference). Dropped windows are visible in [`Api::stream_stats`],
    /// not here.
    ///
    /// # Errors
    ///
    /// Fails for unknown sessions or denied access (write access to the
    /// owning project is re-checked on every call, so revoking a
    /// collaborator also cuts their live streams).
    pub fn stream_push(
        &self,
        session: SessionId,
        acting: UserId,
        samples: &[f32],
    ) -> Result<Vec<WindowVerdict>> {
        self.with_stream(session, acting, |s| {
            s.push(samples).map_err(stream_to_error)?;
            Ok(s.poll())
        })?
    }

    /// Counters for an open stream (windows, drops, oracle verdicts).
    ///
    /// # Errors
    ///
    /// Fails for unknown sessions or denied access.
    pub fn stream_stats(&self, session: SessionId, acting: UserId) -> Result<SessionStats> {
        self.with_stream(session, acting, |s| s.stats())
    }

    /// Closes a stream: drains outstanding inference and returns the final
    /// counters.
    ///
    /// # Errors
    ///
    /// Fails for unknown sessions or denied access.
    pub fn stream_close(&self, session: SessionId, acting: UserId) -> Result<SessionStats> {
        let project = self
            .streams
            .with(&session.0, |e| e.project)
            .ok_or(PlatformError::NotFound { kind: "stream", id: session.0 })?;
        self.with_project_mut(project, acting, |_| ())?;
        let entry = self
            .streams
            .remove(&session.0)
            .ok_or(PlatformError::NotFound { kind: "stream", id: session.0 })?;
        Ok(entry.session.close())
    }

    /// Runs `f` on an open stream after re-checking project write access.
    /// Stream-shard and project-shard locks are taken one at a time,
    /// never nested. The stream map stays keyed by the raw `u64` inside
    /// the [`SessionId`], so session placement (and any exported state)
    /// is byte-identical to the untyped API.
    fn with_stream<T>(
        &self,
        session: SessionId,
        acting: UserId,
        f: impl FnOnce(&mut StreamSession) -> T,
    ) -> Result<T> {
        let project = self
            .streams
            .with(&session.0, |e| e.project)
            .ok_or(PlatformError::NotFound { kind: "stream", id: session.0 })?;
        self.with_project_mut(project, acting, |_| ())?;
        self.streams
            .with_mut(&session.0, |e| f(&mut e.session))
            .ok_or(PlatformError::NotFound { kind: "stream", id: session.0 })
    }

    /// Lists registry model names.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn list_models(&self, project: ProjectId, acting: UserId) -> Result<Vec<String>> {
        self.with_project(project, acting, |p| p.models.keys().cloned().collect())
    }

    /// Sets a project's impulse design.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn set_impulse(
        &self,
        project: ProjectId,
        acting: UserId,
        impulse: ImpulseDesign,
    ) -> Result<()> {
        self.with_project_mut(project, acting, |p| p.impulse = Some(impulse))
    }

    /// Saves a version snapshot of a project.
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or denied access.
    pub fn snapshot(&self, project: ProjectId, acting: UserId, description: &str) -> Result<u32> {
        self.with_project_mut(project, acting, |p| p.snapshot(description))
    }

    /// Makes a project public (owner only).
    ///
    /// # Errors
    ///
    /// Fails for unknown projects or when `acting` is not the owner.
    pub fn make_public(&self, project: ProjectId, acting: UserId, tags: &[&str]) -> Result<()> {
        self.projects
            .with_mut(&project.0, |p| {
                if p.owner != acting {
                    return Err(PlatformError::AccessDenied("only the owner publishes".into()));
                }
                p.public = true;
                p.tags = tags.iter().map(|t| t.to_string()).collect();
                Ok(())
            })
            .ok_or(PlatformError::NotFound { kind: "project", id: project.0 })?
    }

    /// Submits a full training job to a scheduler: extracts the project's
    /// dataset and impulse, trains `spec` on a worker, and on success
    /// stores the trained artifact in the model registry under
    /// `model_name`. Returns the job id (poll/wait via the scheduler; the
    /// job output is the best validation accuracy). On a sharded
    /// scheduler the job routes to the project's submission queue, so
    /// one tenant's training burst cannot starve another shard.
    ///
    /// This is the "programmatically … train models" automation path of
    /// paper §4.9 in one call.
    ///
    /// # Errors
    ///
    /// Fails when the project is missing an impulse, access is denied, or
    /// the scheduler is stopped.
    pub fn submit_training(
        &self,
        scheduler: &JobScheduler,
        project: ProjectId,
        acting: UserId,
        model_name: &str,
        spec: ModelSpec,
        config: TrainConfig,
    ) -> Result<u64> {
        let dataset = self.dataset(project, acting)?;
        let design = self
            .impulse(project, acting)?
            .ok_or_else(|| PlatformError::BadRequest("project has no impulse".into()))?;
        let api = self.clone();
        let name = model_name.to_string();
        scheduler.submit_keyed(project.0, 1, move || {
            let trained = design.train(&spec, &dataset, &config).map_err(|e| e.to_string())?;
            let json = trained.to_json().map_err(|e| e.to_string())?;
            api.upload_model(project, acting, &name, json).map_err(|e| e.to_string())?;
            Ok(format!("{:.4}", trained.report().best_val_accuracy))
        })
    }

    /// Lists `(id, name, public)` of all projects a user can see, in id
    /// order (a key-ordered merge across shards — identical at any shard
    /// count).
    pub fn list_projects(&self, acting: UserId) -> Vec<(ProjectId, String, bool)> {
        let mut out = Vec::new();
        self.projects.for_each(|_, p| {
            if p.can_access(acting) || p.public {
                out.push((p.id, p.name.clone(), p.public));
            }
        });
        out
    }

    /// Snapshot of all public projects (for the registry), in id order.
    pub fn public_projects(&self) -> Vec<Project> {
        let mut out = Vec::new();
        self.projects.for_each(|_, p| {
            if p.public {
                out.push(p.clone());
            }
        });
        out
    }

    /// The registry's merged view: every public project, keyed by raw id,
    /// merged across shards in key order (so downstream ordering is
    /// shard-count independent). Feed this to [`crate::registry::search`].
    pub fn registry_snapshot(&self) -> BTreeMap<u64, Project> {
        let mut out = BTreeMap::new();
        self.projects.for_each(|k, p| {
            if p.public {
                out.insert(*k, p.clone());
            }
        });
        out
    }

    /// Searches the public-project registry (see
    /// [`crate::registry::search`]) over the merged shard snapshot.
    pub fn search_registry(&self, query: &str) -> Vec<crate::registry::RegistryEntry> {
        crate::registry::search(&self.registry_snapshot(), query)
    }

    /// Serializes the entire platform state (users, organizations,
    /// projects with their datasets, versions and model registries) —
    /// the backup/migration path behind §4.10's "migrate the
    /// infrastructure … with a reasonable amount of effort".
    ///
    /// Each map merges its shards in key order under all shard locks at
    /// once, so the emitted bytes are identical at any shard count.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadRequest`] on serialization failure.
    pub fn export_json(&self) -> Result<String> {
        let state = State {
            users: self.users.snapshot(),
            orgs: self.orgs.snapshot(),
            projects: self.projects.snapshot(),
            next_id: self.next_id.load(Ordering::SeqCst),
        };
        serde_json::to_string(&state).map_err(|e| PlatformError::BadRequest(e.to_string()))
    }

    /// Restores a platform from [`Api::export_json`] output, scattering
    /// entries back across `EI_SHARDS` shards (the payload itself is
    /// shard-count agnostic).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadRequest`] for malformed payloads.
    pub fn import_json(json: &str) -> Result<Api> {
        let state: State =
            serde_json::from_str(json).map_err(|e| PlatformError::BadRequest(e.to_string()))?;
        let api = Api::new();
        api.next_id.store(state.next_id, Ordering::SeqCst);
        for (k, v) in state.users {
            api.users.insert(k, v);
        }
        for (k, v) in state.orgs {
            api.orgs.insert(k, v);
        }
        for (k, v) in state.projects {
            api.projects.insert(k, v);
        }
        Ok(api)
    }
}

/// Maps a serving-layer admission rejection to the platform error space.
fn rejection_to_error(rejected: Rejected) -> PlatformError {
    match rejected {
        Rejected::Overloaded { queue_depth } => PlatformError::Overloaded { queue_depth },
        Rejected::QuotaExceeded { tenant } => PlatformError::QuotaExceeded { tenant },
    }
}

/// Maps a streaming-layer error to the platform error space.
fn stream_to_error(e: StreamError) -> PlatformError {
    PlatformError::BadRequest(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_data::ingest::to_wav_bytes;

    #[test]
    fn user_project_lifecycle() {
        let api = Api::new();
        let alice = api.create_user("alice");
        let project = api.create_project("kws", alice).unwrap();
        assert_eq!(api.list_projects(alice), vec![(project, "kws".to_string(), false)]);
        assert!(api.create_project("x", UserId(999)).is_err());
    }

    #[test]
    fn access_control_enforced() {
        let api = Api::new();
        let alice = api.create_user("alice");
        let bob = api.create_user("bob");
        let project = api.create_project("private", alice).unwrap();
        assert!(api.with_project(project, bob, |_| ()).is_err());
        // bob cannot add himself
        assert!(api.add_collaborator(project, bob, bob).is_err());
        api.add_collaborator(project, alice, bob).unwrap();
        assert!(api.with_project(project, bob, |_| ()).is_ok());
    }

    #[test]
    fn ingestion_formats() {
        let api = Api::new();
        let u = api.create_user("u");
        let p = api.create_project("ingest", u).unwrap();
        let json = br#"{"values": [1.0, 2.0], "interval_ms": 10.0, "sensor": "accelerometer"}"#;
        api.ingest(p, u, "json", json, Some("idle")).unwrap();
        api.ingest(p, u, "csv", b"x,y\n1,2\n3,4\n", Some("move")).unwrap();
        let wav = to_wav_bytes(16_000, &[0.1, -0.1, 0.2]);
        api.ingest(p, u, "wav", &wav, None).unwrap();
        let cbor = ei_data::cbor::encode(&ei_data::cbor::CborValue::Map(vec![
            (
                "values".into(),
                ei_data::cbor::CborValue::Array(vec![ei_data::cbor::CborValue::Float(0.5)]),
            ),
            ("interval_ms".into(), ei_data::cbor::CborValue::Float(10.0)),
            ("sensor".into(), ei_data::cbor::CborValue::Text("imu".into())),
        ]));
        api.ingest(p, u, "cbor", &cbor, Some("idle")).unwrap();
        api.ingest(p, u, "pgm", b"P5\n2 2\n255\nabcd", Some("img")).unwrap();
        let dataset = api.dataset(p, u).unwrap();
        assert_eq!(dataset.len(), 5);
        assert_eq!(
            dataset.labels(),
            vec!["idle".to_string(), "img".to_string(), "move".to_string()]
        );
        assert!(api.ingest(p, u, "png", b"...", None).is_err());
        assert!(api.ingest(p, u, "csv", b"broken", None).is_err());
    }

    #[test]
    fn publishing_and_visibility() {
        let api = Api::new();
        let alice = api.create_user("alice");
        let bob = api.create_user("bob");
        let p = api.create_project("open-kws", alice).unwrap();
        assert!(api.make_public(p, bob, &[]).is_err(), "non-owner cannot publish");
        api.make_public(p, alice, &["audio", "kws"]).unwrap();
        // public projects become readable (not writable) to everyone
        assert!(api.dataset(p, bob).is_ok());
        assert!(api.with_project_mut(p, bob, |_| ()).is_err());
        assert_eq!(api.public_projects().len(), 1);
        assert!(api.list_projects(bob).iter().any(|(id, _, public)| *id == p && *public));
    }

    #[test]
    fn snapshots_via_api() {
        let api = Api::new();
        let u = api.create_user("u");
        let p = api.create_project("versioned", u).unwrap();
        let v1 = api.snapshot(p, u, "first").unwrap();
        let v2 = api.snapshot(p, u, "second").unwrap();
        assert_eq!((v1, v2), (1, 2));
    }

    #[test]
    fn submit_training_trains_and_registers() {
        use ei_data::ingest::to_wav_bytes;
        let api = Api::new();
        let u = api.create_user("trainer");
        let p = api.create_project("auto-train", u).unwrap();
        // small two-class audio dataset over the ingestion API
        let gen = ei_data::synth::KwsGenerator {
            classes: vec!["a".into(), "b".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        };
        for ci in 0..2 {
            for k in 0..10 {
                let wav = to_wav_bytes(4_000, &gen.generate(ci, k));
                api.ingest(p, u, "wav", &wav, Some(&gen.classes[ci])).unwrap();
            }
        }
        let design = ei_core::impulse::ImpulseDesign::new(
            "auto",
            1_000,
            ei_dsp::DspConfig::Mfcc(ei_dsp::MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap();
        // no impulse yet -> rejected
        let scheduler = JobScheduler::new(1);
        let spec = ei_nn::presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
        assert!(api
            .submit_training(&scheduler, p, u, "m1", spec.clone(), TrainConfig::default())
            .is_err());
        api.set_impulse(p, u, design).unwrap();
        let job = api
            .submit_training(
                &scheduler,
                p,
                u,
                "m1",
                spec,
                TrainConfig { epochs: 6, learning_rate: 0.01, ..TrainConfig::default() },
            )
            .unwrap();
        let accuracy: f32 = scheduler.wait(job).unwrap().parse().unwrap();
        assert!(accuracy > 0.5, "job accuracy {accuracy}");
        // the trained model landed in the registry and reloads
        let json = api.download_model(p, u, "m1").unwrap();
        let reloaded = ei_core::impulse::TrainedImpulse::from_json(&json).unwrap();
        assert_eq!(reloaded.labels(), ["a", "b"]);
    }

    #[test]
    fn model_registry_round_trip() {
        let api = Api::new();
        let u = api.create_user("u");
        let outsider = api.create_user("o");
        let p = api.create_project("registry", u).unwrap();
        api.upload_model(p, u, "kws-v1", "{\"fake\": true}".to_string()).unwrap();
        assert_eq!(api.list_models(p, u).unwrap(), vec!["kws-v1".to_string()]);
        assert_eq!(api.download_model(p, u, "kws-v1").unwrap(), "{\"fake\": true}");
        assert!(api.download_model(p, u, "missing").is_err());
        assert!(api.upload_model(p, outsider, "x", String::new()).is_err());
    }

    #[test]
    fn export_import_round_trip() {
        let api = Api::new();
        let u = api.create_user("u");
        let p = api.create_project("persisted", u).unwrap();
        api.ingest(p, u, "csv", b"x\n1\n2\n", Some("k")).unwrap();
        api.snapshot(p, u, "v1").unwrap();
        api.upload_model(p, u, "m", "{}".into()).unwrap();
        api.make_public(p, u, &["tag"]).unwrap();

        let backup = api.export_json().unwrap();
        let restored = Api::import_json(&backup).unwrap();
        // everything survives: data, versions, registry, visibility
        restored
            .with_project(p, u, |proj| {
                assert_eq!(proj.dataset.len(), 1);
                assert_eq!(proj.versions.len(), 1);
                assert_eq!(proj.models.len(), 1);
                assert!(proj.public);
            })
            .unwrap();
        // and ids keep advancing without collision
        let q = restored.create_project("after-restore", u).unwrap();
        assert!(q > p);
        assert!(Api::import_json("garbage").is_err());
    }

    #[test]
    fn export_bytes_identical_across_shard_counts() {
        let build = |shards: usize| {
            let api = Api::with_shards(shards);
            let u = api.create_user("u");
            for i in 0..20 {
                let p = api.create_project(&format!("p{i}"), u).unwrap();
                api.ingest(p, u, "csv", b"x\n1\n", Some("k")).unwrap();
                api.upload_model(p, u, "m", format!("{{\"i\": {i}}}")).unwrap();
                if i % 3 == 0 {
                    api.make_public(p, u, &["tag"]).unwrap();
                }
            }
            api
        };
        let serial = build(1).export_json().unwrap();
        for shards in [4, 16, 64] {
            assert_eq!(
                build(shards).export_json().unwrap(),
                serial,
                "{shards}-shard export must match the serial reference byte-for-byte"
            );
        }
        // and a restored sharded platform re-exports the same bytes
        assert_eq!(Api::import_json(&serial).unwrap().export_json().unwrap(), serial);
    }

    #[test]
    fn project_quotas_charge_and_deny() {
        let api = Api::new();
        let u = api.create_user("u");
        let outsider = api.create_user("o");
        let p = api.create_project("metered", u).unwrap();
        // unlimited by default
        api.ingest(p, u, "csv", b"x\n1\n", None).unwrap();
        assert!(api.set_project_quota(p, outsider, 5).is_err(), "owner only");
        api.set_project_quota(p, u, 2).unwrap();
        api.ingest(p, u, "csv", b"x\n2\n", None).unwrap();
        let denied = api.ingest(p, u, "csv", b"x\n3\n", None);
        assert!(matches!(denied, Err(PlatformError::QuotaExceeded { .. })), "{denied:?}");
        let usage = api.project_quota(p, u).unwrap();
        assert_eq!((usage.used, usage.limit, usage.denied), (2, 2, 1));
        // a failed (denied-access) ingest refunds its unit
        api.set_project_quota(p, u, 3).unwrap();
        assert!(api.ingest(p, outsider, "csv", b"x\n4\n", None).is_err());
        assert_eq!(api.project_quota(p, u).unwrap().used, 2);
        assert_eq!(api.dataset(p, u).unwrap().len(), 2);
    }

    #[test]
    fn project_burst_refills_on_the_serving_clock() {
        let api = Api::new();
        let clock = ei_faults::VirtualClock::shared();
        let server = Arc::new(Server::new(
            ServerConfig::default(),
            Arc::clone(&clock) as Arc<dyn ei_faults::Clock>,
            Arc::new(ei_par::ParPool::new(ei_par::Parallelism::serial())),
            ei_trace::Tracer::disabled(),
        ));
        api.attach_serving(server).unwrap();
        let u = api.create_user("u");
        let outsider = api.create_user("o");
        let p = api.create_project("bursty", u).unwrap();
        assert!(api.set_project_burst(p, outsider, 2, 1.0).is_err(), "owner only");
        api.set_project_burst(p, u, 2, 1.0).unwrap();
        // two units of burst admit, the third denies with zero tokens left
        api.ingest(p, u, "csv", b"x\n1\n", None).unwrap();
        api.ingest(p, u, "csv", b"x\n2\n", None).unwrap();
        let denied = api.ingest(p, u, "csv", b"x\n3\n", None);
        assert!(matches!(denied, Err(PlatformError::QuotaExceeded { .. })), "{denied:?}");
        // one refilled token per logical second of serving-clock time
        clock.advance_ms(1_000);
        api.ingest(p, u, "csv", b"x\n3\n", None).unwrap();
        assert!(api.ingest(p, u, "csv", b"x\n4\n", None).is_err(), "bucket dry again");
        let usage = api.project_quota(p, u).unwrap();
        assert_eq!((usage.used, usage.denied), (3, 2));
        // removing the bucket restores plain cumulative accounting
        api.set_project_burst(p, u, 0, 0.0).unwrap();
        api.ingest(p, u, "csv", b"x\n4\n", None).unwrap();
    }

    #[test]
    fn shard_introspection_and_rebalance() {
        let api = Api::with_shards(4);
        let u = api.create_user("u");
        for i in 0..32 {
            api.create_project(&format!("p{i}"), u).unwrap();
        }
        let report = api.shard_report();
        assert_eq!(report.shards, 4);
        assert_eq!(report.occupancy.iter().sum::<usize>(), 32);
        assert!(report.skew >= 1.0);
        assert_eq!(report.last_rebalance, None);
        assert_eq!(report.policy, None);
        assert_eq!(report.cache, None, "no serving layer attached yet");
        let before = api.export_json().unwrap();
        let rebalanced = api.rebalance(7);
        assert!(rebalanced.skew_after <= rebalanced.skew_before);
        // placement changed (possibly), bytes did not
        assert_eq!(api.export_json().unwrap(), before);
        assert_eq!(api.shard_report().last_rebalance, Some(rebalanced));
    }

    /// The deprecated one-number introspection calls survive one release
    /// as thin delegates and must agree with the consolidated report.
    #[test]
    #[allow(deprecated)]
    fn deprecated_introspection_delegates_match_shard_report() {
        let api = Api::with_shards(4);
        let u = api.create_user("u");
        for i in 0..9 {
            api.create_project(&format!("p{i}"), u).unwrap();
        }
        let report = api.shard_report();
        assert_eq!(api.shard_count(), report.shards);
        assert_eq!(api.shard_occupancy(), report.occupancy);
        assert!((api.occupancy_skew() - report.skew).abs() < 1e-12);
    }

    #[test]
    fn policy_driven_rebalance_fires_from_telemetry_and_keeps_bytes() {
        let clock = ei_faults::VirtualClock::shared();
        let obs = ei_obs::Obs::builder(Arc::clone(&clock) as Arc<dyn ei_faults::Clock>).build();
        let api = Api::with_shards(4);
        api.attach_obs(&obs);
        let u = api.create_user("u");
        for i in 0..24 {
            api.create_project(&format!("p{i}"), u).unwrap();
        }
        // no policy installed: polling is a no-op
        assert_eq!(api.poll_rebalance(), None);
        api.set_rebalance_policy(RebalancePolicy::new(1.01, 2));
        let skewed = api.shard_report().skew > 1.01;
        let before = api.export_json().unwrap();
        clock.advance_ms(50);
        let first = api.poll_rebalance();
        assert_eq!(first, None, "one observation is not a streak");
        clock.advance_ms(50);
        let second = api.poll_rebalance();
        if skewed {
            let report = second.expect("two consecutive over-threshold observations trigger");
            assert!(report.skew_after <= report.skew_before);
            let status = api.shard_report().policy.expect("policy installed");
            assert_eq!(status.triggers, 1);
            assert_eq!(status.last_trigger_ms, Some(100));
            assert_eq!(api.shard_report().last_rebalance, Some(report));
        } else {
            assert_eq!(second, None);
        }
        // telemetry-driven or not, rebalance never changes exported bytes
        assert_eq!(api.export_json().unwrap(), before);
    }

    #[test]
    fn shard_telemetry_lands_in_obs() {
        let clock = ei_faults::VirtualClock::shared();
        let obs = ei_obs::Obs::builder(clock as Arc<dyn ei_faults::Clock>).build();
        let api = Api::with_shards(2);
        api.attach_obs(&obs);
        let u = api.create_user("u");
        api.create_project("observed", u).unwrap();
        let metrics = obs.prometheus();
        assert!(metrics.contains("platform_shard_occupancy"), "{metrics}");
        assert!(metrics.contains("platform_shard_lock_wait"), "{metrics}");
    }

    #[test]
    fn typed_ids_refuse_unknown_entities() {
        // the swapped-argument win is compile-time; unknown typed ids must
        // still fail cleanly at runtime
        let api = Api::new();
        let u = api.create_user("u");
        assert!(api.create_organization("lab", UserId(77)).is_err());
        assert!(api.add_collaborator(ProjectId(5), u, u).is_err());
        assert!(api.dataset(ProjectId(5), u).is_err());
        assert!(api.impulse(ProjectId(5), u).is_err());
    }

    #[test]
    fn streaming_session_lifecycle() {
        let api = Api::new();
        let alice = api.create_user("alice");
        let outsider = api.create_user("outsider");
        let p = api.create_project("live-kws", alice).unwrap();

        // deterministic serving stack for the stream to ride on
        let clock = ei_faults::VirtualClock::shared();
        let server = Arc::new(Server::new(
            ServerConfig::default(),
            clock as Arc<dyn ei_faults::Clock>,
            Arc::new(ei_par::ParPool::new(ei_par::Parallelism::serial())),
            ei_trace::Tracer::disabled(),
        ));
        api.attach_serving(server).unwrap();

        // train + register a tiny audio model (window 1000, frame stride 64)
        let gen = ei_data::synth::KwsGenerator {
            classes: vec!["yes".into(), "no".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        };
        let design = ImpulseDesign::new(
            "live",
            1_000,
            ei_dsp::DspConfig::Mfcc(ei_dsp::MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap();
        let spec = ei_nn::presets::dense_mlp(design.feature_dims().unwrap(), 2, 8);
        let config = TrainConfig { epochs: 2, seed: 11, ..TrainConfig::default() };
        let json = design.train(&spec, &gen.dataset(4, 11), &config).unwrap().to_json().unwrap();
        api.upload_model(p, alice, "kws", json).unwrap();

        // misaligned hop is a BadRequest, not a panic
        assert!(matches!(
            api.stream_open(p, alice, "kws", SessionConfig::new("", 100)),
            Err(PlatformError::BadRequest(_))
        ));
        assert!(api.stream_open(p, alice, "missing", SessionConfig::new("", 256)).is_err());

        let mut cfg = SessionConfig::new("", 256);
        cfg.max_pending = 64;
        let sid = api.stream_open(p, alice, "kws", cfg).unwrap();

        // the session is pinned to its project's shard
        let expected = (fnv1a_u64(p.0) % api.streams.shard_count() as u64) as usize;
        assert_eq!(api.streams.shard_of(&sid.0), expected);

        // outsiders can neither feed nor close someone else's stream
        assert!(api.stream_push(sid, outsider, &[0.0; 64]).is_err());
        assert!(api.stream_close(sid, outsider).is_err());
        assert!(api.stream_push(SessionId(999), alice, &[0.0; 64]).is_err(), "unknown session");

        let signal: Vec<f32> = (0..4).flat_map(|i| gen.generate(i % 2, i as u64)).collect();
        let mut verdicts = Vec::new();
        for chunk in signal.chunks(500) {
            verdicts.extend(api.stream_push(sid, alice, chunk).unwrap());
        }
        let stats = api.stream_close(sid, alice).unwrap();
        assert!(stats.windows_classified >= 10, "stats {stats:?}");
        assert!(stats.features_identical(), "incremental DSP must match batch bitwise");
        assert!(!verdicts.is_empty());
        // empty tenant defaulted to the project billing identity
        assert!(api.stream_close(sid, alice).is_err(), "closed sessions are gone");
    }

    #[test]
    fn clones_share_state() {
        let api = Api::new();
        let clone = api.clone();
        let u = api.create_user("shared");
        assert!(clone.create_project("via-clone", u).is_ok());
    }
}
