//! Distributed-training jobs: the bridge between the [`JobScheduler`]
//! and the `ei-dist` data-parallel cluster.
//!
//! A distributed run is submitted as an ordinary scheduler job, so it
//! inherits the platform's whole failure envelope unchanged: retry
//! policy with seeded backoff, per-attempt watchdog timeouts,
//! cooperative cancellation, and dead-lettering (with
//! [`JobScheduler::requeue`]) when every attempt is exhausted. Each
//! attempt rebuilds the model from its spec and reruns the cluster from
//! scratch — `ei-dist` training is bitwise deterministic, so a retry
//! that converges produces exactly the weights the first attempt would
//! have, and one-shot fault scripts consumed by a dying first attempt
//! leave the retry clean.

use crate::error::PlatformError;
use crate::jobs::JobScheduler;
use crate::Result;
use ei_dist::{DistReport, DistTrainer};
use ei_faults::RetryPolicy;
use ei_nn::spec::ModelSpec;
use ei_nn::Sequential;
use std::sync::{Arc, Mutex};

/// A distributed training job: everything one scheduler attempt needs
/// to run the cluster end to end.
pub struct DistTrainingJob {
    /// The cluster trainer (worker count, heartbeats, fault script).
    pub trainer: DistTrainer,
    /// Model architecture; each attempt rebuilds from this spec with the
    /// training seed, so retries start from identical initial weights.
    pub spec: ModelSpec,
    /// Training inputs (feature vectors).
    pub inputs: Vec<Vec<f32>>,
    /// Class labels, parallel to `inputs`.
    pub labels: Vec<usize>,
}

/// Handle to a submitted distributed training job: the scheduler id for
/// status/cancel/wait plus a slot the final [`DistReport`] lands in.
pub struct DistJobHandle {
    /// Scheduler job id — pass to [`JobScheduler::wait`], `status`,
    /// `cancel`, `attempt_history`, or `requeue` after dead-lettering.
    pub id: u64,
    report: Arc<Mutex<Option<DistReport>>>,
}

impl DistJobHandle {
    /// The report of the last successful attempt, once the job finished.
    pub fn report(&self) -> Option<DistReport> {
        self.report.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Submits `job` to `scheduler` under `policy` and returns its handle.
///
/// The job's success output is a one-line summary
/// (`epochs=… loss=… checksum=… crashes=…`); the full [`DistReport`] is
/// available via [`DistJobHandle::report`]. A cluster failure (all
/// workers lost, epoch retries exhausted, bad data) is an ordinary job
/// failure: the scheduler retries it under `policy` and dead-letters it
/// when exhausted.
///
/// # Errors
///
/// Returns [`PlatformError::SchedulerStopped`] after shutdown and
/// [`PlatformError::BadRequest`] for empty or mismatched training data.
pub fn submit_distributed_training(
    scheduler: &JobScheduler,
    policy: RetryPolicy,
    job: DistTrainingJob,
) -> Result<DistJobHandle> {
    if job.inputs.is_empty() || job.inputs.len() != job.labels.len() {
        return Err(PlatformError::BadRequest(format!(
            "distributed training needs matching inputs/labels, got {} vs {}",
            job.inputs.len(),
            job.labels.len()
        )));
    }
    let report_slot: Arc<Mutex<Option<DistReport>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&report_slot);
    let DistTrainingJob { trainer, spec, inputs, labels } = job;
    let seed = trainer.train_config().seed;
    let id = scheduler.submit_with(policy, move |ctx| {
        if ctx.cancel.is_cancelled() {
            return Err("cancelled before training started".into());
        }
        let mut model =
            Sequential::build(&spec, seed).map_err(|e| format!("model build failed: {e}"))?;
        let report = trainer.train(&mut model, &inputs, &labels).map_err(|e| e.to_string())?;
        let summary = format!(
            "epochs={} loss={:.4} checksum={:016x} crashes={}",
            report.epochs,
            report.train_loss.last().copied().unwrap_or(f32::NAN),
            report.weight_checksum,
            report.crashes_detected,
        );
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
        Ok(summary)
    })?;
    Ok(DistJobHandle { id, report: report_slot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_dist::{DistConfig, DistFaultPlan, WorkerFault};
    use ei_nn::spec::{Activation, Dims, LayerSpec};
    use ei_nn::train::TrainConfig;

    fn blobs(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut inputs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut state = 123u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            inputs.push(vec![cx + 0.3 * next(), -cx + 0.3 * next(), 0.3 * next(), 0.3 * next()]);
            labels.push(class);
        }
        (inputs, labels)
    }

    fn spec() -> ModelSpec {
        ModelSpec::new(Dims::new(1, 4, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax)
    }

    fn train_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 4,
            learning_rate: 0.01,
            validation_split: 0.0,
            seed: 42,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn dist_job_runs_through_the_scheduler() {
        let scheduler = JobScheduler::new(1);
        let (inputs, labels) = blobs(24);
        let job = DistTrainingJob {
            trainer: DistTrainer::new(DistConfig::new(2).with_partitions(4), train_cfg()),
            spec: spec(),
            inputs,
            labels,
        };
        let handle =
            submit_distributed_training(&scheduler, RetryPolicy::immediate(1), job).unwrap();
        let summary = scheduler.wait(handle.id).unwrap();
        assert!(summary.starts_with("epochs=2 "), "{summary}");
        let report = handle.report().expect("report recorded on success");
        assert_eq!(report.epochs, 2);
        assert_eq!(report.crashes_detected, 0);
    }

    #[test]
    fn retry_recovers_a_dist_job_whose_cluster_died() {
        let scheduler = JobScheduler::new(1);
        let (inputs, labels) = blobs(24);
        // the lone worker crashes: attempt 1 loses the whole cluster.
        // The one-shot fault is consumed, so the retry runs clean.
        let trainer = DistTrainer::new(
            DistConfig::new(1).with_partitions(4).with_timeout_ms(40),
            train_cfg(),
        )
        .with_faults(DistFaultPlan::new().inject(0, 0, 0, WorkerFault::Crash));
        let job = DistTrainingJob { trainer, spec: spec(), inputs, labels };
        let handle =
            submit_distributed_training(&scheduler, RetryPolicy::immediate(2), job).unwrap();
        let summary = scheduler.wait(handle.id).unwrap();
        assert!(summary.contains("crashes=0"), "the retry saw no faults: {summary}");
        let history = scheduler.attempt_history(handle.id).unwrap();
        assert_eq!(history.len(), 1, "exactly one failed attempt before recovery");
        assert!(history[0].cause.to_string().contains("all workers dead"), "{:?}", history[0]);
    }

    #[test]
    fn exhausted_dist_job_is_dead_lettered_and_requeueable() {
        let scheduler = JobScheduler::new(1);
        let (inputs, labels) = blobs(24);
        // zero workers is rejected by validation on every attempt
        let job = DistTrainingJob {
            trainer: DistTrainer::new(DistConfig::new(0), train_cfg()),
            spec: spec(),
            inputs,
            labels,
        };
        let handle =
            submit_distributed_training(&scheduler, RetryPolicy::immediate(1), job).unwrap();
        assert!(scheduler.wait(handle.id).is_err());
        assert!(handle.report().is_none());
        let letter = scheduler.dead_letter(handle.id).unwrap();
        assert!(letter.requeueable, "a dead dist job can be requeued for another run");
    }

    #[test]
    fn mismatched_data_is_rejected_before_submission() {
        let scheduler = JobScheduler::new(1);
        let job = DistTrainingJob {
            trainer: DistTrainer::new(DistConfig::new(1), train_cfg()),
            spec: spec(),
            inputs: vec![vec![0.0; 4]; 3],
            labels: vec![0; 2],
        };
        assert!(matches!(
            submit_distributed_training(&scheduler, RetryPolicy::immediate(1), job),
            Err(PlatformError::BadRequest(_))
        ));
    }
}
