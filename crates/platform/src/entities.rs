//! Platform entities: users, organizations, projects and versions.

use ei_core::impulse::ImpulseDesign;
use ei_data::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A platform user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Unique id.
    pub id: u64,
    /// Display name.
    pub name: String,
}

/// An organization: a group of users collaborating on projects (paper
/// §6.3 "Organizations").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// Unique id.
    pub id: u64,
    /// Organization name.
    pub name: String,
    /// Member user ids.
    pub members: Vec<u64>,
}

impl Organization {
    /// `true` when the user belongs to the organization.
    pub fn has_member(&self, user_id: u64) -> bool {
        self.members.contains(&user_id)
    }
}

/// An immutable snapshot of a project's reproducible state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectVersion {
    /// Version number (1-based, monotonically increasing).
    pub version: u32,
    /// Free-form description.
    pub description: String,
    /// Dataset version the snapshot captured.
    pub dataset_version: u64,
    /// Impulse design at snapshot time.
    pub impulse: Option<ImpulseDesign>,
}

/// A project: dataset + impulse design + collaboration state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Project {
    /// Unique id.
    pub id: u64,
    /// Project name.
    pub name: String,
    /// Owning user.
    pub owner: u64,
    /// Collaborator user ids (beyond the owner).
    pub collaborators: Vec<u64>,
    /// The project's dataset.
    pub dataset: Dataset,
    /// The impulse design, once configured.
    pub impulse: Option<ImpulseDesign>,
    /// Saved version snapshots.
    pub versions: Vec<ProjectVersion>,
    /// Whether the project is listed in the public registry.
    pub public: bool,
    /// Search tags.
    pub tags: Vec<String>,
    /// The model registry: trained-impulse JSON artifacts by name.
    #[serde(default)]
    pub models: BTreeMap<String, String>,
}

impl Project {
    /// Creates a fresh private project.
    pub fn new(id: u64, name: &str, owner: u64) -> Project {
        Project {
            id,
            name: name.to_string(),
            owner,
            collaborators: Vec::new(),
            dataset: Dataset::new(name),
            impulse: None,
            versions: Vec::new(),
            public: false,
            tags: Vec::new(),
            models: BTreeMap::new(),
        }
    }

    /// `true` when the user may read/write the project.
    pub fn can_access(&self, user_id: u64) -> bool {
        self.owner == user_id || self.collaborators.contains(&user_id)
    }

    /// Saves an immutable snapshot of the current state and returns its
    /// version number.
    pub fn snapshot(&mut self, description: &str) -> u32 {
        let version = self.versions.len() as u32 + 1;
        self.versions.push(ProjectVersion {
            version,
            description: description.to_string(),
            dataset_version: self.dataset.version(),
            impulse: self.impulse.clone(),
        });
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_data::{Sample, SensorKind};

    #[test]
    fn access_control() {
        let mut p = Project::new(1, "demo", 10);
        assert!(p.can_access(10));
        assert!(!p.can_access(11));
        p.collaborators.push(11);
        assert!(p.can_access(11));
        assert!(!p.can_access(12));
    }

    #[test]
    fn snapshots_capture_dataset_version() {
        let mut p = Project::new(1, "demo", 10);
        p.dataset.add(Sample::new(0, vec![1.0], SensorKind::Other).with_label("x"));
        let v1 = p.snapshot("initial data");
        p.dataset.add(Sample::new(0, vec![2.0], SensorKind::Other).with_label("y"));
        let v2 = p.snapshot("more data");
        assert_eq!((v1, v2), (1, 2));
        assert!(p.versions[0].dataset_version < p.versions[1].dataset_version);
        assert_eq!(p.versions[0].description, "initial data");
    }

    #[test]
    fn organization_membership() {
        let org = Organization { id: 1, name: "lab".into(), members: vec![1, 2] };
        assert!(org.has_member(1));
        assert!(!org.has_member(3));
    }
}
