//! Platform entities: users, organizations, projects and versions.
//!
//! Identities are newtypes over `u64` ([`UserId`], [`ProjectId`],
//! [`OrgId`]): every `Api` endpoint that used to take two or three
//! positional `u64`s now refuses, at compile time, a swapped
//! `(project, acting)` pair. They serialize transparently, so exported
//! platform state is byte-compatible with the untyped format.

use ei_core::impulse::ImpulseDesign;
use ei_data::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_newtype! {
    /// Identity of a platform user.
    UserId
}
id_newtype! {
    /// Identity of a project.
    ProjectId
}
id_newtype! {
    /// Identity of an organization.
    OrgId
}
id_newtype! {
    /// Identity of an open streaming session, handed out by
    /// `Api::stream_open` and consumed by the other `stream_*`
    /// endpoints. Serializes transparently as the raw `u64`, so any
    /// recorded session handles stay byte-compatible.
    SessionId
}

/// A platform user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Unique id.
    pub id: UserId,
    /// Display name.
    pub name: String,
}

/// An organization: a group of users collaborating on projects (paper
/// §6.3 "Organizations").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// Unique id.
    pub id: OrgId,
    /// Organization name.
    pub name: String,
    /// Member user ids.
    pub members: Vec<UserId>,
}

impl Organization {
    /// `true` when the user belongs to the organization.
    pub fn has_member(&self, user_id: UserId) -> bool {
        self.members.contains(&user_id)
    }
}

/// An immutable snapshot of a project's reproducible state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectVersion {
    /// Version number (1-based, monotonically increasing).
    pub version: u32,
    /// Free-form description.
    pub description: String,
    /// Dataset version the snapshot captured.
    pub dataset_version: u64,
    /// Impulse design at snapshot time.
    pub impulse: Option<ImpulseDesign>,
}

/// A project: dataset + impulse design + collaboration state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Project {
    /// Unique id.
    pub id: ProjectId,
    /// Project name.
    pub name: String,
    /// Owning user.
    pub owner: UserId,
    /// Collaborator user ids (beyond the owner).
    pub collaborators: Vec<UserId>,
    /// The project's dataset.
    pub dataset: Dataset,
    /// The impulse design, once configured.
    pub impulse: Option<ImpulseDesign>,
    /// Saved version snapshots.
    pub versions: Vec<ProjectVersion>,
    /// Whether the project is listed in the public registry.
    pub public: bool,
    /// Search tags.
    pub tags: Vec<String>,
    /// The model registry: trained-impulse JSON artifacts by name.
    #[serde(default)]
    pub models: BTreeMap<String, String>,
}

impl Project {
    /// Creates a fresh private project.
    pub fn new(id: ProjectId, name: &str, owner: UserId) -> Project {
        Project {
            id,
            name: name.to_string(),
            owner,
            collaborators: Vec::new(),
            dataset: Dataset::new(name),
            impulse: None,
            versions: Vec::new(),
            public: false,
            tags: Vec::new(),
            models: BTreeMap::new(),
        }
    }

    /// `true` when the user may read/write the project.
    pub fn can_access(&self, user_id: UserId) -> bool {
        self.owner == user_id || self.collaborators.contains(&user_id)
    }

    /// Saves an immutable snapshot of the current state and returns its
    /// version number.
    pub fn snapshot(&mut self, description: &str) -> u32 {
        let version = self.versions.len() as u32 + 1;
        self.versions.push(ProjectVersion {
            version,
            description: description.to_string(),
            dataset_version: self.dataset.version(),
            impulse: self.impulse.clone(),
        });
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_data::{Sample, SensorKind};

    #[test]
    fn access_control() {
        let mut p = Project::new(ProjectId(1), "demo", UserId(10));
        assert!(p.can_access(UserId(10)));
        assert!(!p.can_access(UserId(11)));
        p.collaborators.push(UserId(11));
        assert!(p.can_access(UserId(11)));
        assert!(!p.can_access(UserId(12)));
    }

    #[test]
    fn snapshots_capture_dataset_version() {
        let mut p = Project::new(ProjectId(1), "demo", UserId(10));
        p.dataset.add(Sample::new(0, vec![1.0], SensorKind::Other).with_label("x"));
        let v1 = p.snapshot("initial data");
        p.dataset.add(Sample::new(0, vec![2.0], SensorKind::Other).with_label("y"));
        let v2 = p.snapshot("more data");
        assert_eq!((v1, v2), (1, 2));
        assert!(p.versions[0].dataset_version < p.versions[1].dataset_version);
        assert_eq!(p.versions[0].description, "initial data");
    }

    #[test]
    fn organization_membership() {
        let org =
            Organization { id: OrgId(1), name: "lab".into(), members: vec![UserId(1), UserId(2)] };
        assert!(org.has_member(UserId(1)));
        assert!(!org.has_member(UserId(3)));
    }

    #[test]
    fn ids_serialize_transparently() {
        // typed ids must keep exported JSON byte-compatible with raw u64s
        assert_eq!(serde_json::to_string(&ProjectId(7)).unwrap(), "7");
        let u: UserId = serde_json::from_str("42").unwrap();
        assert_eq!(u, UserId(42));
        assert_eq!(format!("project-{}", ProjectId(3)), "project-3");
        assert_eq!(serde_json::to_string(&SessionId(9)).unwrap(), "9");
        let s: SessionId = serde_json::from_str("9").unwrap();
        assert_eq!((s, s.0, format!("{s}")), (SessionId(9), 9, "9".into()));
    }
}
