//! Error type for the MLOps layer.

use std::fmt;

/// Errors produced by the platform API and job scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// An entity id was not found.
    NotFound {
        /// Entity kind (`"user"`, `"project"`, …).
        kind: &'static str,
        /// The missing id.
        id: u64,
    },
    /// The acting user lacks access to the target entity.
    AccessDenied(String),
    /// A request was malformed.
    BadRequest(String),
    /// A job failed after exhausting its retries.
    JobFailed(String),
    /// A job was cancelled before completing.
    JobCancelled(u64),
    /// The scheduler is shut down.
    SchedulerStopped,
    /// A status wait elapsed before the predicate matched.
    WaitTimeout {
        /// The job being watched.
        id: u64,
        /// The timeout that elapsed, in logical milliseconds.
        timeout_ms: u64,
    },
    /// The serving layer's bounded queue is full — back off and retry.
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// A serving tenant is out of quota tokens.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
    },
    /// A serving deadline elapsed before the request completed.
    DeadlineExceeded {
        /// Logical milliseconds the request waited before the server
        /// gave up.
        waited_ms: u64,
    },
    /// A dead-lettered job cannot be resubmitted: its closure is no
    /// longer parked (already requeued once, or stranded by shutdown).
    NotRequeueable {
        /// The dead-lettered job id.
        id: u64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NotFound { kind, id } => write!(f, "{kind} {id} not found"),
            PlatformError::AccessDenied(msg) => write!(f, "access denied: {msg}"),
            PlatformError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            PlatformError::JobFailed(msg) => write!(f, "job failed: {msg}"),
            PlatformError::JobCancelled(id) => write!(f, "job {id} cancelled"),
            PlatformError::SchedulerStopped => write!(f, "scheduler is stopped"),
            PlatformError::WaitTimeout { id, timeout_ms } => {
                write!(f, "job {id} status wait timed out after {timeout_ms} ms")
            }
            PlatformError::Overloaded { queue_depth } => {
                write!(f, "serving overloaded: queue is full at depth {queue_depth}")
            }
            PlatformError::QuotaExceeded { tenant } => {
                write!(f, "serving quota exceeded for tenant {tenant:?}")
            }
            PlatformError::DeadlineExceeded { waited_ms } => {
                write!(f, "serving deadline exceeded after {waited_ms} ms")
            }
            PlatformError::NotRequeueable { id } => {
                write!(f, "dead-lettered job {id} is not requeueable")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            PlatformError::NotFound { kind: "project", id: 7 }.to_string(),
            "project 7 not found"
        );
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<PlatformError>();
    }
}
