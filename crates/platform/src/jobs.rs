//! The job scheduler: a fault-tolerant worker pool executing queued
//! platform jobs.
//!
//! Stands in for the paper's EKS-based compute layer (§4.10): jobs
//! (feature extraction, training, deployment builds) are queued, picked up
//! by workers, and observable by id. The fault-tolerance layer is built on
//! [`ei_faults`]:
//!
//! * per-job [`RetryPolicy`] — exponential backoff with decorrelated
//!   jitter from a seeded RNG, max-attempt and max-elapsed caps;
//! * per-attempt timeouts — a watchdog thread marks an overrunning job
//!   [`JobStatus::TimedOut`] while it runs, and the attempt is discarded
//!   and rescheduled when its closure returns (closures cannot be
//!   preempted, so a stuck attempt's eventual result is treated as stale);
//! * panic isolation — a panicking job becomes a retryable failure via
//!   `catch_unwind` instead of killing its worker thread;
//! * cooperative cancellation — [`JobScheduler::cancel`] sets a
//!   [`CancelToken`] the job closure can poll, and resolves backoff sleeps
//!   promptly;
//! * a dead-letter queue — terminally failed jobs are parked with their
//!   full [`AttemptRecord`] history (cause, duration, backoff chosen).
//!
//! All timing flows through an [`ei_faults::Clock`], so the entire layer
//! is testable with a [`ei_faults::VirtualClock`] and zero wall-clock
//! sleeps. Observers never sleep-poll either: [`JobScheduler::wait`] and
//! [`JobScheduler::wait_for_status`] park on a condvar notified at every
//! status transition, and the watchdog re-scans deadlines by waiting for
//! the injected clock to tick ([`Clock::wait_for_tick_ms`]).
//!
//! Schedulers built with [`JobScheduler::new`] own dedicated worker
//! threads; those built with [`JobScheduler::with_pool`] instead run
//! every attempt as a detached task on a shared [`ei_par::ParPool`], so
//! one process-wide pool can serve the scheduler, the EON Tuner and DSP
//! sweeps without oversubscribing the host.
//!
//! The scheduler is also observable through [`ei_trace`]: construct it
//! with [`JobScheduler::with_clock_and_tracer`] and every lifecycle
//! transition (`job.queued` → `job.running` → `job.backoff` /
//! `job.timed_out` → `job.finished` / `job.dead_letter` /
//! `job.cancelled`) is emitted as a typed event, with `jobs.*` counters
//! aggregated in the tracer's metrics registry. With the default
//! disabled tracer none of this costs more than an `Option` check.

use crate::{PlatformError, Result};
use ei_faults::retry::{self, RetryEvent, RetryOutcome};
use ei_faults::{AttemptRecord, CancelToken, Clock, FailureCause, RetryPolicy, SystemClock};
use ei_par::ParPool;
use ei_shard::{fnv1a_u64, DeadLetterShards};
use ei_trace::{SpanGuard, Tracer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

pub use ei_faults::retry::AttemptContext as JobContext;

/// Observable job lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// Executing (with the 1-based attempt number).
    Running(u32),
    /// Sleeping between attempts.
    Backoff {
        /// The attempt that will run after the sleep.
        next_attempt: u32,
        /// The jittered delay chosen, in logical milliseconds.
        delay_ms: u64,
    },
    /// The watchdog observed the attempt past its deadline; the attempt
    /// will be discarded and retried when its closure returns.
    TimedOut {
        /// The overrunning 1-based attempt number.
        attempt: u32,
    },
    /// Finished successfully with an output string.
    Finished(String),
    /// Failed after exhausting retries (now in the dead-letter queue).
    Failed(String),
    /// Cancelled before completing.
    Cancelled,
}

/// A terminally failed job parked with its history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The job id.
    pub id: u64,
    /// The tenant key the job was routed under (the job's own id for
    /// unkeyed submissions) — the attribution a hot-shard operator
    /// pivots on. Stamped by the scheduler when the letter is recorded.
    pub key: u64,
    /// Description of the final failure.
    pub error: String,
    /// Every failed attempt, in order (cause, duration, backoff chosen).
    pub attempts: Vec<AttemptRecord>,
    /// The retry policy the job originally ran under — the job spec an
    /// operator inspects before deciding to requeue. `None` when the job
    /// was stranded by shutdown before its spec reached a worker.
    pub policy: Option<RetryPolicy>,
    /// `true` while the job's closure is still parked and
    /// [`JobScheduler::requeue`] can resubmit it. Cleared by a
    /// successful requeue; always `false` for shutdown-stranded jobs.
    pub requeueable: bool,
}

/// A queued work item.
type JobFn = Box<dyn FnMut(&JobContext<'_>) -> std::result::Result<String, String> + Send>;

struct QueuedJob {
    id: u64,
    policy: RetryPolicy,
    work: JobFn,
    /// The job's `"job"` span, opened at submission on the submitter's
    /// thread (adopting its ambient [`ei_trace::TraceContext`], so a job
    /// submitted from inside a traced request stitches into that
    /// request's causal tree) and closed when the job reaches a terminal
    /// state. Lifecycle events are emitted through it.
    span: SpanGuard,
}

struct JobState {
    status: JobStatus,
    cancel: CancelToken,
    attempts: Vec<AttemptRecord>,
}

/// A watchdog entry: the attempt being timed and its absolute deadline.
struct WatchEntry {
    attempt: u32,
    deadline_ms: u64,
}

#[derive(Default)]
struct Shared {
    jobs: Mutex<HashMap<u64, JobState>>,
    /// Notified (paired with the `jobs` mutex) on every status
    /// transition, so waiters park instead of sleep-polling.
    jobs_cond: Condvar,
    dead: Mutex<Vec<DeadLetter>>,
    /// Closures of exhausted jobs, parked for [`JobScheduler::requeue`],
    /// keyed by the dead-lettered job id.
    parked: Mutex<HashMap<u64, JobFn>>,
    watch: Mutex<HashMap<u64, WatchEntry>>,
    shutdown: AtomicBool,
    tracer: Tracer,
    /// job id → tenant key, recorded at submission. Sharded backends use
    /// it to place dead letters into the failing tenant's shard view.
    job_key: Mutex<HashMap<u64, u64>>,
    /// Per-shard dead-letter index (sharded backends only): which jobs
    /// died on which shard, keyed by the tenant key that routed them.
    dead_shards: Option<Arc<DeadLetterShards<u64>>>,
}

impl Shared {
    /// Wakes every thread blocked in [`JobScheduler::wait`] /
    /// [`JobScheduler::wait_for_status`] (and the pool-backend shutdown
    /// drain) after a status transition.
    fn notify_status(&self) {
        self.jobs_cond.notify_all();
    }

    /// Records a terminal dead-letter (status already stamped by the
    /// caller) and mirrors it into the trace stream — through the job's
    /// span when the caller still holds it, so the event names its
    /// causal chain for the flight recorder. Must never take the `jobs`
    /// lock: shutdown calls this while holding it.
    fn dead_letter(&self, span: Option<&SpanGuard>, mut letter: DeadLetter) {
        letter.key = lock(&self.job_key).get(&letter.id).copied().unwrap_or(letter.id);
        let fields = vec![("job", letter.id.into()), ("error", letter.error.as_str().into())];
        match span {
            Some(span) => span.event("job.dead_letter", fields),
            None => self.tracer.event("job.dead_letter", fields),
        }
        self.tracer.counter("jobs.dead_lettered").inc();
        if let Some(shards) = &self.dead_shards {
            shards.push(letter.key, letter.id, letter.error.clone());
        }
        lock(&self.dead).push(letter);
    }
}

/// Locks a mutex, recovering from poisoning (a panicking holder must not
/// take the scheduler down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Parks a status waiter on `cond` for at most [`STATUS_WAIT_CAP_MS`]
/// real milliseconds (recovering from poisoning), returning the reacquired
/// guard. Replaces the old raw `thread::sleep` poll loops.
fn wait_on<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cond.wait_timeout(guard, Duration::from_millis(STATUS_WAIT_CAP_MS)) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

/// Upper bound (real milliseconds) between watchdog scans for expired
/// attempt deadlines. The watchdog parks in [`Clock::wait_for_tick_ms`],
/// so under a [`ei_faults::VirtualClock`] it wakes the instant logical
/// time advances (never advancing the clock itself); the tick is only the
/// fallback granularity on the real clock.
const WATCHDOG_TICK_MS: u64 = 1;

/// Real-time fallback (milliseconds) for status waiters parked on the
/// scheduler condvar. Status transitions wake waiters immediately; the
/// cap exists so a *logical* deadline advanced by another thread is still
/// noticed promptly.
const STATUS_WAIT_CAP_MS: u64 = 1;

/// Message shutdown stamps on jobs it refuses to run.
const SHUTDOWN_ERROR: &str = "scheduler shut down";

/// One per-shard submission queue of a sharded backend. `draining` is
/// `true` while a drainer task owns the queue; a submit that flips it
/// from `false` spawns a new drainer on the shared pool.
struct ShardQueue {
    queue: Mutex<VecDeque<QueuedJob>>,
    draining: AtomicBool,
}

/// Decrements the in-flight count even if execution unwinds — and wakes
/// the shutdown drain — so shutdown never waits forever.
struct ActiveSlot(Arc<AtomicUsize>, Arc<Shared>);

impl Drop for ActiveSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        self.1.notify_status();
    }
}

/// Where a scheduler executes its attempts.
enum Backend {
    /// Dedicated worker threads draining an mpsc channel.
    Dedicated { sender: Option<Sender<QueuedJob>>, workers: Vec<JoinHandle<()>> },
    /// Detached tasks on a shared [`ei_par::ParPool`]; `active` counts
    /// submitted-but-not-terminal jobs so shutdown can wait them out.
    Pool { pool: Arc<ParPool>, active: Arc<AtomicUsize> },
    /// Per-shard FIFO submission queues feeding the shared pool: jobs
    /// route to `fnv1a(key) % shards`, one shard's jobs run in
    /// submission order (a single drainer task owns the queue at a
    /// time), different shards run concurrently up to the pool budget.
    Sharded { pool: Arc<ParPool>, active: Arc<AtomicUsize>, queues: Arc<Vec<ShardQueue>> },
}

/// A fixed-size worker pool with retry, timeout, panic-isolation,
/// cancellation and dead-letter support.
///
/// Dropping the scheduler stops accepting jobs, lets running attempts
/// finish, and marks still-queued jobs [`JobStatus::Failed`].
pub struct JobScheduler {
    backend: Backend,
    shared: Arc<Shared>,
    clock: Arc<dyn Clock>,
    watchdog: Option<JoinHandle<()>>,
    next_id: Mutex<u64>,
}

impl std::fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("JobScheduler");
        match &self.backend {
            Backend::Dedicated { workers, .. } => s.field("workers", &workers.len()),
            Backend::Pool { pool, .. } => s.field("pool_threads", &pool.threads()),
            Backend::Sharded { pool, queues, .. } => {
                s.field("pool_threads", &pool.threads()).field("shards", &queues.len())
            }
        };
        s.finish_non_exhaustive()
    }
}

impl JobScheduler {
    /// Starts a scheduler with `workers` threads on the system clock.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> JobScheduler {
        JobScheduler::with_clock(workers, Arc::new(SystemClock::new()))
    }

    /// Starts a scheduler with `workers` threads on an explicit clock
    /// (pass an [`ei_faults::VirtualClock`] for deterministic tests).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_clock(workers: usize, clock: Arc<dyn Clock>) -> JobScheduler {
        JobScheduler::with_clock_and_tracer(workers, clock, Tracer::disabled())
    }

    /// Starts a scheduler with `workers` threads on an explicit clock,
    /// emitting job lifecycle events and `jobs.*` counters through
    /// `tracer`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_clock_and_tracer(
        workers: usize,
        clock: Arc<dyn Clock>,
        tracer: Tracer,
    ) -> JobScheduler {
        assert!(workers > 0, "need at least one worker");
        let (sender, receiver) = channel::<QueuedJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let shared = Arc::new(Shared { tracer, ..Shared::default() });
        let handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || worker_loop(&receiver, &shared, &clock))
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || watchdog_loop(&shared, &clock))
        };
        JobScheduler {
            backend: Backend::Dedicated { sender: Some(sender), workers: handles },
            shared,
            clock,
            watchdog: Some(watchdog),
            next_id: Mutex::new(0),
        }
    }

    /// Starts a scheduler that runs jobs as detached tasks on `pool`
    /// (system clock) instead of spawning dedicated worker threads.
    ///
    /// Concurrency is bounded by the pool's thread budget, and the pool
    /// can be shared with other subsystems (tuner sweeps, DSP feature
    /// extraction) so the process keeps a single thread roster.
    pub fn with_pool(pool: Arc<ParPool>) -> JobScheduler {
        JobScheduler::with_pool_clock_and_tracer(
            pool,
            Arc::new(SystemClock::new()),
            Tracer::disabled(),
        )
    }

    /// Starts a pool-backed scheduler on an explicit clock and tracer;
    /// see [`JobScheduler::with_pool`].
    pub fn with_pool_clock_and_tracer(
        pool: Arc<ParPool>,
        clock: Arc<dyn Clock>,
        tracer: Tracer,
    ) -> JobScheduler {
        let shared = Arc::new(Shared { tracer, ..Shared::default() });
        let watchdog = {
            let shared = Arc::clone(&shared);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || watchdog_loop(&shared, &clock))
        };
        JobScheduler {
            backend: Backend::Pool { pool, active: Arc::new(AtomicUsize::new(0)) },
            shared,
            clock,
            watchdog: Some(watchdog),
            next_id: Mutex::new(0),
        }
    }

    /// Starts a shard-aware pool-backed scheduler (system clock):
    /// `shards` per-tenant FIFO submission queues feed `pool`. Use
    /// [`JobScheduler::submit_keyed`] to route jobs by tenant key — one
    /// tenant's burst queues behind itself on its shard instead of
    /// starving the whole scheduler.
    pub fn with_sharded_pool(pool: Arc<ParPool>, shards: usize) -> JobScheduler {
        JobScheduler::with_sharded_pool_clock_and_tracer(
            pool,
            shards,
            Arc::new(SystemClock::new()),
            Tracer::disabled(),
        )
    }

    /// Starts a sharded pool-backed scheduler on an explicit clock and
    /// tracer; see [`JobScheduler::with_sharded_pool`].
    pub fn with_sharded_pool_clock_and_tracer(
        pool: Arc<ParPool>,
        shards: usize,
        clock: Arc<dyn Clock>,
        tracer: Tracer,
    ) -> JobScheduler {
        let shards = shards.max(1);
        let shared = Arc::new(Shared {
            tracer,
            dead_shards: Some(Arc::new(DeadLetterShards::new(shards))),
            ..Shared::default()
        });
        let watchdog = {
            let shared = Arc::clone(&shared);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || watchdog_loop(&shared, &clock))
        };
        let queues = (0..shards)
            .map(|_| ShardQueue {
                queue: Mutex::new(VecDeque::new()),
                draining: AtomicBool::new(false),
            })
            .collect();
        JobScheduler {
            backend: Backend::Sharded {
                pool,
                active: Arc::new(AtomicUsize::new(0)),
                queues: Arc::new(queues),
            },
            shared,
            clock,
            watchdog: Some(watchdog),
            next_id: Mutex::new(0),
        }
    }

    /// The number of submission shards (1 for non-sharded backends).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Sharded { queues, .. } => queues.len(),
            _ => 1,
        }
    }

    /// Jobs waiting in each shard's submission queue, by shard index
    /// (empty for non-sharded backends, which queue elsewhere).
    pub fn queue_depths(&self) -> Vec<usize> {
        match &self.backend {
            Backend::Sharded { queues, .. } => {
                queues.iter().map(|q| lock(&q.queue).len()).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Dead letters produced by jobs routed to `shard` — the hot-shard
    /// operator's view. On a non-sharded backend shard 0 holds every
    /// letter.
    pub fn dead_letters_in_shard(&self, shard: usize) -> Vec<DeadLetter> {
        match &self.shared.dead_shards {
            None => {
                if shard == 0 {
                    self.dead_letters()
                } else {
                    Vec::new()
                }
            }
            Some(shards) => {
                let shard = shard % shards.shard_count();
                self.dead_letters()
                    .into_iter()
                    .filter(|l| shards.shard_of(&l.key) == shard)
                    .collect()
            }
        }
    }

    /// The clock the scheduler runs on.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Submits a job with up to `attempts` immediate executions (no
    /// backoff) — the legacy entry point; returns the job id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SchedulerStopped`] after shutdown.
    pub fn submit<F>(&self, attempts: u32, mut work: F) -> Result<u64>
    where
        F: FnMut() -> std::result::Result<String, String> + Send + 'static,
    {
        self.submit_with(RetryPolicy::immediate(attempts), move |_| work())
    }

    /// Submits a job routed by a tenant key (a project/user raw id): on a
    /// sharded backend it lands on submission shard `fnv1a(key) % shards`
    /// and runs FIFO with respect to every other job sharing that shard.
    /// Non-sharded backends accept the key (it still tags the job for
    /// [`JobScheduler::dead_letters_in_shard`]) but route as usual.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SchedulerStopped`] after shutdown.
    pub fn submit_keyed<F>(&self, key: u64, attempts: u32, mut work: F) -> Result<u64>
    where
        F: FnMut() -> std::result::Result<String, String> + Send + 'static,
    {
        self.submit_keyed_with(key, RetryPolicy::immediate(attempts), move |_| work())
    }

    /// [`JobScheduler::submit_keyed`] with an explicit [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SchedulerStopped`] after shutdown.
    pub fn submit_keyed_with<F>(&self, key: u64, policy: RetryPolicy, work: F) -> Result<u64>
    where
        F: FnMut(&JobContext<'_>) -> std::result::Result<String, String> + Send + 'static,
    {
        self.submit_boxed_keyed(policy, Box::new(work), Some(key))
    }

    /// Submits a job governed by `policy`; the closure receives a
    /// [`JobContext`] with the attempt number and the job's cancel token.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SchedulerStopped`] after shutdown.
    pub fn submit_with<F>(&self, policy: RetryPolicy, work: F) -> Result<u64>
    where
        F: FnMut(&JobContext<'_>) -> std::result::Result<String, String> + Send + 'static,
    {
        self.submit_boxed(policy, Box::new(work))
    }

    /// [`JobScheduler::submit_with`] for an already-boxed closure — the
    /// path [`JobScheduler::requeue`] reuses for parked dead letters.
    fn submit_boxed(&self, policy: RetryPolicy, work: JobFn) -> Result<u64> {
        self.submit_boxed_keyed(policy, work, None)
    }

    /// The one true submission path: allocates the id, registers state,
    /// and hands the job to the backend. `key` routes sharded backends
    /// (`None` falls back to the job's own id, spreading unkeyed jobs
    /// evenly).
    fn submit_boxed_keyed(
        &self,
        policy: RetryPolicy,
        work: JobFn,
        key: Option<u64>,
    ) -> Result<u64> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(PlatformError::SchedulerStopped);
        }
        let id = {
            let mut next = lock(&self.next_id);
            *next += 1;
            *next
        };
        let key = key.unwrap_or(id);
        lock(&self.shared.job_key).insert(id, key);
        lock(&self.shared.jobs).insert(
            id,
            JobState {
                status: JobStatus::Queued,
                cancel: CancelToken::new(),
                attempts: Vec::new(),
            },
        );
        let span = self.shared.tracer.span_with("job", vec![("job", id.into())]);
        span.event("job.queued", vec![("job", id.into())]);
        self.shared.tracer.counter("jobs.submitted").inc();
        let job = QueuedJob { id, policy, work, span };
        match &self.backend {
            Backend::Dedicated { sender, .. } => {
                let sender = sender.as_ref().ok_or(PlatformError::SchedulerStopped)?;
                sender.send(job).map_err(|_| PlatformError::SchedulerStopped)?;
            }
            Backend::Pool { pool, active } => {
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ActiveSlot(Arc::clone(active), Arc::clone(&self.shared));
                let shared = Arc::clone(&self.shared);
                let clock = Arc::clone(&self.clock);
                pool.spawn_detached(move || {
                    let _guard = guard;
                    execute_queued(job, &shared, &clock);
                });
            }
            Backend::Sharded { pool, active, queues } => {
                let shard = (fnv1a_u64(key) % queues.len() as u64) as usize;
                active.fetch_add(1, Ordering::SeqCst);
                lock(&queues[shard].queue).push_back(job);
                // first submitter after idle owns spawning the drainer
                if !queues[shard].draining.swap(true, Ordering::SeqCst) {
                    let queues = Arc::clone(queues);
                    let active = Arc::clone(active);
                    let shared = Arc::clone(&self.shared);
                    let clock = Arc::clone(&self.clock);
                    pool.spawn_detached(move || {
                        drain_shard(&queues, shard, &shared, &clock, &active);
                    });
                }
            }
        }
        Ok(id)
    }

    /// Current status of a job.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids.
    pub fn status(&self, id: u64) -> Result<JobStatus> {
        lock(&self.shared.jobs)
            .get(&id)
            .map(|s| s.status.clone())
            .ok_or(PlatformError::NotFound { kind: "job", id })
    }

    /// The failed-attempt history recorded for a job so far.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids.
    pub fn attempt_history(&self, id: u64) -> Result<Vec<AttemptRecord>> {
        lock(&self.shared.jobs)
            .get(&id)
            .map(|s| s.attempts.clone())
            .ok_or(PlatformError::NotFound { kind: "job", id })
    }

    /// Requests cooperative cancellation of a job.
    ///
    /// A still-queued job is cancelled immediately; a running job's
    /// closure observes the token at its next checkpoint; a job sleeping
    /// in backoff wakes promptly.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids.
    pub fn cancel(&self, id: u64) -> Result<()> {
        let mut jobs = lock(&self.shared.jobs);
        let state = jobs.get_mut(&id).ok_or(PlatformError::NotFound { kind: "job", id })?;
        state.cancel.cancel();
        if state.status == JobStatus::Queued {
            state.status = JobStatus::Cancelled;
            self.shared.tracer.event("job.cancelled", vec![("job", id.into())]);
            self.shared.tracer.counter("jobs.cancelled").inc();
        }
        drop(jobs);
        self.shared.notify_status();
        Ok(())
    }

    /// The job's cancellation token (for passing into cooperative work).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids.
    pub fn cancel_token(&self, id: u64) -> Result<CancelToken> {
        lock(&self.shared.jobs)
            .get(&id)
            .map(|s| s.cancel.clone())
            .ok_or(PlatformError::NotFound { kind: "job", id })
    }

    /// Terminally failed jobs with their full attempt history, sorted by
    /// `(key, id)` — the same deterministic order
    /// [`DeadLetterShards::merged`] uses — so the fleet-wide view reads
    /// identically on every backend and at every shard count.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        let mut out = lock(&self.shared.dead).clone();
        out.sort_by(|a, b| a.key.cmp(&b.key).then(a.id.cmp(&b.id)));
        out
    }

    /// The dead letter recorded for `id`: final failure cause, per-attempt
    /// history, and the retry policy the job ran under.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] when `id` was never
    /// dead-lettered.
    pub fn dead_letter(&self, id: u64) -> Result<DeadLetter> {
        lock(&self.shared.dead)
            .iter()
            .find(|l| l.id == id)
            .cloned()
            .ok_or(PlatformError::NotFound { kind: "dead letter", id })
    }

    /// Resubmits a dead-lettered job under its original retry policy and
    /// returns the **new** job id. The original letter stays in the queue
    /// for the record but is marked no longer requeueable.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] when `id` was never
    /// dead-lettered, [`PlatformError::NotRequeueable`] when its closure
    /// is no longer parked (already requeued, or stranded by shutdown),
    /// or [`PlatformError::SchedulerStopped`] after shutdown.
    pub fn requeue(&self, id: u64) -> Result<u64> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(PlatformError::SchedulerStopped);
        }
        let policy = {
            let mut dead = lock(&self.shared.dead);
            let letter = dead
                .iter_mut()
                .find(|l| l.id == id)
                .ok_or(PlatformError::NotFound { kind: "dead letter", id })?;
            match (&letter.policy, letter.requeueable) {
                (Some(policy), true) => {
                    let policy = policy.clone();
                    letter.requeueable = false;
                    policy
                }
                _ => return Err(PlatformError::NotRequeueable { id }),
            }
        };
        let work =
            lock(&self.shared.parked).remove(&id).ok_or(PlatformError::NotRequeueable { id })?;
        let new_id = self.submit_boxed(policy, work)?;
        self.shared.tracer.event("job.requeued", vec![("job", id.into()), ("as", new_id.into())]);
        self.shared.tracer.counter("jobs.requeued").inc();
        Ok(new_id)
    }

    /// Blocks until the job reaches a terminal state, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids,
    /// [`PlatformError::JobFailed`] when the job fails, or
    /// [`PlatformError::JobCancelled`] when it was cancelled.
    pub fn wait(&self, id: u64) -> Result<String> {
        let mut jobs = lock(&self.shared.jobs);
        loop {
            let status = jobs
                .get(&id)
                .map(|s| s.status.clone())
                .ok_or(PlatformError::NotFound { kind: "job", id })?;
            match status {
                JobStatus::Finished(output) => return Ok(output),
                JobStatus::Failed(e) => return Err(PlatformError::JobFailed(e)),
                JobStatus::Cancelled => return Err(PlatformError::JobCancelled(id)),
                _ => jobs = wait_on(&self.shared.jobs_cond, jobs),
            }
        }
    }

    /// Blocks until the job's status satisfies `pred`, returning the
    /// first matching status.
    ///
    /// The deadline is measured on the **scheduler's clock**, so the
    /// helper is exact under a [`ei_faults::VirtualClock`]: the timeout
    /// only elapses when logical time advances, never because the host is
    /// slow. (Corollary: with a virtual clock that nothing advances, a
    /// never-matching predicate waits forever — the intended reading of
    /// "this transition happens without time passing".)
    ///
    /// This replaces ad-hoc sleep-poll loops when tests or callers need
    /// to observe a *transient* state ([`JobStatus::Backoff`],
    /// [`JobStatus::TimedOut`], …) that [`JobScheduler::wait`] would skip
    /// past.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids and
    /// [`PlatformError::WaitTimeout`] when `timeout_ms` logical
    /// milliseconds elapse before the predicate matches.
    pub fn wait_for_status<P>(&self, id: u64, timeout_ms: u64, pred: P) -> Result<JobStatus>
    where
        P: Fn(&JobStatus) -> bool,
    {
        let deadline_ms = self.clock.now_ms().saturating_add(timeout_ms);
        let mut jobs = lock(&self.shared.jobs);
        loop {
            let status = jobs
                .get(&id)
                .map(|s| s.status.clone())
                .ok_or(PlatformError::NotFound { kind: "job", id })?;
            if pred(&status) {
                return Ok(status);
            }
            if self.clock.now_ms() >= deadline_ms {
                return Err(PlatformError::WaitTimeout { id, timeout_ms });
            }
            // park until a status transition notifies; the short real cap
            // only bounds how late a logical-deadline overrun (driven by
            // another thread advancing a virtual clock) is noticed
            jobs = wait_on(&self.shared.jobs_cond, jobs);
        }
    }

    /// Stops accepting new jobs, joins workers after running attempts
    /// finish, and marks every still-queued job
    /// `Failed("scheduler shut down")` (dead-lettered) so no observer
    /// waits on a `Queued` status forever.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match &mut self.backend {
            Backend::Dedicated { sender, workers } => {
                sender.take();
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
            }
            Backend::Pool { active, .. } | Backend::Sharded { active, .. } => {
                // queued tasks observe the shutdown flag when the pool
                // (or a shard drainer) reaches them and fail fast, so
                // this drains promptly; each finishing task notifies the
                // status condvar
                let mut jobs = lock(&self.shared.jobs);
                while active.load(Ordering::SeqCst) > 0 {
                    jobs = wait_on(&self.shared.jobs_cond, jobs);
                }
            }
        }
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
        // belt-and-braces: workers normally stamp drained jobs themselves.
        // Letters go in before the status flips so a waiter woken by
        // `Failed` always finds its dead letter (jobs → dead lock order).
        {
            let mut jobs = lock(&self.shared.jobs);
            for (id, state) in jobs.iter_mut() {
                if state.status == JobStatus::Queued {
                    // The job's span is inside the still-queued
                    // `QueuedJob` (dropped with the channel/pool), so the
                    // letter is recorded span-free.
                    self.shared.dead_letter(
                        None,
                        DeadLetter {
                            id: *id,
                            key: 0, // stamped by `Shared::dead_letter`
                            error: SHUTDOWN_ERROR.to_string(),
                            attempts: Vec::new(),
                            policy: None,
                            requeueable: false,
                        },
                    );
                    state.status = JobStatus::Failed(SHUTDOWN_ERROR.to_string());
                }
            }
        }
        self.shared.notify_status();
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drains one submission shard on a pool thread: jobs run strictly in
/// submission order (per-shard FIFO). When the queue looks empty the
/// drainer retires — unless a submit raced the handoff, in which case it
/// reclaims the queue and keeps going, so no job is ever stranded
/// without a drainer.
fn drain_shard(
    queues: &Arc<Vec<ShardQueue>>,
    shard: usize,
    shared: &Arc<Shared>,
    clock: &Arc<dyn Clock>,
    active: &Arc<AtomicUsize>,
) {
    loop {
        let job = lock(&queues[shard].queue).pop_front();
        match job {
            Some(job) => {
                let _slot = ActiveSlot(Arc::clone(active), Arc::clone(shared));
                execute_queued(job, shared, clock);
            }
            None => {
                queues[shard].draining.store(false, Ordering::SeqCst);
                // a submit may have pushed between the empty pop and the
                // flag store and seen `draining == true` (so spawned no
                // drainer); reclaim the queue if so
                if lock(&queues[shard].queue).is_empty()
                    || queues[shard].draining.swap(true, Ordering::SeqCst)
                {
                    return;
                }
            }
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<QueuedJob>>, shared: &Shared, clock: &Arc<dyn Clock>) {
    loop {
        // holding the lock only while receiving serializes pickup, not
        // execution
        let job = match lock(receiver).recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed and drained
        };
        execute_queued(job, shared, clock);
    }
}

/// Runs one picked-up job: the queued-state pre-checks (cancelled while
/// waiting, scheduler shut down) followed by the retry loop. Shared by
/// dedicated workers and pool-backed execution.
fn execute_queued(job: QueuedJob, shared: &Shared, clock: &Arc<dyn Clock>) {
    let token = {
        let mut jobs = lock(&shared.jobs);
        let Some(state) = jobs.get_mut(&job.id) else { return };
        if state.cancel.is_cancelled() {
            state.status = JobStatus::Cancelled;
            drop(jobs);
            shared.notify_status();
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // letter first, then the waking status flip (see `run_job`);
            // jobs → dead lock order is used nowhere in reverse
            shared.dead_letter(
                Some(&job.span),
                DeadLetter {
                    id: job.id,
                    key: 0, // stamped by `Shared::dead_letter`
                    error: SHUTDOWN_ERROR.to_string(),
                    attempts: Vec::new(),
                    policy: Some(job.policy.clone()),
                    requeueable: false,
                },
            );
            state.status = JobStatus::Failed(SHUTDOWN_ERROR.to_string());
            drop(jobs);
            shared.notify_status();
            return;
        }
        state.cancel.clone()
    };
    run_job(job, shared, clock, &token);
}

fn run_job(mut job: QueuedJob, shared: &Shared, clock: &Arc<dyn Clock>, token: &CancelToken) {
    let id = job.id;
    let span = &job.span;
    // Enter the job's context for the whole run: spans the work opens
    // (dist.train, par.scope, nested serving calls…) become descendants
    // of the `"job"` span and share its trace id.
    let _entered = span.enter();
    let set_status = |status: JobStatus| {
        if let Some(state) = lock(&shared.jobs).get_mut(&id) {
            state.status = status;
        }
        shared.notify_status();
    };
    let observer = |event: RetryEvent<'_>| match event {
        RetryEvent::AttemptStarted { attempt, deadline_ms } => {
            set_status(JobStatus::Running(attempt));
            span.event("job.running", vec![("job", id.into()), ("attempt", attempt.into())]);
            if let Some(deadline_ms) = deadline_ms {
                lock(&shared.watch).insert(id, WatchEntry { attempt, deadline_ms });
            }
        }
        RetryEvent::AttemptFinished { .. } => {
            lock(&shared.watch).remove(&id);
        }
        RetryEvent::AttemptFailed { record } => {
            if matches!(record.cause, FailureCause::TimedOut { .. }) {
                set_status(JobStatus::TimedOut { attempt: record.attempt });
                span.event(
                    "job.timed_out",
                    vec![("job", id.into()), ("attempt", record.attempt.into())],
                );
                shared.tracer.counter("jobs.timed_out").inc();
            }
            if let Some(state) = lock(&shared.jobs).get_mut(&id) {
                state.attempts.push(record.clone());
            }
        }
        RetryEvent::BackingOff { next_attempt, delay_ms } => {
            set_status(JobStatus::Backoff { next_attempt, delay_ms });
            span.event(
                "job.backoff",
                vec![
                    ("job", id.into()),
                    ("next_attempt", next_attempt.into()),
                    ("delay_ms", delay_ms.into()),
                ],
            );
        }
    };
    let result =
        retry::execute(&job.policy, clock.as_ref(), id, token, observer, |ctx| (job.work)(ctx));
    match result.outcome {
        RetryOutcome::Success { output, .. } => {
            set_status(JobStatus::Finished(output));
            let attempts = result.attempts.len() as u64 + 1;
            span.event("job.finished", vec![("job", id.into()), ("attempts", attempts.into())]);
            shared.tracer.counter("jobs.finished").inc();
        }
        RetryOutcome::Exhausted { error } => {
            // park the closure and record the letter *before* the status
            // flip: `Failed` wakes waiters, and a waiter is entitled to
            // find the dead letter the moment `wait` returns the error
            lock(&shared.parked).insert(id, job.work);
            shared.dead_letter(
                Some(span),
                DeadLetter {
                    id,
                    key: 0, // stamped by `Shared::dead_letter`
                    error: error.clone(),
                    attempts: result.attempts,
                    policy: Some(job.policy.clone()),
                    requeueable: true,
                },
            );
            set_status(JobStatus::Failed(error));
        }
        RetryOutcome::Cancelled => {
            set_status(JobStatus::Cancelled);
            span.event("job.cancelled", vec![("job", id.into())]);
            shared.tracer.counter("jobs.cancelled").inc();
        }
    }
}

/// Scans registered attempt deadlines and flips overrunning jobs to
/// [`JobStatus::TimedOut`] so observers see the overrun while the stuck
/// closure is still executing. The retry loop performs the actual
/// discard-and-reschedule when the closure returns.
///
/// Ticks off the injected [`Clock`]: the scan re-runs whenever logical
/// time advances (immediately under a [`ei_faults::VirtualClock`], on a
/// [`WATCHDOG_TICK_MS`] cadence on the real clock) and never advances
/// time itself.
fn watchdog_loop(shared: &Shared, clock: &Arc<dyn Clock>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let now = clock.now_ms();
        let expired: Vec<(u64, u32)> = lock(&shared.watch)
            .iter()
            .filter(|(_, e)| now > e.deadline_ms)
            .map(|(id, e)| (*id, e.attempt))
            .collect();
        for (id, attempt) in expired {
            let mut jobs = lock(&shared.jobs);
            if let Some(state) = jobs.get_mut(&id) {
                if state.status == JobStatus::Running(attempt) {
                    state.status = JobStatus::TimedOut { attempt };
                }
            }
            drop(jobs);
            shared.notify_status();
        }
        clock.wait_for_tick_ms(now, WATCHDOG_TICK_MS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_faults::VirtualClock;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn jobs_run_and_finish() {
        let scheduler = JobScheduler::new(2);
        let id = scheduler.submit(1, || Ok("trained model v1".to_string())).unwrap();
        assert_eq!(scheduler.wait(id).unwrap(), "trained model v1");
        assert_eq!(scheduler.status(id).unwrap(), JobStatus::Finished("trained model v1".into()));
    }

    #[test]
    fn parallel_jobs_all_complete() {
        let scheduler = JobScheduler::new(4);
        let ids: Vec<u64> =
            (0..16).map(|i| scheduler.submit(1, move || Ok(format!("job {i}"))).unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(scheduler.wait(*id).unwrap(), format!("job {i}"));
        }
    }

    #[test]
    fn retries_until_success() {
        let scheduler = JobScheduler::new(1);
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let id = scheduler
            .submit(3, move || {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".to_string())
                } else {
                    Ok("recovered".to_string())
                }
            })
            .unwrap();
        assert_eq!(scheduler.wait(id).unwrap(), "recovered");
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_fail() {
        let scheduler = JobScheduler::new(1);
        let id = scheduler.submit(2, || Err("persistent".to_string())).unwrap();
        match scheduler.wait(id) {
            Err(PlatformError::JobFailed(msg)) => assert_eq!(msg, "persistent"),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_job_not_found() {
        let scheduler = JobScheduler::new(1);
        assert!(matches!(
            scheduler.status(99),
            Err(PlatformError::NotFound { kind: "job", id: 99 })
        ));
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let mut scheduler = JobScheduler::new(1);
        let id = scheduler.submit(1, || Ok("done".into())).unwrap();
        scheduler.wait(id).unwrap();
        scheduler.shutdown();
        assert!(matches!(
            scheduler.submit(1, || Ok(String::new())),
            Err(PlatformError::SchedulerStopped)
        ));
    }

    #[test]
    fn panicking_job_fails_without_killing_the_worker() {
        let scheduler = JobScheduler::new(1);
        let bad = scheduler.submit(1, || panic!("job exploded")).unwrap();
        match scheduler.wait(bad) {
            Err(PlatformError::JobFailed(msg)) => assert!(msg.contains("job exploded"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        // the single worker survived and still runs jobs
        let ok = scheduler.submit(1, || Ok("alive".into())).unwrap();
        assert_eq!(scheduler.wait(ok).unwrap(), "alive");
        // and the panic is dead-lettered with its cause
        let dead = scheduler.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, bad);
        assert!(matches!(dead[0].attempts[0].cause, FailureCause::Panic(_)));
    }

    #[test]
    fn attempt_counting_is_observable_and_backoff_is_deterministic() {
        let clock = Arc::new(VirtualClock::new());
        let scheduler = JobScheduler::with_clock(1, clock.clone());
        let policy = RetryPolicy::default().with_seed(77).with_max_attempts(4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_in_job = Arc::clone(&seen);
        let id = scheduler
            .submit_with(policy.clone(), move |ctx| {
                lock(&seen_in_job).push(ctx.attempt);
                if ctx.attempt < 3 {
                    Err("flaky".into())
                } else {
                    Ok("done".into())
                }
            })
            .unwrap();
        assert_eq!(scheduler.wait(id).unwrap(), "done");
        // JobStatus::Running(n) was observable in order via the context
        assert_eq!(*lock(&seen), vec![1, 2, 3]);
        // the recorded backoffs are exactly the policy's seeded schedule
        let history = scheduler.attempt_history(id).unwrap();
        let backoffs: Vec<u64> = history.iter().map(|a| a.backoff_ms.unwrap()).collect();
        assert_eq!(backoffs, policy.backoff_preview(id, 2));
        // and the virtual clock slept exactly that long in total
        assert_eq!(clock.now_ms(), backoffs.iter().sum::<u64>());
    }

    #[test]
    fn cancellation_during_backoff_resolves_promptly() {
        // real clock + a 60 s backoff: only prompt cancellation lets this
        // test finish quickly
        let scheduler = JobScheduler::new(1);
        let policy = RetryPolicy::default().with_max_attempts(3).with_backoff(60_000, 60_000);
        let id = scheduler.submit_with(policy, |_| Err("always".into())).unwrap();
        let started = std::time::Instant::now();
        scheduler
            .wait_for_status(id, 30_000, |s| matches!(s, JobStatus::Backoff { .. }))
            .expect("job never reached backoff");
        scheduler.cancel(id).unwrap();
        assert!(matches!(scheduler.wait(id), Err(PlatformError::JobCancelled(i)) if i == id));
        assert!(started.elapsed().as_secs() < 30, "cancel must not wait out the backoff");
    }

    #[test]
    fn cancelling_a_queued_job_skips_execution() {
        let scheduler = JobScheduler::new(1);
        // occupy the only worker so the next job stays queued
        let gate = Arc::new(AtomicU32::new(0));
        let g = Arc::clone(&gate);
        let blocker = scheduler
            .submit(1, move || {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Ok("unblocked".into())
            })
            .unwrap();
        let ran = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&ran);
        let queued = scheduler
            .submit(1, move || {
                r.fetch_add(1, Ordering::SeqCst);
                Ok("should not run".into())
            })
            .unwrap();
        scheduler.cancel(queued).unwrap();
        gate.store(1, Ordering::SeqCst);
        scheduler.wait(blocker).unwrap();
        assert!(matches!(scheduler.wait(queued), Err(PlatformError::JobCancelled(_))));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "cancelled queued job must not execute");
    }

    #[test]
    fn shutdown_fails_queued_jobs_instead_of_stranding_them() {
        let mut scheduler = JobScheduler::new(1);
        // the only worker is busy until we release it
        let gate = Arc::new(AtomicU32::new(0));
        let g = Arc::clone(&gate);
        let running = scheduler
            .submit(1, move || {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Ok("finished".into())
            })
            .unwrap();
        // make sure the worker actually holds the blocker before queueing
        // more, or shutdown could beat the pickup and fail it too
        scheduler.wait_for_status(running, 30_000, |s| *s == JobStatus::Running(1)).unwrap();
        let stranded: Vec<u64> =
            (0..3).map(|_| scheduler.submit(1, || Ok("never".into())).unwrap()).collect();
        // release the worker from another thread shortly after shutdown
        // starts joining, then shut down
        let release = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            gate.store(1, Ordering::SeqCst);
        });
        scheduler.shutdown();
        release.join().unwrap();
        // the running job completed; every queued job is Failed, not Queued
        assert_eq!(scheduler.status(running).unwrap(), JobStatus::Finished("finished".into()));
        for id in stranded {
            assert_eq!(
                scheduler.status(id).unwrap(),
                JobStatus::Failed(SHUTDOWN_ERROR.to_string()),
                "queued job {id} must be failed at shutdown"
            );
        }
        assert!(scheduler.dead_letters().len() >= 3);
    }

    #[test]
    fn watchdog_flags_overrunning_attempt_while_it_runs() {
        let scheduler = JobScheduler::new(1);
        let policy = RetryPolicy::default().with_max_attempts(2).with_timeout(5);
        let id = scheduler
            .submit_with(policy, |ctx| {
                if ctx.attempt == 1 {
                    // overrun the 5 ms deadline on the real clock
                    std::thread::sleep(std::time::Duration::from_millis(60));
                }
                Ok("eventually".into())
            })
            .unwrap();
        // while attempt 1 is stuck, the watchdog must flip the status
        let seen = scheduler
            .wait_for_status(id, 30_000, |s| {
                matches!(
                    s,
                    JobStatus::TimedOut { .. } | JobStatus::Finished(_) | JobStatus::Failed(_)
                )
            })
            .unwrap();
        assert_eq!(
            seen,
            JobStatus::TimedOut { attempt: 1 },
            "watchdog never flagged the overrunning attempt"
        );
        // the stale result is discarded and the retry succeeds
        assert_eq!(scheduler.wait(id).unwrap(), "eventually");
        let history = scheduler.attempt_history(id).unwrap();
        assert!(matches!(history[0].cause, FailureCause::TimedOut { .. }));
    }

    #[test]
    fn wait_for_status_times_out_on_the_scheduler_clock() {
        let scheduler = JobScheduler::new(1);
        // the job finishes immediately, so a wait for Backoff can never match
        let id = scheduler.submit(1, || Ok("instant".into())).unwrap();
        scheduler.wait(id).unwrap();
        match scheduler.wait_for_status(id, 50, |s| matches!(s, JobStatus::Backoff { .. })) {
            Err(PlatformError::WaitTimeout { id: i, timeout_ms: 50 }) => assert_eq!(i, id),
            other => panic!("expected WaitTimeout, got {other:?}"),
        }
        // unknown ids surface NotFound, not a timeout
        assert!(matches!(
            scheduler.wait_for_status(999, 50, |_| true),
            Err(PlatformError::NotFound { kind: "job", id: 999 })
        ));
    }

    #[test]
    fn pool_backed_scheduler_runs_retries_and_finishes() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(4)));
        let scheduler = JobScheduler::with_pool(Arc::clone(&pool));
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let flaky = scheduler
            .submit(3, move || {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".to_string())
                } else {
                    Ok("recovered".to_string())
                }
            })
            .unwrap();
        let ids: Vec<u64> =
            (0..8).map(|i| scheduler.submit(1, move || Ok(format!("job {i}"))).unwrap()).collect();
        assert_eq!(scheduler.wait(flaky).unwrap(), "recovered");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(scheduler.wait(*id).unwrap(), format!("job {i}"));
        }
    }

    #[test]
    fn pool_backed_scheduler_isolates_panics_and_shuts_down() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(2)));
        let mut scheduler = JobScheduler::with_pool(Arc::clone(&pool));
        let bad = scheduler.submit(1, || panic!("job exploded")).unwrap();
        assert!(matches!(scheduler.wait(bad), Err(PlatformError::JobFailed(_))));
        let ok = scheduler.submit(1, || Ok("alive".into())).unwrap();
        assert_eq!(scheduler.wait(ok).unwrap(), "alive");
        scheduler.shutdown();
        assert!(matches!(
            scheduler.submit(1, || Ok(String::new())),
            Err(PlatformError::SchedulerStopped)
        ));
        // the shared pool is still usable by other subsystems
        assert_eq!(pool.par_map(&[1, 2, 3], |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn pool_backed_cancellation_reaches_the_job() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(2)));
        let scheduler = JobScheduler::with_pool(pool);
        let id = scheduler
            .submit_with(RetryPolicy::immediate(1), |ctx| {
                while !ctx.cancel.is_cancelled() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err("observed cancel".into())
            })
            .unwrap();
        scheduler.wait_for_status(id, 30_000, |s| matches!(s, JobStatus::Running(_))).unwrap();
        scheduler.cancel(id).unwrap();
        assert!(matches!(scheduler.wait(id), Err(PlatformError::JobCancelled(_))));
        assert!(scheduler.dead_letters().is_empty(), "cancellation is not a dead-letter");
    }

    #[test]
    fn lifecycle_events_flow_through_the_tracer() {
        let clock = Arc::new(VirtualClock::new());
        let (tracer, collector) = Tracer::collecting(clock.clone());
        let scheduler = JobScheduler::with_clock_and_tracer(1, clock, tracer.clone());
        let policy = RetryPolicy::default().with_seed(7).with_max_attempts(3);
        let id = scheduler
            .submit_with(policy, |ctx| {
                if ctx.attempt < 2 {
                    Err("flaky".into())
                } else {
                    Ok("done".into())
                }
            })
            .unwrap();
        scheduler.wait(id).unwrap();
        // one job, one failure, one retry: the event stream tells the story
        let names: Vec<String> = collector
            .records()
            .iter()
            .filter(|r| r.name().starts_with("job."))
            .map(|r| r.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["job.queued", "job.running", "job.backoff", "job.running", "job.finished"]
        );
        assert_eq!(tracer.metrics_snapshot().len(), 2, "submitted + finished counters");
        let jsonl = collector.jsonl();
        assert!(jsonl.contains(r#""name":"job.backoff""#), "{jsonl}");
        assert!(jsonl.contains(r#""delay_ms""#), "{jsonl}");
    }

    #[test]
    fn dead_letter_and_cancel_events_are_counted() {
        let clock = Arc::new(VirtualClock::new());
        let (tracer, collector) = Tracer::collecting(clock.clone());
        let scheduler = JobScheduler::with_clock_and_tracer(2, clock, tracer.clone());
        let doomed = scheduler.submit(1, || Err("bad".into())).unwrap();
        let _ = scheduler.wait(doomed);
        // cancel a job that is still queued (both workers may be free, so
        // submit a pair of blockers first)
        let gate = Arc::new(AtomicU32::new(0));
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            scheduler
                .submit(1, move || {
                    while g.load(Ordering::SeqCst) == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Ok("unblocked".into())
                })
                .unwrap();
        }
        let queued = scheduler.submit(1, || Ok("never".into())).unwrap();
        scheduler.cancel(queued).unwrap();
        gate.store(1, Ordering::SeqCst);
        assert!(matches!(scheduler.wait(queued), Err(PlatformError::JobCancelled(_))));
        let records = collector.records();
        assert!(records.iter().any(|r| r.name() == "job.dead_letter"));
        assert!(records.iter().any(|r| r.name() == "job.cancelled"));
        let snapshot = tracer.metrics_snapshot();
        assert_eq!(snapshot.get("jobs.dead_lettered"), Some(&ei_trace::MetricValue::Counter(1)));
        assert_eq!(snapshot.get("jobs.cancelled"), Some(&ei_trace::MetricValue::Counter(1)));
    }

    #[test]
    fn dead_letter_exposes_policy_and_requeue_reruns_the_job() {
        let clock = Arc::new(VirtualClock::new());
        let (tracer, collector) = Tracer::collecting(clock.clone());
        let scheduler = JobScheduler::with_clock_and_tracer(1, clock, tracer.clone());
        // fails on its first life, succeeds once requeued
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let id = scheduler
            .submit(1, move || {
                if t.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err("transient outage".into())
                } else {
                    Ok("recovered".into())
                }
            })
            .unwrap();
        assert!(scheduler.wait(id).is_err());
        // the letter carries the original job spec for inspection
        let letter = scheduler.dead_letter(id).unwrap();
        assert_eq!(letter.error, "transient outage");
        assert_eq!(letter.policy.as_ref().map(|p| p.max_attempts), Some(1));
        assert!(letter.requeueable);
        // requeue runs the same closure under a fresh id
        let new_id = scheduler.requeue(id).unwrap();
        assert_ne!(new_id, id);
        assert_eq!(scheduler.wait(new_id).unwrap(), "recovered");
        assert_eq!(tries.load(Ordering::SeqCst), 2);
        // the letter stays for the record but cannot be requeued twice
        assert!(!scheduler.dead_letter(id).unwrap().requeueable);
        assert!(matches!(
            scheduler.requeue(id),
            Err(PlatformError::NotRequeueable { id: stale }) if stale == id
        ));
        assert!(collector.records().iter().any(|r| r.name() == "job.requeued"));
        let snapshot = tracer.metrics_snapshot();
        assert_eq!(snapshot.get("jobs.requeued"), Some(&ei_trace::MetricValue::Counter(1)));
    }

    #[test]
    fn sharded_scheduler_runs_jobs_and_reports_shards() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(4)));
        let scheduler = JobScheduler::with_sharded_pool(pool, 4);
        assert_eq!(scheduler.shard_count(), 4);
        assert_eq!(scheduler.queue_depths().len(), 4);
        let ids: Vec<u64> = (0..16u64)
            .map(|i| scheduler.submit_keyed(i, 1, move || Ok(format!("job {i}"))).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(scheduler.wait(*id).unwrap(), format!("job {i}"));
        }
        // unkeyed submission works too (routes by job id)
        let plain = scheduler.submit(1, || Ok("plain".into())).unwrap();
        assert_eq!(scheduler.wait(plain).unwrap(), "plain");
    }

    #[test]
    fn same_key_jobs_run_fifo_even_on_a_wide_pool() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(4)));
        let scheduler = JobScheduler::with_sharded_pool(pool, 8);
        let order = Arc::new(Mutex::new(Vec::new()));
        let ids: Vec<u64> = (0..12u32)
            .map(|i| {
                let order = Arc::clone(&order);
                scheduler
                    .submit_keyed(42, 1, move || {
                        // same tenant key -> same shard -> strict FIFO
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        lock(&order).push(i);
                        Ok(String::new())
                    })
                    .unwrap()
            })
            .collect();
        for id in ids {
            scheduler.wait(id).unwrap();
        }
        assert_eq!(*lock(&order), (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn dead_letters_land_in_the_tenants_shard_view() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(2)));
        let scheduler = JobScheduler::with_sharded_pool(Arc::clone(&pool), 4);
        let key_a = 7u64;
        let key_b = 1000u64;
        let dead_a = scheduler.submit_keyed(key_a, 1, || Err("a failed".into())).unwrap();
        let dead_b = scheduler.submit_keyed(key_b, 1, || Err("b failed".into())).unwrap();
        let ok = scheduler.submit_keyed(key_a, 1, || Ok("fine".into())).unwrap();
        assert!(scheduler.wait(dead_a).is_err());
        assert!(scheduler.wait(dead_b).is_err());
        scheduler.wait(ok).unwrap();
        let shard_a = (fnv1a_u64(key_a) % 4) as usize;
        let shard_b = (fnv1a_u64(key_b) % 4) as usize;
        assert_ne!(shard_a, shard_b, "test keys should land on distinct shards");
        let view_a = scheduler.dead_letters_in_shard(shard_a);
        assert!(view_a.iter().any(|l| l.id == dead_a));
        assert!(!view_a.iter().any(|l| l.id == dead_b));
        let view_b = scheduler.dead_letters_in_shard(shard_b);
        assert!(view_b.iter().any(|l| l.id == dead_b));
        // the global queue still sees everything
        assert_eq!(scheduler.dead_letters().len(), 2);
        // non-sharded backends expose everything through shard 0
        let plain = JobScheduler::new(1);
        let dead = plain.submit(1, || Err("x".into())).unwrap();
        let _ = plain.wait(dead);
        assert_eq!(plain.dead_letters_in_shard(0).len(), 1);
        assert!(plain.dead_letters_in_shard(3).is_empty());
    }

    /// Regression: letters carry their tenant key, and the global view is
    /// `(key, id)`-sorted exactly like `DeadLetterShards::merged()`, no
    /// matter which shard's worker lost the race to record first.
    #[test]
    fn dead_letters_are_attributed_and_merge_in_key_order() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(2)));
        let scheduler = JobScheduler::with_sharded_pool(Arc::clone(&pool), 4);
        // failures submitted out of tenant order, across three tenants
        let submitted: Vec<(u64, u64)> = [900u64, 3, 900, 41, 3]
            .iter()
            .map(|&tenant| {
                let id = scheduler
                    .submit_keyed(tenant, 1, move || Err(format!("tenant {tenant} failed")))
                    .unwrap();
                (tenant, id)
            })
            .collect();
        for (_, id) in &submitted {
            assert!(scheduler.wait(*id).is_err());
        }
        let letters = scheduler.dead_letters();
        assert_eq!(letters.len(), submitted.len());
        // every letter is attributed to the tenant that submitted it
        let mut expected = submitted.clone();
        expected.sort_unstable();
        let got: Vec<(u64, u64)> = letters.iter().map(|l| (l.key, l.id)).collect();
        assert_eq!(got, expected, "global view must be (key, id)-sorted");
        // and per-shard views partition the global one by key placement
        let mut reassembled: Vec<(u64, u64)> = (0..scheduler.shard_count())
            .flat_map(|s| scheduler.dead_letters_in_shard(s))
            .map(|l| (l.key, l.id))
            .collect();
        reassembled.sort_unstable();
        assert_eq!(reassembled, expected);
        for shard in 0..scheduler.shard_count() {
            for letter in scheduler.dead_letters_in_shard(shard) {
                assert_eq!((fnv1a_u64(letter.key) % 4) as usize, shard);
            }
        }
        // unkeyed submissions attribute to their own job id
        let plain = JobScheduler::new(1);
        let id = plain.submit(1, || Err("x".into())).unwrap();
        let _ = plain.wait(id);
        assert_eq!(plain.dead_letters()[0].key, id);
    }

    #[test]
    fn sharded_scheduler_shuts_down_cleanly() {
        let pool = Arc::new(ParPool::new(ei_par::Parallelism::new(2)));
        let mut scheduler = JobScheduler::with_sharded_pool(Arc::clone(&pool), 4);
        let ids: Vec<u64> = (0..8u64)
            .map(|i| scheduler.submit_keyed(i, 1, move || Ok("ok".into())).unwrap())
            .collect();
        scheduler.shutdown();
        for id in ids {
            // every job reached a terminal state: finished before the
            // drain, or failed fast by the shutdown flag — never stranded
            assert!(matches!(
                scheduler.status(id).unwrap(),
                JobStatus::Finished(_) | JobStatus::Failed(_)
            ));
        }
        assert!(matches!(
            scheduler.submit_keyed(1, 1, || Ok(String::new())),
            Err(PlatformError::SchedulerStopped)
        ));
        // the shared pool survives the scheduler
        assert_eq!(pool.par_map(&[1, 2], |x| x + 1), vec![2, 3]);
    }

    #[test]
    fn requeue_rejects_unknown_ids_and_stopped_schedulers() {
        let mut scheduler = JobScheduler::new(1);
        assert!(matches!(
            scheduler.requeue(404),
            Err(PlatformError::NotFound { kind: "dead letter", id: 404 })
        ));
        assert!(matches!(
            scheduler.dead_letter(404),
            Err(PlatformError::NotFound { kind: "dead letter", id: 404 })
        ));
        let doomed = scheduler.submit(1, || Err("gone".into())).unwrap();
        let _ = scheduler.wait(doomed);
        scheduler.shutdown();
        assert!(matches!(scheduler.requeue(doomed), Err(PlatformError::SchedulerStopped)));
    }
}
