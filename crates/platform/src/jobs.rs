//! The job scheduler: a worker pool executing queued platform jobs.
//!
//! Stands in for the paper's EKS-based compute layer (§4.10): jobs (feature
//! extraction, training, deployment builds) are queued, picked up by
//! workers, retried on failure, and observable by id.

use crate::{PlatformError, Result};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Observable job lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// Executing (with the 1-based attempt number).
    Running(u32),
    /// Finished successfully with an output string.
    Finished(String),
    /// Failed after exhausting retries.
    Failed(String),
}

/// A queued work item.
type JobFn = Box<dyn FnMut() -> std::result::Result<String, String> + Send>;

struct QueuedJob {
    id: u64,
    attempts_left: u32,
    work: JobFn,
}

/// A fixed-size worker pool with retry support.
///
/// Dropping the scheduler stops accepting jobs and joins the workers after
/// the queue drains.
pub struct JobScheduler {
    sender: Option<Sender<QueuedJob>>,
    statuses: Arc<Mutex<HashMap<u64, JobStatus>>>,
    workers: Vec<JoinHandle<()>>,
    next_id: Mutex<u64>,
}

impl std::fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobScheduler").field("workers", &self.workers.len()).finish_non_exhaustive()
    }
}

impl JobScheduler {
    /// Starts a scheduler with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> JobScheduler {
        assert!(workers > 0, "need at least one worker");
        let (sender, receiver) = unbounded::<QueuedJob>();
        let statuses: Arc<Mutex<HashMap<u64, JobStatus>>> = Arc::new(Mutex::new(HashMap::new()));
        let handles = (0..workers)
            .map(|_| {
                let receiver = receiver.clone();
                let statuses = Arc::clone(&statuses);
                std::thread::spawn(move || {
                    while let Ok(mut job) = receiver.recv() {
                        let mut attempt = 0u32;
                        loop {
                            attempt += 1;
                            statuses.lock().insert(job.id, JobStatus::Running(attempt));
                            match (job.work)() {
                                Ok(output) => {
                                    statuses.lock().insert(job.id, JobStatus::Finished(output));
                                    break;
                                }
                                Err(e) if attempt >= job.attempts_left => {
                                    statuses.lock().insert(job.id, JobStatus::Failed(e));
                                    break;
                                }
                                Err(_) => continue,
                            }
                        }
                    }
                })
            })
            .collect();
        JobScheduler { sender: Some(sender), statuses, workers: handles, next_id: Mutex::new(0) }
    }

    /// Submits a job with up to `attempts` executions; returns the job id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SchedulerStopped`] after shutdown.
    pub fn submit<F>(&self, attempts: u32, work: F) -> Result<u64>
    where
        F: FnMut() -> std::result::Result<String, String> + Send + 'static,
    {
        let sender = self.sender.as_ref().ok_or(PlatformError::SchedulerStopped)?;
        let id = {
            let mut next = self.next_id.lock();
            *next += 1;
            *next
        };
        self.statuses.lock().insert(id, JobStatus::Queued);
        sender
            .send(QueuedJob { id, attempts_left: attempts.max(1), work: Box::new(work) })
            .map_err(|_| PlatformError::SchedulerStopped)?;
        Ok(id)
    }

    /// Current status of a job.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids.
    pub fn status(&self, id: u64) -> Result<JobStatus> {
        self.statuses
            .lock()
            .get(&id)
            .cloned()
            .ok_or(PlatformError::NotFound { kind: "job", id })
    }

    /// Blocks until the job reaches a terminal state, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotFound`] for unknown ids or
    /// [`PlatformError::JobFailed`] when the job fails.
    pub fn wait(&self, id: u64) -> Result<String> {
        loop {
            match self.status(id)? {
                JobStatus::Finished(output) => return Ok(output),
                JobStatus::Failed(e) => return Err(PlatformError::JobFailed(e)),
                _ => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        }
    }

    /// Stops accepting new jobs and joins workers after the queue drains.
    pub fn shutdown(&mut self) {
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn jobs_run_and_finish() {
        let scheduler = JobScheduler::new(2);
        let id = scheduler.submit(1, || Ok("trained model v1".to_string())).unwrap();
        assert_eq!(scheduler.wait(id).unwrap(), "trained model v1");
        assert_eq!(scheduler.status(id).unwrap(), JobStatus::Finished("trained model v1".into()));
    }

    #[test]
    fn parallel_jobs_all_complete() {
        let scheduler = JobScheduler::new(4);
        let ids: Vec<u64> = (0..16)
            .map(|i| scheduler.submit(1, move || Ok(format!("job {i}"))).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(scheduler.wait(*id).unwrap(), format!("job {i}"));
        }
    }

    #[test]
    fn retries_until_success() {
        let scheduler = JobScheduler::new(1);
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let id = scheduler
            .submit(3, move || {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".to_string())
                } else {
                    Ok("recovered".to_string())
                }
            })
            .unwrap();
        assert_eq!(scheduler.wait(id).unwrap(), "recovered");
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_fail() {
        let scheduler = JobScheduler::new(1);
        let id = scheduler.submit(2, || Err("persistent".to_string())).unwrap();
        match scheduler.wait(id) {
            Err(PlatformError::JobFailed(msg)) => assert_eq!(msg, "persistent"),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_job_not_found() {
        let scheduler = JobScheduler::new(1);
        assert!(matches!(
            scheduler.status(99),
            Err(PlatformError::NotFound { kind: "job", id: 99 })
        ));
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let mut scheduler = JobScheduler::new(1);
        let id = scheduler.submit(1, || Ok("done".into())).unwrap();
        scheduler.wait(id).unwrap();
        scheduler.shutdown();
        assert!(matches!(
            scheduler.submit(1, || Ok(String::new())),
            Err(PlatformError::SchedulerStopped)
        ));
    }
}
