//! Majority-vote smoothing over sliding-window classifications.
//!
//! One window's classification is noisy: a keyword spotter sliding a 1 s
//! window every 250 ms sees partial utterances at the window edges. The
//! paper's performance calibration smooths the raw per-window votes before
//! anything downstream acts on them; this module implements the
//! majority-vote variant the deployed SDK uses: the reported label is the
//! most frequent one among the last K window votes.

use std::collections::VecDeque;

/// Majority vote over the last K label votes.
///
/// Ties break toward the *most recent* vote among the tied labels, so a
/// genuine transition (`…, old, old, new, new`) flips as soon as the new
/// label pulls even — the behavior that minimizes detection latency while
/// still suppressing single-window flickers.
#[derive(Debug, Clone)]
pub struct MajorityVote {
    k: usize,
    votes: VecDeque<usize>,
}

impl MajorityVote {
    /// A smoother over the last `k` votes (clamped to at least 1; `k = 1`
    /// is pass-through).
    pub fn new(k: usize) -> MajorityVote {
        let k = k.max(1);
        MajorityVote { k, votes: VecDeque::with_capacity(k) }
    }

    /// The configured vote-window length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Votes currently held (≤ K).
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// `true` until the first vote arrives.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Records one raw window vote and returns the smoothed label index.
    pub fn push(&mut self, label_index: usize) -> usize {
        if self.votes.len() == self.k {
            self.votes.pop_front();
        }
        self.votes.push_back(label_index);
        self.current().expect("push guarantees at least one vote")
    }

    /// The current smoothed label, or `None` before any vote.
    pub fn current(&self) -> Option<usize> {
        let mut best: Option<(usize, usize, usize)> = None; // (label, count, last_seen)
        for (pos, &label) in self.votes.iter().enumerate() {
            let count = self.votes.iter().filter(|&&v| v == label).count();
            let beats = match best {
                None => true,
                Some((_, best_count, best_pos)) => {
                    count > best_count || (count == best_count && pos > best_pos)
                }
            };
            if beats {
                best = Some((label, count, pos));
            }
        }
        best.map(|(label, _, _)| label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flicker_is_suppressed() {
        let mut s = MajorityVote::new(5);
        for _ in 0..4 {
            assert_eq!(s.push(0), 0);
        }
        assert_eq!(s.push(1), 0, "one dissenting vote in five cannot flip the majority");
        assert_eq!(s.push(0), 0);
    }

    #[test]
    fn sustained_transition_flips() {
        let mut s = MajorityVote::new(4);
        for _ in 0..4 {
            s.push(0);
        }
        assert_eq!(s.push(1), 0, "1 of 4");
        assert_eq!(s.push(1), 1, "2 of 4 ties, most recent vote wins");
        assert_eq!(s.push(1), 1, "3 of 4");
    }

    #[test]
    fn k_one_is_passthrough_and_zero_clamps() {
        let mut s = MajorityVote::new(0);
        assert_eq!(s.k(), 1);
        assert_eq!(s.push(3), 3);
        assert_eq!(s.push(7), 7);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn current_before_any_vote() {
        let s = MajorityVote::new(3);
        assert!(s.is_empty());
        assert_eq!(s.current(), None);
    }
}
