//! Error type of the streaming layer.

use ei_dsp::DspError;

/// Why a session could not be opened or fed.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The session configuration is inconsistent with the model's impulse
    /// design (e.g. a hop that doesn't align with the DSP frame stride).
    InvalidConfig(String),
    /// The model JSON could not be decoded into a trained impulse.
    Model(String),
    /// The DSP layer rejected the design or a sample chunk.
    Dsp(DspError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidConfig(msg) => write!(f, "invalid stream config: {msg}"),
            StreamError::Model(msg) => write!(f, "model error: {msg}"),
            StreamError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DspError> for StreamError {
    fn from(e: DspError) -> StreamError {
        StreamError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            StreamError::InvalidConfig("bad hop".into()).to_string(),
            "invalid stream config: bad hop"
        );
        assert!(StreamError::Model("nope".into()).to_string().contains("nope"));
    }
}
