//! Per-tenant streaming inference sessions.
//!
//! A [`StreamSession`] is the continuous-inference loop of one deployed
//! device, lifted into the serving tier: chunked samples arrive over time
//! on the server's injected clock, an incremental extractor turns them
//! into per-frame feature columns exactly once, overlapping windows are
//! assembled from the shared columns, and each window rides the ordinary
//! `ei-serve` admission path (quota, artifact cache, micro-batching,
//! causal spans, SLO accounting) as a `precomputed` request.
//!
//! # Ingest never blocks
//!
//! [`StreamSession::push`] only buffers, extracts and *submits*; it never
//! dispatches inference. When the shared admission queue pushes back
//! ([`Rejected::Overloaded`]) the assembled window stays in the session's
//! bounded pending buffer, and when that buffer overflows the **oldest**
//! window is dropped first — late audio is worthless audio, so shedding
//! from the head bounds the staleness of everything that survives.
//! [`StreamSession::poll`] is the inference side of the loop: it drives
//! dispatch, collects this session's completions, feeds the majority-vote
//! smoother, and re-submits pending windows into the space that freed up.

use crate::error::StreamError;
use crate::smoother::MajorityVote;
use crate::Result;
use ei_core::{Classification, TrainedImpulse};
use ei_dsp::{DspBlock, DspConfig, StreamingExtractor};
use ei_runtime::EngineKind;
use ei_serve::{InferenceRequest, ModelSource, Outcome, Rejected, Server};
use ei_trace::SpanGuard;
use std::collections::VecDeque;
use std::sync::Arc;

/// Knobs of one streaming session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Tenant the session's requests are billed to (quota, latency series,
    /// SLO monitors).
    pub tenant: String,
    /// Samples between successive classification windows. Must be a
    /// positive multiple of the DSP frame stride so incrementally-computed
    /// columns line up exactly with batch recomputation.
    pub hop_samples: usize,
    /// Assembled windows held while the admission queue pushes back;
    /// overflow drops the oldest window first.
    pub max_pending: usize,
    /// Majority-vote smoothing horizon (last K window votes).
    pub smoothing_k: usize,
    /// Per-window completion deadline in logical ms (`0` = server default).
    pub deadline_ms: u64,
    /// Execution engine for the session's artifact.
    pub engine: EngineKind,
    /// `true` to run the int8 artifact.
    pub quantized: bool,
    /// `true` to re-derive every window's features with the batch block
    /// and assert bitwise equality (the incremental-DSP oracle). Cheap
    /// enough to leave on outside of benchmarks.
    pub verify_features: bool,
}

impl SessionConfig {
    /// A session for `tenant` classifying every `hop_samples` samples,
    /// with defaults: 8 pending windows, majority of 5, server-default
    /// deadline, EON engine, float artifact, oracle on.
    pub fn new(tenant: &str, hop_samples: usize) -> SessionConfig {
        SessionConfig {
            tenant: tenant.to_string(),
            hop_samples,
            max_pending: 8,
            smoothing_k: 5,
            deadline_ms: 0,
            engine: EngineKind::EonCompiled,
            quantized: false,
            verify_features: true,
        }
    }
}

/// Counters of one session's lifetime (all monotonic except the two
/// occupancy fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Raw samples ingested.
    pub samples_in: u64,
    /// `push` calls (chunks) ingested.
    pub chunks_in: u64,
    /// Feature columns computed by the incremental extractor (each exactly
    /// once).
    pub frames_computed: u64,
    /// Column slots consumed across all assembled windows; the ratio
    /// `frames_used / frames_computed` is the DSP work overlapping windows
    /// shared instead of recomputing.
    pub frames_used: u64,
    /// Windows assembled from columns.
    pub windows_emitted: u64,
    /// Windows that came back classified.
    pub windows_classified: u64,
    /// Oldest-first drops because the pending buffer was full.
    pub drops_backpressure: u64,
    /// Windows rejected by the tenant's token bucket.
    pub drops_quota: u64,
    /// Windows whose deadline expired before or during dispatch.
    pub drops_deadline: u64,
    /// Windows that failed to compile or execute.
    pub failures: u64,
    /// Windows checked against the batch-recompute oracle.
    pub oracle_windows: u64,
    /// Oracle checks where incremental features differed from batch
    /// (must stay 0).
    pub oracle_mismatches: u64,
    /// Assembled windows currently awaiting admission.
    pub pending: u64,
    /// Windows currently admitted but not yet completed.
    pub inflight: u64,
}

impl SessionStats {
    /// `true` while every oracle check found incremental features bitwise
    /// equal to batch recomputation.
    pub fn features_identical(&self) -> bool {
        self.oracle_mismatches == 0
    }

    /// All shed windows: backpressure + quota + deadline.
    pub fn drops_total(&self) -> u64 {
        self.drops_backpressure + self.drops_quota + self.drops_deadline
    }
}

/// One classified window as the session reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowVerdict {
    /// Monotonic window number within the session.
    pub seq: u64,
    /// Logical ms when the window's last sample arrived.
    pub captured_ms: u64,
    /// Logical ms when the classification completed.
    pub completed_ms: u64,
    /// End-to-end staleness: `completed_ms - captured_ms`. The answer
    /// describes audio this old.
    pub staleness_ms: u64,
    /// The raw per-window classification.
    pub classification: Classification,
    /// The majority-smoothed label after folding this vote in.
    pub smoothed_label: String,
}

/// A window assembled from shared columns, waiting for admission.
#[derive(Debug)]
struct AssembledWindow {
    seq: u64,
    captured_ms: u64,
    features: Vec<f32>,
}

/// A window admitted to the server, waiting for completion.
#[derive(Debug, Clone, Copy)]
struct InflightWindow {
    ticket: u64,
    seq: u64,
    captured_ms: u64,
    submitted_ms: u64,
}

/// One live, tenant-attributed sensor stream classified continuously
/// through a shared [`Server`]. See the [module docs](self) for the
/// push/poll contract.
pub struct StreamSession {
    server: Arc<Server>,
    model: ModelSource,
    config: SessionConfig,
    labels: Vec<String>,
    window_samples: usize,
    frames_per_window: usize,
    stride: usize,
    extractor: StreamingExtractor,
    /// Batch block for the bitwise oracle (always built — it also guards
    /// against drift in the session's own assembly bookkeeping).
    oracle: Box<dyn DspBlock>,
    /// Feature columns not yet consumed by every window that needs them;
    /// `columns[0]` is frame index `columns_base`.
    columns: VecDeque<Vec<f32>>,
    columns_base: u64,
    /// Raw samples retained for the oracle; `raw[0]` is absolute sample
    /// `raw_base`.
    raw: VecDeque<f32>,
    raw_base: u64,
    /// Absolute sample index where the next window starts.
    next_window_start: u64,
    next_seq: u64,
    pending: VecDeque<AssembledWindow>,
    inflight: VecDeque<InflightWindow>,
    smoother: MajorityVote,
    stats: SessionStats,
    /// The session's causal root: submits happen inside its context, so
    /// every `serve.request` chains back to this stream.
    span: SpanGuard,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("tenant", &self.config.tenant)
            .field("model", &self.model.name)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl StreamSession {
    /// Opens a session: decodes the model's impulse design, builds the
    /// incremental extractor and the batch oracle, and opens the
    /// `stream.session` span on the server's tracer.
    ///
    /// # Errors
    ///
    /// [`StreamError::Model`] for undecodable model JSON,
    /// [`StreamError::Dsp`] for designs without a framed audio front-end,
    /// and [`StreamError::InvalidConfig`] when `hop_samples` is zero, not
    /// a multiple of the DSP frame stride (incremental columns could not
    /// line up with batch windows), or the design's window exceeds what
    /// one frame stride can ever cover.
    pub fn open(
        server: Arc<Server>,
        model: ModelSource,
        config: SessionConfig,
    ) -> Result<StreamSession> {
        let impulse = TrainedImpulse::from_json(&model.json)
            .map_err(|e| StreamError::Model(e.to_string()))?;
        let design = impulse.design();
        let dsp_config: DspConfig = design.dsp.clone();
        let extractor = StreamingExtractor::new(&dsp_config)?;
        let framing = extractor.framing();
        let window_samples = design.window_samples;
        if config.hop_samples == 0 || !config.hop_samples.is_multiple_of(framing.stride) {
            return Err(StreamError::InvalidConfig(format!(
                "hop_samples {} must be a positive multiple of the DSP frame stride {}",
                config.hop_samples, framing.stride
            )));
        }
        let frames_per_window = framing.frame_count(window_samples);
        if frames_per_window == 0 {
            return Err(StreamError::InvalidConfig(format!(
                "window of {} samples is shorter than one {}-sample frame",
                window_samples, framing.frame_len
            )));
        }
        let oracle = design.dsp_block().map_err(|e| StreamError::Model(e.to_string()))?;
        let span = server.tracer().span_with(
            "stream.session",
            vec![
                ("tenant", config.tenant.clone().into()),
                ("model", model.name.to_string().into()),
                ("hop_samples", (config.hop_samples as u64).into()),
            ],
        );
        server.tracer().quiet_counter("stream.sessions_opened").inc();
        Ok(StreamSession {
            server,
            model,
            labels: impulse.labels().to_vec(),
            window_samples,
            frames_per_window,
            stride: framing.stride,
            extractor,
            oracle,
            columns: VecDeque::new(),
            columns_base: 0,
            raw: VecDeque::new(),
            raw_base: 0,
            next_window_start: 0,
            next_seq: 0,
            pending: VecDeque::new(),
            inflight: VecDeque::new(),
            smoother: MajorityVote::new(config.smoothing_k),
            stats: SessionStats::default(),
            config,
            span,
        })
    }

    /// The tenant this session bills to.
    pub fn tenant(&self) -> &str {
        &self.config.tenant
    }

    /// Class labels in model output order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The current majority-smoothed label, or `None` before the first
    /// classified window.
    pub fn current_label(&self) -> Option<&str> {
        self.smoother.current().and_then(|i| self.labels.get(i)).map(String::as_str)
    }

    /// Point-in-time counters (occupancy fields reflect this instant).
    pub fn stats(&self) -> SessionStats {
        let mut s = self.stats;
        s.frames_computed = self.extractor.frames_out();
        s.pending = self.pending.len() as u64;
        s.inflight = self.inflight.len() as u64;
        s
    }

    /// Ingests one chunk of samples: extracts any completed feature
    /// columns, assembles any completed windows, and submits toward the
    /// admission queue. Never dispatches inference and never blocks —
    /// overflow is shed oldest-first instead (see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates DSP failures; admission rejections are *not* errors,
    /// they are counted drops.
    pub fn push(&mut self, samples: &[f32]) -> Result<()> {
        self.stats.chunks_in += 1;
        self.stats.samples_in += samples.len() as u64;
        self.raw.extend(samples.iter().copied());
        for column in self.extractor.push(samples)? {
            self.columns.push_back(column);
        }
        self.assemble_windows()?;
        self.submit_pending();
        Ok(())
    }

    /// Collects every completed window for this session: dispatches the
    /// shared queue, extracts this session's completions (other tenants'
    /// stay put), folds votes into the smoother, and back-fills freed
    /// admission capacity from the pending buffer. Returns verdicts in
    /// window order.
    pub fn poll(&mut self) -> Vec<WindowVerdict> {
        let mut verdicts = Vec::new();
        while let Some(w) = self.inflight.pop_front() {
            let Some(completion) = self.server.resolve(w.ticket) else {
                // The server lost the ticket — count it rather than wedge.
                self.stats.failures += 1;
                continue;
            };
            match completion.outcome {
                Outcome::Classified(classification) => {
                    // Deterministic completion stamp: admission time plus
                    // the server's modeled latency for this request.
                    let completed_ms = w.submitted_ms + completion.latency_ms;
                    let staleness_ms = completed_ms.saturating_sub(w.captured_ms);
                    let smoothed_index = self.smoother.push(classification.label_index);
                    let smoothed_label =
                        self.labels.get(smoothed_index).cloned().unwrap_or_default();
                    self.stats.windows_classified += 1;
                    self.span.event(
                        "stream.window",
                        vec![
                            ("seq", w.seq.into()),
                            ("label", classification.label.clone().into()),
                            ("smoothed", smoothed_label.clone().into()),
                            ("staleness_ms", staleness_ms.into()),
                        ],
                    );
                    verdicts.push(WindowVerdict {
                        seq: w.seq,
                        captured_ms: w.captured_ms,
                        completed_ms,
                        staleness_ms,
                        classification,
                        smoothed_label,
                    });
                }
                Outcome::DeadlineExceeded { .. } => {
                    self.stats.drops_deadline += 1;
                    self.drop_event(w.seq, "deadline");
                }
                Outcome::Failed(_) => self.stats.failures += 1,
            }
        }
        // Dispatch freed queue space; windows admitted here are picked up
        // by the next poll.
        self.submit_pending();
        verdicts
    }

    /// Closes the session: final poll, a `stream.closed` event carrying
    /// the headline counters, then the span. Returns the final stats.
    /// Windows still pending or in flight at close are reported in the
    /// stats' occupancy fields, not silently lost.
    pub fn close(mut self) -> SessionStats {
        self.poll();
        let stats = self.stats();
        self.span.event(
            "stream.closed",
            vec![
                ("windows", stats.windows_classified.into()),
                ("drops", stats.drops_total().into()),
                ("oracle_mismatches", stats.oracle_mismatches.into()),
            ],
        );
        stats
    }

    /// Assembles every window whose last sample has arrived, checking each
    /// against the batch oracle and shedding oldest-first past
    /// `max_pending`.
    fn assemble_windows(&mut self) -> Result<()> {
        while self.extractor.samples_in() >= self.next_window_start + self.window_samples as u64 {
            let first_frame = self.next_window_start / self.stride as u64;
            let start = (first_frame - self.columns_base) as usize;
            let mut features =
                Vec::with_capacity(self.frames_per_window * self.extractor.features_per_frame());
            for column in self.columns.iter().skip(start).take(self.frames_per_window) {
                features.extend_from_slice(column);
            }
            self.stats.frames_used += self.frames_per_window as u64;
            let captured_ms = self.server.clock().now_ms();
            let seq = self.next_seq;
            self.next_seq += 1;

            if self.config.verify_features {
                self.check_oracle(seq, &features)?;
            }

            self.pending.push_back(AssembledWindow { seq, captured_ms, features });
            self.stats.windows_emitted += 1;
            while self.pending.len() > self.config.max_pending {
                let dropped = self.pending.pop_front().expect("len > max_pending >= 0");
                self.stats.drops_backpressure += 1;
                self.drop_event(dropped.seq, "backpressure");
            }

            self.next_window_start += self.config.hop_samples as u64;
            self.prune_buffers();
        }
        Ok(())
    }

    /// Recomputes the window's features from raw samples with the batch
    /// block and compares bitwise.
    fn check_oracle(&mut self, seq: u64, features: &[f32]) -> Result<()> {
        let start = (self.next_window_start - self.raw_base) as usize;
        let raw_window: Vec<f32> =
            self.raw.iter().skip(start).take(self.window_samples).copied().collect();
        debug_assert_eq!(raw_window.len(), self.window_samples);
        let batch = self.oracle.process(&raw_window)?;
        self.stats.oracle_windows += 1;
        // Bitwise, not approximate: both paths ran the same per-frame
        // column function on the same samples, so any difference is a bug.
        if batch != features {
            self.stats.oracle_mismatches += 1;
            self.span.event("stream.oracle_mismatch", vec![("seq", seq.into())]);
        }
        Ok(())
    }

    /// Drops columns and raw samples no future window (or oracle check)
    /// can reference, keeping session memory bounded by one window span
    /// plus one chunk.
    fn prune_buffers(&mut self) {
        let keep_from_frame = self.next_window_start / self.stride as u64;
        while self.columns_base < keep_from_frame && !self.columns.is_empty() {
            self.columns.pop_front();
            self.columns_base += 1;
        }
        let keep_from_sample = self.next_window_start;
        while self.raw_base < keep_from_sample && !self.raw.is_empty() {
            self.raw.pop_front();
            self.raw_base += 1;
        }
    }

    /// Submits pending windows oldest-first until the admission queue
    /// pushes back. Quota rejections drop the window (the tenant is out of
    /// budget — retrying would just starve its own fresher windows).
    fn submit_pending(&mut self) {
        while let Some(window) = self.pending.front() {
            let request = InferenceRequest {
                tenant: self.config.tenant.clone(),
                model: self.model.clone(),
                board: String::new(),
                engine: self.config.engine,
                quantized: self.config.quantized,
                window: window.features.clone(),
                deadline_ms: self.config.deadline_ms,
                precomputed: true,
            };
            // Enter the session span so `serve.request` opens as its child
            // and the whole chain shares one trace id.
            let submitted = {
                let _in_session = self.span.enter();
                self.server.submit(request)
            };
            match submitted {
                Ok(ticket) => {
                    let window = self.pending.pop_front().expect("front() was Some");
                    self.inflight.push_back(InflightWindow {
                        ticket,
                        seq: window.seq,
                        captured_ms: window.captured_ms,
                        submitted_ms: self.server.clock().now_ms(),
                    });
                }
                Err(Rejected::Overloaded { .. }) => break,
                Err(Rejected::QuotaExceeded { .. }) => {
                    let window = self.pending.pop_front().expect("front() was Some");
                    self.stats.drops_quota += 1;
                    self.drop_event(window.seq, "quota");
                }
            }
        }
    }

    fn drop_event(&self, seq: u64, reason: &'static str) {
        self.server.tracer().quiet_counter("stream.dropped").inc();
        self.span.event("stream.drop", vec![("seq", seq.into()), ("reason", reason.into())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_core::impulse::ImpulseDesign;
    use ei_data::synth::KwsGenerator;
    use ei_dsp::MfccConfig;
    use ei_faults::{Clock, VirtualClock};
    use ei_nn::presets;
    use ei_nn::train::TrainConfig;
    use ei_par::{ParPool, Parallelism};
    use ei_serve::ServerConfig;
    use ei_trace::Tracer;

    fn generator() -> KwsGenerator {
        KwsGenerator {
            classes: vec!["yes".into(), "no".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
    }

    /// Window 1000 samples; MFCC frames of 128 every 64 — so valid hops
    /// are multiples of 64.
    fn model_json() -> String {
        let design = ImpulseDesign::new(
            "stream-kws",
            1_000,
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 8);
        let config = TrainConfig {
            epochs: 2,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 11,
            ..TrainConfig::default()
        };
        design.train(&spec, &generator().dataset(4, 11), &config).unwrap().to_json().unwrap()
    }

    fn server(config: ServerConfig) -> Arc<Server> {
        let clock = VirtualClock::shared();
        let pool = Arc::new(ParPool::new(Parallelism::from_env()));
        Arc::new(Server::new(config, clock as Arc<dyn Clock>, pool, Tracer::disabled()))
    }

    /// A few seconds of alternating keywords, deterministic.
    fn audio(clips: usize) -> Vec<f32> {
        let gen = generator();
        (0..clips).flat_map(|i| gen.generate(i % 2, i as u64)).collect()
    }

    #[test]
    fn chunking_never_changes_classifications() {
        let json = model_json();
        let signal = audio(4); // 4 clips x 1000 samples
        let run = |chunk_len: usize| {
            let server = server(ServerConfig { queue_capacity: 64, ..ServerConfig::default() });
            let mut config = SessionConfig::new("tenant-a", 256);
            config.max_pending = 64; // no shedding: isolate the DSP/classify path
            let session =
                StreamSession::open(server, ModelSource::new("kws", json.clone()), config);
            let mut session = session.unwrap();
            let mut verdicts = Vec::new();
            for chunk in signal.chunks(chunk_len) {
                session.push(chunk).unwrap();
                verdicts.extend(session.poll());
            }
            verdicts.extend(session.poll());
            let stats = session.close();
            (verdicts, stats)
        };
        let (whole, whole_stats) = run(signal.len());
        assert!(whole.len() >= 10, "4000 samples / hop 256 must yield many windows");
        assert!(whole_stats.oracle_windows > 0 && whole_stats.features_identical());
        for chunk_len in [37usize, 256, 999] {
            let (chunked, stats) = run(chunk_len);
            assert!(stats.features_identical(), "oracle must pass at chunk_len {chunk_len}");
            let pairs = |vs: &[WindowVerdict]| {
                vs.iter().map(|v| (v.seq, v.classification.clone())).collect::<Vec<_>>()
            };
            // timing differs with chunking; the classifications must not
            assert_eq!(pairs(&chunked), pairs(&whole), "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn incremental_dsp_reuses_overlapping_columns() {
        let server = server(ServerConfig::default());
        let mut session = StreamSession::open(
            server,
            ModelSource::new("kws", model_json()),
            SessionConfig::new("tenant-a", 256),
        )
        .unwrap();
        session.push(&audio(4)).unwrap();
        session.poll();
        let stats = session.close();
        // window = 14 frames, hop = 4 frames: overlapping windows must reuse
        // most columns instead of recomputing them
        assert!(
            stats.frames_used > stats.frames_computed * 2,
            "expected >2x column reuse, got used {} vs computed {}",
            stats.frames_used,
            stats.frames_computed
        );
        assert!(stats.features_identical());
    }

    #[test]
    fn backpressure_sheds_oldest_first_and_never_blocks_ingest() {
        let server = server(ServerConfig {
            queue_capacity: 2,
            quota_capacity: 256,
            quota_refill_per_sec: 256.0,
            ..ServerConfig::default()
        });
        let mut config = SessionConfig::new("tenant-a", 256);
        config.max_pending = 2;
        let mut session =
            StreamSession::open(server, ModelSource::new("kws", model_json()), config).unwrap();
        // ingest a long stream chunk by chunk without ever polling: the
        // queue (2) and the pending buffer (2) fill, then every further
        // window sheds the oldest pending one — push itself must keep
        // succeeding
        for chunk in audio(6).chunks(500) {
            session.push(chunk).unwrap();
        }
        let stats = session.stats();
        assert!(stats.drops_backpressure > 0, "overflow must be counted: {stats:?}");
        assert_eq!(stats.pending, 2, "pending buffer stays at its bound");
        assert_eq!(stats.inflight, 2, "admission queue stays at its bound");
        // drain: survivors must include the newest window (drop-oldest
        // keeps fresh audio, which is what bounds staleness)
        let mut seqs = Vec::new();
        loop {
            let verdicts = session.poll();
            if verdicts.is_empty() {
                break;
            }
            seqs.extend(verdicts.iter().map(|v| v.seq));
        }
        let final_stats = session.stats();
        let newest = final_stats.windows_emitted - 1;
        assert!(seqs.contains(&newest), "newest window {newest} must survive, got {seqs:?}");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "verdicts arrive in window order");
        assert_eq!(
            final_stats.windows_classified + final_stats.drops_total() + final_stats.failures,
            final_stats.windows_emitted,
            "every emitted window is accounted for: {final_stats:?}"
        );
        assert!(final_stats.features_identical());
    }

    #[test]
    fn quota_exhaustion_drops_and_bills_the_right_tenant() {
        let server = server(ServerConfig {
            quota_capacity: 2,
            quota_refill_per_sec: 0.0,
            ..ServerConfig::default()
        });
        let mut session = StreamSession::open(
            Arc::clone(&server),
            ModelSource::new("kws", model_json()),
            SessionConfig::new("metered", 256),
        )
        .unwrap();
        session.push(&audio(3)).unwrap();
        session.poll();
        let stats = session.close();
        assert_eq!(stats.windows_classified, 2, "exactly the two budgeted windows ran");
        assert!(stats.drops_quota > 0, "the rest were shed as quota drops: {stats:?}");
    }

    #[test]
    fn smoothed_label_tracks_majority() {
        let server = server(ServerConfig::default());
        let mut session = StreamSession::open(
            server,
            ModelSource::new("kws", model_json()),
            SessionConfig::new("tenant-a", 256),
        )
        .unwrap();
        assert_eq!(session.current_label(), None);
        session.push(&audio(4)).unwrap();
        let verdicts = session.poll();
        assert!(!verdicts.is_empty());
        let last = verdicts.last().unwrap();
        assert_eq!(session.current_label(), Some(last.smoothed_label.as_str()));
        assert!(session.labels().contains(&last.smoothed_label));
    }

    #[test]
    fn misaligned_hop_is_rejected() {
        let server = server(ServerConfig::default());
        let model = ModelSource::new("kws", model_json());
        // frame stride is 64 samples; 100 is not a multiple
        let err =
            StreamSession::open(Arc::clone(&server), model.clone(), SessionConfig::new("t", 100))
                .unwrap_err();
        assert!(matches!(err, StreamError::InvalidConfig(_)), "{err:?}");
        let err = StreamSession::open(server, model, SessionConfig::new("t", 0)).unwrap_err();
        assert!(matches!(err, StreamError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn undecodable_model_is_rejected() {
        let server = server(ServerConfig::default());
        let err = StreamSession::open(
            server,
            ModelSource::new("junk", "not json".into()),
            SessionConfig::new("t", 256),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Model(_)), "{err:?}");
    }
}
