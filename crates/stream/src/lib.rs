#![warn(missing_docs)]

//! Streaming ingestion and continuous inference sessions.
//!
//! Everything below `ei-serve` classifies one whole window per request —
//! but the paper's deployed impulses run against *live* sensor streams:
//! audio arrives in small chunks, overlapping windows slide over it, and
//! the device reports a smoothed decision, not one-off classifications.
//! This crate is that vertical:
//!
//! * [`StreamSession`] — one tenant-attributed live stream. Chunked
//!   samples go in via [`StreamSession::push`] (which never blocks on
//!   inference); classified windows come back from
//!   [`StreamSession::poll`].
//! * **Incremental DSP** — each session drives an
//!   [`ei_dsp::StreamingExtractor`]: per-frame FFT/Mel columns are
//!   computed exactly once and shared across every overlapping window, and
//!   an optional batch-recompute oracle asserts the assembled features are
//!   *bitwise* equal to what batch `process` would produce.
//! * **Serving integration** — feature windows are submitted to the
//!   shared [`ei_serve::Server`] with `precomputed` set, so admission
//!   control, per-tenant quotas, the compiled-artifact cache,
//!   micro-batching, `serve.request` causal spans and ei-obs SLO monitors
//!   all apply unchanged. The session's own `stream.session` span is
//!   entered around each submit, so every request's causal chain leads
//!   back to its stream.
//! * **Backpressure** — a session whose frames outrun inference keeps at
//!   most `max_pending` assembled windows: overflow drops the *oldest*
//!   window first (bounding staleness) and counts the drop; quota and
//!   deadline rejections are likewise counted, never retried.
//! * [`MajorityVote`] — the paper's performance-calibration smoothing:
//!   the reported label is the majority over the last K window votes.
//!
//! All timing is charged to the server's injected [`ei_faults::Clock`], so
//! a sustained multi-tenant streaming load test on a
//! [`ei_faults::VirtualClock`] is byte-for-byte reproducible at any
//! `EI_THREADS` (see the `streaming` bench bin).

pub mod error;
pub mod session;
pub mod smoother;

pub use error::StreamError;
pub use session::{SessionConfig, SessionStats, StreamSession, WindowVerdict};
pub use smoother::MajorityVote;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StreamError>;
