//! Seeded worker-fault injection for the in-process cluster.

use crate::schedule::mix;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What happens to a worker when an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker thread exits without replying — a hard crash.
    Crash,
    /// The worker sleeps this many clock milliseconds before computing,
    /// without heartbeating. A stall longer than the heartbeat timeout is
    /// detected as a death; a shorter one is a benign slowdown.
    Stall(u64),
    /// The worker raises a genuine unwinding panic, which the worker
    /// shell catches and converts into a silent death.
    Panic,
}

/// A script of worker faults keyed by `(worker, epoch, step)`.
///
/// Faults are **one-shot**: a fault is consumed when it fires, so a
/// rolled-back epoch replays clean. Worker 0 is never faulted by
/// [`DistFaultPlan::seeded`], guaranteeing a survivor exists to adopt
/// orphaned partitions. [`DistFaultPlan::fresh`] re-arms the full script
/// for an independent run (e.g. the next tuner trial).
#[derive(Debug, Clone, Default)]
pub struct DistFaultPlan {
    template: FaultScript,
    armed: Arc<Mutex<FaultScript>>,
}

/// A fault script keyed by `(worker, epoch, step)`.
type FaultScript = BTreeMap<(usize, usize, usize), WorkerFault>;

impl DistFaultPlan {
    /// An empty plan: no faults ever fire.
    pub fn new() -> DistFaultPlan {
        DistFaultPlan::default()
    }

    /// Arms `fault` to fire when `worker` receives the compute command
    /// for `(epoch, step)`.
    #[must_use]
    pub fn inject(
        mut self,
        worker: usize,
        epoch: usize,
        step: usize,
        fault: WorkerFault,
    ) -> DistFaultPlan {
        self.template.insert((worker, epoch, step), fault);
        self.rearm();
        self
    }

    /// Generates a random fault script: each epoch independently draws a
    /// fault with probability `crash_rate`, aimed at a random worker in
    /// `1..workers` (worker 0 is spared) at a random step below
    /// `steps_hint`. The fault kind cycles through crash, stall-past-
    /// timeout and panic so every recovery path gets exercised.
    pub fn seeded(
        seed: u64,
        workers: usize,
        epochs: usize,
        steps_hint: usize,
        crash_rate: f64,
    ) -> DistFaultPlan {
        let mut plan = DistFaultPlan::new();
        if workers < 2 || steps_hint == 0 {
            return plan; // a lone worker must survive; nothing to aim at
        }
        for epoch in 0..epochs {
            let draw = mix(&[seed, epoch as u64, 0xfa0]);
            if (draw % 10_000) as f64 >= crash_rate * 10_000.0 {
                continue;
            }
            let worker = 1 + (mix(&[seed, epoch as u64, 0xfa1]) % (workers as u64 - 1)) as usize;
            let step = (mix(&[seed, epoch as u64, 0xfa2]) % steps_hint as u64) as usize;
            let fault = match mix(&[seed, epoch as u64, 0xfa3]) % 3 {
                0 => WorkerFault::Crash,
                1 => WorkerFault::Stall(1_000_000_000), // far past any timeout
                _ => WorkerFault::Panic,
            };
            plan.template.insert((worker, epoch, step), fault);
        }
        plan.rearm();
        plan
    }

    /// A fully re-armed copy of this plan's script, independent of any
    /// faults the current run has already consumed.
    #[must_use]
    pub fn fresh(&self) -> DistFaultPlan {
        let mut plan = DistFaultPlan { template: self.template.clone(), ..DistFaultPlan::new() };
        plan.rearm();
        plan
    }

    /// Number of faults in the script (armed or already fired).
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// `true` when the script contains no faults.
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// Consumes and returns the fault armed for `(worker, epoch, step)`,
    /// if any.
    pub(crate) fn take(&self, worker: usize, epoch: usize, step: usize) -> Option<WorkerFault> {
        self.armed.lock().expect("fault plan lock").remove(&(worker, epoch, step))
    }

    fn rearm(&mut self) {
        self.armed = Arc::new(Mutex::new(self.template.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_one_shot() {
        let plan = DistFaultPlan::new().inject(1, 0, 2, WorkerFault::Crash);
        assert_eq!(plan.take(1, 0, 2), Some(WorkerFault::Crash));
        assert_eq!(plan.take(1, 0, 2), None, "consumed faults must not refire on replay");
    }

    #[test]
    fn fresh_rearms_consumed_faults() {
        let plan = DistFaultPlan::new().inject(2, 1, 0, WorkerFault::Panic);
        assert_eq!(plan.take(2, 1, 0), Some(WorkerFault::Panic));
        let again = plan.fresh();
        assert_eq!(again.take(2, 1, 0), Some(WorkerFault::Panic));
        // the original stays consumed — fresh() is a copy, not a reset
        assert_eq!(plan.take(2, 1, 0), None);
    }

    #[test]
    fn seeded_plans_spare_worker_zero_and_are_reproducible() {
        let a = DistFaultPlan::seeded(42, 4, 50, 6, 0.5);
        let b = DistFaultPlan::seeded(42, 4, 50, 6, 0.5);
        assert_eq!(a.template, b.template);
        assert!(!a.is_empty(), "50 epochs at 50% should draw at least one fault");
        for (worker, _, _) in a.template.keys() {
            assert!(*worker >= 1 && *worker < 4);
        }
        let c = DistFaultPlan::seeded(43, 4, 50, 6, 0.5);
        assert_ne!(a.template, c.template, "different seeds, different scripts");
    }

    #[test]
    fn seeded_respects_rate_extremes() {
        assert!(DistFaultPlan::seeded(7, 4, 20, 4, 0.0).is_empty());
        assert_eq!(DistFaultPlan::seeded(7, 4, 20, 4, 1.0).len(), 20);
        assert!(DistFaultPlan::seeded(7, 1, 20, 4, 1.0).is_empty(), "lone worker is spared");
    }
}
