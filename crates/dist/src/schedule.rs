//! Deterministic partitioning, shuffling and per-epoch batch plans.
//!
//! Everything in this module is pure arithmetic on `(seed, epoch,
//! partition, batch)` so the orchestrator and the serial reference can
//! replay the exact same work list — the precondition for bitwise-equal
//! weights.

/// One planned minibatch: which partition it belongs to, the sample
/// indices it covers, and the dropout RNG seed the computing worker must
/// use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedBatch {
    /// Owning partition (fold position during reduction).
    pub partition: usize,
    /// Dataset indices in this batch.
    pub indices: Vec<usize>,
    /// Seed for the per-batch dropout RNG stream.
    pub seed: u64,
}

/// splitmix64 — the tiny, well-mixed PRNG step used for every derived
/// stream in this crate.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

/// Mixes a list of components into one well-distributed 64-bit seed.
pub fn mix(parts: &[u64]) -> u64 {
    let mut state = 0x243f_6a88_85a3_08d3u64; // pi digits, nothing-up-my-sleeve
    for &p in parts {
        state ^= p;
        splitmix64(&mut state);
    }
    state
}

/// Splits `n` samples into `partitions` contiguous chunks; the first
/// `n % partitions` chunks get one extra sample. Chunks may be empty when
/// `n < partitions`.
pub fn partition_indices(n: usize, partitions: usize) -> Vec<Vec<usize>> {
    let base = n / partitions;
    let extra = n % partitions;
    let mut out = Vec::with_capacity(partitions);
    let mut next = 0usize;
    for p in 0..partitions {
        let len = base + usize::from(p < extra);
        out.push((next..next + len).collect());
        next += len;
    }
    out
}

/// Fisher–Yates shuffle driven by a splitmix64 stream seeded from `seed`.
fn shuffled(indices: &[usize], seed: u64) -> Vec<usize> {
    let mut out = indices.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        splitmix64(&mut state);
        let j = (state % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Builds the batch plan for one epoch: `plan[step]` lists that step's
/// batches in ascending partition order (partitions that ran out of
/// samples are absent from later steps).
///
/// Each partition shuffles its own index range with a seed derived from
/// `(seed, epoch, partition)` and chunks it into `batch_size` batches;
/// the per-batch dropout seed mixes in the batch number as well. The plan
/// is a pure function of its arguments, so a rolled-back epoch replays
/// identically.
pub fn epoch_plan(
    partitions: &[Vec<usize>],
    epoch: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<PlannedBatch>> {
    let batch_size = batch_size.max(1);
    let per_part: Vec<Vec<usize>> = partitions
        .iter()
        .enumerate()
        .map(|(p, idx)| shuffled(idx, mix(&[seed, epoch as u64, p as u64, 0xb07])))
        .collect();
    let steps = per_part.iter().map(|idx| idx.len().div_ceil(batch_size)).max().unwrap_or(0);
    let mut plan = Vec::with_capacity(steps);
    for step in 0..steps {
        let mut batches = Vec::new();
        for (p, idx) in per_part.iter().enumerate() {
            let lo = step * batch_size;
            if lo >= idx.len() {
                continue;
            }
            let hi = (lo + batch_size).min(idx.len());
            batches.push(PlannedBatch {
                partition: p,
                indices: idx[lo..hi].to_vec(),
                seed: mix(&[seed, epoch as u64, p as u64, step as u64, 0xd15]),
            });
        }
        plan.push(batches);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_is_contiguous_and_balanced() {
        let parts = partition_indices(10, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[1], vec![3, 4, 5]);
        assert_eq!(parts[2], vec![6, 7]);
        assert_eq!(parts[3], vec![8, 9]);
        let flat: Vec<usize> = parts.concat();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn small_datasets_leave_empty_partitions() {
        let parts = partition_indices(2, 4);
        assert_eq!(parts[0], vec![0]);
        assert_eq!(parts[1], vec![1]);
        assert!(parts[2].is_empty() && parts[3].is_empty());
    }

    #[test]
    fn epoch_plan_is_deterministic_and_covers_every_sample() {
        let parts = partition_indices(23, 4);
        let a = epoch_plan(&parts, 2, 4, 77);
        let b = epoch_plan(&parts, 2, 4, 77);
        assert_eq!(a, b);
        let mut seen: Vec<usize> =
            a.iter().flatten().flat_map(|pb| pb.indices.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        // batches within a step are in ascending partition order
        for step in &a {
            let order: Vec<usize> = step.iter().map(|pb| pb.partition).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted);
        }
    }

    #[test]
    fn plans_differ_across_epochs_and_seeds() {
        let parts = partition_indices(32, 4);
        let base = epoch_plan(&parts, 0, 4, 1);
        assert_ne!(base, epoch_plan(&parts, 1, 4, 1));
        assert_ne!(base, epoch_plan(&parts, 0, 4, 2));
    }

    #[test]
    fn shuffle_stays_within_partition() {
        let parts = partition_indices(16, 4);
        let plan = epoch_plan(&parts, 0, 2, 9);
        for pb in plan.iter().flatten() {
            for &i in &pb.indices {
                assert!(parts[pb.partition].contains(&i));
            }
        }
    }

    #[test]
    fn mix_spreads_inputs() {
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_eq!(mix(&[5, 5]), mix(&[5, 5]));
    }
}
