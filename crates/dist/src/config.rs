//! Cluster shape, failure-detection tuning and the error type.

use ei_nn::NnError;
use std::fmt;

/// Shape and failure-detection parameters of the in-process cluster.
///
/// `partitions` is the determinism knob: gradients are folded in fixed
/// partition order, so two runs agree bitwise exactly when they use the
/// same partition count — regardless of `workers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistConfig {
    /// Number of worker threads to start (≥ 1).
    pub workers: usize,
    /// Number of data partitions (≥ 1). Fixed independently of
    /// `workers`; changing it changes the gradient fold tree and thus
    /// the trained bits.
    pub partitions: usize,
    /// Interval at which healthy workers refresh their heartbeat, in
    /// clock milliseconds. Informational — workers beat at every command
    /// boundary, which for TinyML step sizes is far more often.
    pub heartbeat_ms: u64,
    /// A worker that has neither replied nor heartbeat within this many
    /// clock milliseconds of a step's start is declared dead.
    pub heartbeat_timeout_ms: u64,
    /// Consecutive empty 1 ms polls past the deadline before the
    /// orchestrator commits to declaring stale workers dead. The grace
    /// window lets an alive worker's in-flight reply rescue it when a
    /// crashed peer has already jumped a virtual clock past the deadline.
    pub grace_polls: u32,
    /// Maximum times a single epoch may be rolled back and replayed
    /// before training fails with [`DistError::RetriesExhausted`].
    pub max_epoch_retries: u32,
}

impl DistConfig {
    /// A cluster of `workers` threads with the default 8-partition
    /// layout and generous real-time failure detection.
    pub fn new(workers: usize) -> DistConfig {
        DistConfig { workers, ..DistConfig::default() }
    }

    /// Sets the partition count.
    #[must_use]
    pub fn with_partitions(mut self, partitions: usize) -> DistConfig {
        self.partitions = partitions;
        self
    }

    /// Sets the heartbeat timeout (and a heartbeat interval at 1/4 of it).
    #[must_use]
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> DistConfig {
        self.heartbeat_timeout_ms = timeout_ms;
        self.heartbeat_ms = (timeout_ms / 4).max(1);
        self
    }

    /// Validates the shape parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidConfig`] on a zero worker or partition
    /// count or a zero heartbeat timeout.
    pub fn validate(&self) -> Result<(), DistError> {
        if self.workers == 0 {
            return Err(DistError::InvalidConfig("workers must be >= 1".into()));
        }
        if self.partitions == 0 {
            return Err(DistError::InvalidConfig("partitions must be >= 1".into()));
        }
        if self.heartbeat_timeout_ms == 0 {
            return Err(DistError::InvalidConfig("heartbeat_timeout_ms must be >= 1".into()));
        }
        Ok(())
    }
}

impl Default for DistConfig {
    fn default() -> DistConfig {
        DistConfig {
            workers: 1,
            partitions: 8,
            heartbeat_ms: 500,
            heartbeat_timeout_ms: 30_000,
            grace_polls: 100,
            max_epoch_retries: 4,
        }
    }
}

/// Errors surfaced by distributed training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// The cluster shape is unusable.
    InvalidConfig(String),
    /// The training set is empty or inputs/labels disagree.
    InvalidData(String),
    /// Every worker died; no survivor is left to adopt orphaned
    /// partitions.
    AllWorkersDead {
        /// Epoch during which the last worker was lost.
        epoch: usize,
    },
    /// One epoch was rolled back more than `max_epoch_retries` times.
    RetriesExhausted {
        /// The epoch that kept failing.
        epoch: usize,
        /// Rollbacks consumed on that epoch.
        retries: u32,
    },
    /// The underlying trainer rejected the model or data.
    Train(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidConfig(msg) => write!(f, "invalid cluster config: {msg}"),
            DistError::InvalidData(msg) => write!(f, "invalid training data: {msg}"),
            DistError::AllWorkersDead { epoch } => {
                write!(f, "all workers dead during epoch {epoch}; cannot reschedule partitions")
            }
            DistError::RetriesExhausted { epoch, retries } => {
                write!(f, "epoch {epoch} rolled back {retries} times; giving up")
            }
            DistError::Train(msg) => write!(f, "training failed: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<NnError> for DistError {
    fn from(err: NnError) -> DistError {
        DistError::Train(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(DistConfig::default().validate().is_ok());
        assert!(DistConfig::new(4).validate().is_ok());
    }

    #[test]
    fn zero_shapes_are_rejected() {
        assert!(matches!(DistConfig::new(0).validate(), Err(DistError::InvalidConfig(_))));
        assert!(matches!(
            DistConfig::new(2).with_partitions(0).validate(),
            Err(DistError::InvalidConfig(_))
        ));
        assert!(matches!(
            DistConfig::new(2).with_timeout_ms(0).validate(),
            Err(DistError::InvalidConfig(_))
        ));
    }

    #[test]
    fn timeout_builder_scales_heartbeat() {
        let cfg = DistConfig::new(2).with_timeout_ms(200);
        assert_eq!(cfg.heartbeat_timeout_ms, 200);
        assert_eq!(cfg.heartbeat_ms, 50);
    }

    #[test]
    fn errors_render() {
        let e = DistError::AllWorkersDead { epoch: 3 };
        assert!(e.to_string().contains("epoch 3"));
        let e = DistError::RetriesExhausted { epoch: 1, retries: 5 };
        assert!(e.to_string().contains("rolled back 5"));
    }
}
