//! Cluster-in-a-process data-parallel training (paper §4.1's "training
//! jobs run on managed infrastructure", stressed along the fault axis).
//!
//! A [`DistTrainer`] runs synchronous data-parallel SGD over worker
//! threads coordinated by an in-process parameter server. The design
//! target is *bitwise determinism under failure*:
//!
//! - The dataset is split into a **fixed number of partitions** chosen
//!   independently of the worker count. Workers compute per-batch
//!   gradient sums for the partitions assigned to them, and the server
//!   folds partition contributions in ascending partition order. Since
//!   float addition is non-associative, pinning the fold *tree* (not the
//!   compute placement) is what makes 1-, 2- and 4-worker runs produce
//!   byte-identical weights — and identical to [`train_serial_reference`].
//! - Gradients are pure functions of `(weights, batch, seed)` (see
//!   `ei_nn::train::Trainer::batch_gradients`), so recomputing a batch on
//!   a different worker after a crash yields the identical result.
//! - Workers heartbeat on an injected [`ei_faults::Clock`]. When a worker
//!   crashes, stalls past its deadline, or panics (driven by a seeded
//!   [`DistFaultPlan`]), the orchestrator detects the missed heartbeat,
//!   marks the dead worker's partitions orphaned, reassigns them to
//!   survivors, rolls the model and optimizer back to the last per-epoch
//!   checkpoint, and re-runs the epoch. The replay folds the same
//!   partition sums in the same order, so the final weights match the
//!   no-fault run bit for bit.
//!
//! The trade-off is synchronous-SGD semantics: each optimizer step waits
//! for every partition's contribution. That is exactly what makes the
//! result independent of scheduling, and for TinyML-sized models the
//! per-step compute is small enough that stragglers are cheap.

#![warn(missing_docs)]

mod cluster;
mod config;
mod fault;
mod reference;
pub mod schedule;

pub use cluster::{DistReport, DistTrainer};
pub use config::{DistConfig, DistError};
pub use fault::{DistFaultPlan, WorkerFault};
pub use reference::{train_serial_reference, weight_checksum};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, DistError>;
