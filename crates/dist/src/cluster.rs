//! Worker threads, the parameter server and the recovery orchestrator.

use crate::config::{DistConfig, DistError};
use crate::fault::{DistFaultPlan, WorkerFault};
use crate::reference::weight_checksum;
use crate::schedule::{epoch_plan, partition_indices, PlannedBatch};
use ei_faults::{Clock, SystemClock};
use ei_nn::model::LayerGrads;
use ei_nn::optimizer::Optimizer;
use ei_nn::train::{
    accumulate_grads, apply_batch, restore, snapshot, BatchGrads, Checkpoint, TrainConfig, Trainer,
};
use ei_nn::Sequential;
use ei_trace::{SpanGuard, Tracer};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Command sent from the server to a worker.
struct Cmd {
    attempt: u64,
    epoch: usize,
    step: usize,
    partition: usize,
    ckpt: Arc<Checkpoint>,
    batch: Arc<Vec<usize>>,
    seed: u64,
}

/// A worker's answer for one planned batch.
struct Reply {
    worker: usize,
    attempt: u64,
    partition: usize,
    grads: Result<BatchGrads, String>,
}

/// Orchestrator-side view of one worker thread.
struct WorkerSlot {
    tx: Option<Sender<Cmd>>,
    beat: Arc<AtomicU64>,
}

impl WorkerSlot {
    fn alive(&self) -> bool {
        self.tx.is_some()
    }
}

/// Outcome summary of one distributed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistReport {
    /// Workers the cluster started with.
    pub workers_started: usize,
    /// Workers still alive when training finished.
    pub workers_surviving: usize,
    /// Fixed partition count used for the gradient fold.
    pub partitions: usize,
    /// Epochs completed.
    pub epochs: usize,
    /// Mean training loss per epoch (computed during the successful
    /// attempt of each epoch).
    pub train_loss: Vec<f32>,
    /// Worker deaths detected via missed heartbeats or overrun deadlines.
    pub crashes_detected: u64,
    /// Orphaned partitions reassigned to surviving workers.
    pub partitions_rescheduled: u64,
    /// Epochs rolled back to their checkpoint and replayed.
    pub epoch_retries: u64,
    /// FNV-1a checksum over the final weight bytes (see
    /// [`crate::weight_checksum`]).
    pub weight_checksum: u64,
}

/// Synchronous data-parallel trainer: worker threads plus an in-process
/// parameter server with checkpoint-rollback crash recovery.
///
/// Uses `epochs`, `batch_size`, `learning_rate`, `optimizer`, `loss`,
/// `weight_decay` and `seed` from the given [`TrainConfig`];
/// `validation_split` and `restore_best` are serial-trainer features and
/// are ignored here.
pub struct DistTrainer {
    config: DistConfig,
    train: TrainConfig,
    tracer: Tracer,
    clock: Arc<dyn Clock>,
    faults: DistFaultPlan,
}

impl DistTrainer {
    /// A trainer over the real [`SystemClock`] with no fault injection.
    pub fn new(config: DistConfig, train: TrainConfig) -> DistTrainer {
        DistTrainer {
            config,
            train,
            tracer: Tracer::disabled(),
            clock: Arc::new(SystemClock::new()),
            faults: DistFaultPlan::new(),
        }
    }

    /// Attaches a tracer: emits a `dist.train` span, per-epoch events and
    /// `dist.*` counters.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> DistTrainer {
        self.tracer = tracer;
        self
    }

    /// Substitutes the clock workers heartbeat on (a
    /// [`ei_faults::VirtualClock`] makes injected stalls instantaneous).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> DistTrainer {
        self.clock = clock;
        self
    }

    /// Arms a fault script for this run.
    #[must_use]
    pub fn with_faults(mut self, faults: DistFaultPlan) -> DistTrainer {
        self.faults = faults;
        self
    }

    /// The cluster configuration.
    pub fn config(&self) -> &DistConfig {
        &self.config
    }

    /// The training configuration the cluster optimizes under.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// Trains `model` in place and returns the run report. Weights are
    /// bitwise-identical to [`crate::train_serial_reference`] with the
    /// same configs, at any worker count, with or without injected
    /// faults (as long as a worker survives).
    ///
    /// # Errors
    ///
    /// Fails on invalid shapes/data, when every worker dies, when one
    /// epoch exceeds its retry budget, or when the underlying trainer
    /// rejects a batch.
    pub fn train(
        &self,
        model: &mut Sequential,
        inputs: &[Vec<f32>],
        labels: &[usize],
    ) -> crate::Result<DistReport> {
        self.config.validate()?;
        if inputs.is_empty() || inputs.len() != labels.len() {
            return Err(DistError::InvalidData(format!(
                "{} inputs vs {} labels",
                inputs.len(),
                labels.len()
            )));
        }

        let span = self.tracer.span_with(
            "dist.train",
            vec![
                ("workers", (self.config.workers as u64).into()),
                ("partitions", (self.config.partitions as u64).into()),
                ("epochs", (self.train.epochs as u64).into()),
                ("samples", (inputs.len() as u64).into()),
            ],
        );

        let parts = partition_indices(inputs.len(), self.config.partitions);
        let trainer = Trainer::new(self.train.clone());
        let mut optimizer = Optimizer::new(self.train.optimizer);
        let mut report = DistReport {
            workers_started: self.config.workers,
            workers_surviving: self.config.workers,
            partitions: self.config.partitions,
            epochs: 0,
            train_loss: Vec::new(),
            crashes_detected: 0,
            partitions_rescheduled: 0,
            epoch_retries: 0,
            weight_checksum: 0,
        };

        let (result_tx, result_rx) = mpsc::channel::<Reply>();
        let spec = model.spec().clone();
        let outcome = std::thread::scope(|scope| -> crate::Result<()> {
            let mut slots: Vec<WorkerSlot> = Vec::with_capacity(self.config.workers);
            for id in 0..self.config.workers {
                let (tx, rx) = mpsc::channel::<Cmd>();
                let beat = Arc::new(AtomicU64::new(self.clock.now_ms()));
                let shell = WorkerShell {
                    id,
                    spec: spec.clone(),
                    trainer: trainer.clone(),
                    inputs,
                    labels,
                    rx,
                    tx: result_tx.clone(),
                    beat: Arc::clone(&beat),
                    clock: Arc::clone(&self.clock),
                    faults: self.faults.clone(),
                    timeout_ms: self.config.heartbeat_timeout_ms,
                };
                std::thread::Builder::new()
                    .name(format!("ei-dist-worker-{id}"))
                    .spawn_scoped(scope, move || shell.run())
                    .expect("spawn worker thread");
                slots.push(WorkerSlot { tx: Some(tx), beat });
            }

            // partition → worker placement; rebuilt only on worker death
            let mut assignment: Vec<usize> =
                (0..self.config.partitions).map(|p| p % self.config.workers).collect();
            let mut attempt: u64 = 0;

            for epoch in 0..self.train.epochs {
                let plan = epoch_plan(&parts, epoch, self.train.batch_size, self.train.seed);
                let mut retries_this_epoch: u32 = 0;
                let epoch_loss = loop {
                    let ckpt = Arc::new(snapshot(model));
                    let opt_ckpt = optimizer.clone();
                    attempt += 1;
                    match self.run_epoch_attempt(
                        model,
                        &mut optimizer,
                        &plan,
                        &slots,
                        &assignment,
                        &result_rx,
                        epoch,
                        attempt,
                        Arc::clone(&ckpt),
                    ) {
                        Ok(loss) => break loss,
                        Err(Abort::Fatal(err)) => return Err(err),
                        Err(Abort::Dead { workers, cause }) => {
                            self.bury_and_reassign(
                                &span,
                                &mut slots,
                                &mut assignment,
                                &workers,
                                cause,
                                epoch,
                                &mut report,
                            )?;
                            restore(model, &ckpt);
                            optimizer = opt_ckpt;
                            report.epoch_retries += 1;
                            self.tracer.counter("dist.epoch_retries").inc();
                            span.event(
                                "dist.checkpoint_restored",
                                vec![
                                    ("epoch", (epoch as u64).into()),
                                    ("retry", u64::from(retries_this_epoch + 1).into()),
                                ],
                            );
                            retries_this_epoch += 1;
                            if retries_this_epoch > self.config.max_epoch_retries {
                                return Err(DistError::RetriesExhausted {
                                    epoch,
                                    retries: retries_this_epoch,
                                });
                            }
                        }
                    }
                };
                report.epochs += 1;
                report.train_loss.push(epoch_loss);
                self.tracer.counter("dist.epochs").inc();
                span.event(
                    "dist.epoch",
                    vec![("epoch", (epoch as u64).into()), ("loss", f64::from(epoch_loss).into())],
                );
            }
            // closing the command channels lets every surviving worker
            // drain out of its recv loop so the scope can join
            for slot in &mut slots {
                slot.tx = None;
            }
            report.workers_surviving =
                slots.iter().filter(|s| s.beat.load(Ordering::SeqCst) != u64::MAX).count();
            Ok(())
        });
        outcome?;

        report.weight_checksum = weight_checksum(model);
        span.event(
            "dist.finished",
            vec![
                ("epochs", (report.epochs as u64).into()),
                ("crashes", report.crashes_detected.into()),
                ("checksum", report.weight_checksum.into()),
            ],
        );
        Ok(report)
    }

    /// Runs one attempt of one epoch: dispatches every step, reduces in
    /// partition order, applies optimizer updates. Returns the epoch's
    /// mean loss, or which workers must be declared dead.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_attempt(
        &self,
        model: &mut Sequential,
        optimizer: &mut Optimizer,
        plan: &[Vec<PlannedBatch>],
        slots: &[WorkerSlot],
        assignment: &[usize],
        result_rx: &Receiver<Reply>,
        epoch: usize,
        attempt: u64,
        mut ckpt: Arc<Checkpoint>,
    ) -> Result<f32, Abort> {
        let mut loss_sum = 0.0f64;
        let mut sample_count = 0usize;
        for (step, batches) in plan.iter().enumerate() {
            let step_start = self.clock.now_ms();
            let deadline = step_start.saturating_add(self.config.heartbeat_timeout_ms);
            // dispatch this step's batches to their partitions' workers
            let mut pending: BTreeMap<usize, usize> = BTreeMap::new();
            for pb in batches {
                let worker = assignment[pb.partition];
                let slot = &slots[worker];
                let cmd = Cmd {
                    attempt,
                    epoch,
                    step,
                    partition: pb.partition,
                    ckpt: Arc::clone(&ckpt),
                    batch: Arc::new(pb.indices.clone()),
                    seed: pb.seed,
                };
                match &slot.tx {
                    Some(tx) if tx.send(cmd).is_ok() => {
                        pending.insert(pb.partition, worker);
                    }
                    // channel gone: the thread already exited without
                    // ever being detected — declare it dead now
                    _ => {
                        return Err(Abort::Dead { workers: vec![worker], cause: "channel_closed" })
                    }
                }
            }

            // collect replies; detect missed heartbeats / overrun deadlines
            let mut slots_grads: BTreeMap<usize, BatchGrads> = BTreeMap::new();
            let mut overdue_polls: u32 = 0;
            while !pending.is_empty() {
                match result_rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(reply) => {
                        if reply.attempt != attempt
                            || pending.get(&reply.partition) != Some(&reply.worker)
                        {
                            continue; // stale reply from a rolled-back attempt
                        }
                        // a reply is never "too late": gradients are pure
                        // functions of (checkpoint, batch, seed), so accepting
                        // one cannot change the bits. Workers that overslept
                        // their lease fence themselves and never reply.
                        match reply.grads {
                            Ok(grads) => {
                                pending.remove(&reply.partition);
                                slots_grads.insert(reply.partition, grads);
                            }
                            Err(msg) => return Err(Abort::Fatal(DistError::Train(msg))),
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        let now = self.clock.now_ms();
                        if now <= deadline {
                            continue;
                        }
                        let stale: Vec<usize> = pending
                            .values()
                            .filter(|&&w| {
                                let beat = slots[w].beat.load(Ordering::SeqCst);
                                beat == u64::MAX
                                    || now.saturating_sub(beat) > self.config.heartbeat_timeout_ms
                            })
                            .copied()
                            .collect();
                        if stale.is_empty() {
                            continue; // everyone still heartbeating; extend
                        }
                        overdue_polls += 1;
                        if overdue_polls >= self.config.grace_polls {
                            let mut dead = stale;
                            dead.sort_unstable();
                            dead.dedup();
                            return Err(Abort::Dead { workers: dead, cause: "missed_heartbeat" });
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(Abort::Fatal(DistError::Train(
                            "result channel disconnected".into(),
                        )))
                    }
                }
            }

            // parameter server: fold partition sums in ascending partition
            // order — the fixed fold tree that pins the trained bits
            let mut total: Option<Vec<LayerGrads>> = None;
            let mut step_samples = 0usize;
            for (_, grads) in slots_grads {
                loss_sum += grads.loss_sum;
                step_samples += grads.count;
                total = Some(match total {
                    None => grads.grads,
                    Some(mut acc) => {
                        accumulate_grads(&mut acc, &grads.grads);
                        acc
                    }
                });
            }
            if let Some(total) = total {
                apply_batch(
                    model,
                    &total,
                    optimizer,
                    self.train.learning_rate,
                    step_samples as f32,
                    self.train.weight_decay,
                );
                self.tracer.counter("dist.reductions").inc();
                sample_count += step_samples;
                // later steps must ship the post-update weights
                ckpt = Arc::new(snapshot(model));
            }
        }
        Ok((loss_sum / sample_count.max(1) as f64) as f32)
    }

    /// Marks `dead` workers as gone, reassigns their partitions
    /// round-robin onto survivors, and emits the recovery telemetry
    /// through the `dist.train` span, so crash events carry the training
    /// run's causal chain (back to the submitting job/request) for the
    /// flight recorder.
    #[allow(clippy::too_many_arguments)]
    fn bury_and_reassign(
        &self,
        span: &SpanGuard,
        slots: &mut [WorkerSlot],
        assignment: &mut [usize],
        dead: &[usize],
        cause: &'static str,
        epoch: usize,
        report: &mut DistReport,
    ) -> crate::Result<()> {
        for &w in dead {
            slots[w].tx = None; // drop the sender; the thread drains out
            slots[w].beat.store(u64::MAX, Ordering::SeqCst);
            report.crashes_detected += 1;
            self.tracer.counter("dist.crashes_detected").inc();
            span.event(
                "dist.crash_detected",
                vec![
                    ("worker", (w as u64).into()),
                    ("epoch", (epoch as u64).into()),
                    ("cause", cause.into()),
                ],
            );
        }
        let survivors: Vec<usize> = (0..slots.len()).filter(|&w| slots[w].alive()).collect();
        if survivors.is_empty() {
            return Err(DistError::AllWorkersDead { epoch });
        }
        let mut next = 0usize;
        let mut moved = 0u64;
        for (partition, owner) in assignment.iter_mut().enumerate() {
            if slots[*owner].alive() {
                continue;
            }
            *owner = survivors[next % survivors.len()];
            next += 1;
            moved += 1;
            span.event(
                "dist.partition_rescheduled",
                vec![("partition", (partition as u64).into()), ("worker", (*owner as u64).into())],
            );
        }
        report.partitions_rescheduled += moved;
        self.tracer.counter("dist.partitions_rescheduled").add(moved);
        span.event(
            "dist.partitions_rescheduled",
            vec![("count", moved.into()), ("epoch", (epoch as u64).into())],
        );
        Ok(())
    }
}

/// Why an epoch attempt could not finish.
enum Abort {
    /// These workers are dead; roll back and replay.
    Dead { workers: Vec<usize>, cause: &'static str },
    /// Unrecoverable error; stop training.
    Fatal(DistError),
}

/// Everything one worker thread owns.
struct WorkerShell<'data> {
    id: usize,
    spec: ei_nn::ModelSpec,
    trainer: Trainer,
    inputs: &'data [Vec<f32>],
    labels: &'data [usize],
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
    beat: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
    faults: DistFaultPlan,
    timeout_ms: u64,
}

impl WorkerShell<'_> {
    /// Worker main loop: restore the shipped checkpoint into a local
    /// replica, compute the batch's gradient sums, heartbeat around every
    /// boundary, reply. Exits (silently) on channel close, injected
    /// crash, or a caught panic.
    fn run(self) {
        let caught = catch_unwind(AssertUnwindSafe(|| self.serve()));
        if caught.is_err() {
            // a panicking worker just dies; the orchestrator's heartbeat
            // watchdog turns the silence into a reschedule
        }
    }

    fn serve(&self) {
        let mut replica = match Sequential::build(&self.spec, 0) {
            Ok(m) => m,
            Err(_) => return, // server built the same spec; unreachable
        };
        while let Ok(cmd) = self.rx.recv() {
            self.beat.store(self.clock.now_ms(), Ordering::SeqCst);
            if let Some(fault) = self.faults.take(self.id, cmd.epoch, cmd.step) {
                match fault {
                    WorkerFault::Crash => {
                        // die without a word; jump a virtual clock past
                        // the deadline so detection is immediate in tests
                        self.clock.sleep_ms(self.timeout_ms.saturating_add(1), None);
                        return;
                    }
                    WorkerFault::Panic => {
                        self.clock.sleep_ms(self.timeout_ms.saturating_add(1), None);
                        // a genuine unwinding panic, raised without the
                        // global panic hook so tests stay quiet; run()
                        // catches it and the thread dies silently
                        std::panic::resume_unwind(Box::new(format!(
                            "injected fault: worker {} panicked at epoch {} step {}",
                            self.id, cmd.epoch, cmd.step
                        )));
                    }
                    WorkerFault::Stall(ms) => {
                        // go silent for `ms` without heartbeating; a worker
                        // that overslept its lease self-fences — the server
                        // may have reassigned its partition, so replying
                        // could race the replacement. A short stall is a
                        // benign slowdown.
                        self.clock.sleep_ms(ms, None);
                        if ms > self.timeout_ms {
                            return;
                        }
                    }
                }
            }
            restore(&mut replica, &cmd.ckpt);
            self.beat.store(self.clock.now_ms(), Ordering::SeqCst);
            let grads = self
                .trainer
                .batch_gradients(&replica, self.inputs, self.labels, &cmd.batch, cmd.seed)
                .map_err(|e| e.to_string());
            self.beat.store(self.clock.now_ms(), Ordering::SeqCst);
            let reply =
                Reply { worker: self.id, attempt: cmd.attempt, partition: cmd.partition, grads };
            if self.tx.send(reply).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::train_serial_reference;
    use ei_faults::VirtualClock;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};

    /// Two linearly separable blobs in 2-D.
    fn blobs(n_per_class: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jx = (i % 7) as f32 * 0.05;
            let jy = (i % 5) as f32 * 0.05;
            inputs.push(vec![1.0 + jx, 1.0 + jy]);
            labels.push(0);
            inputs.push(vec![-1.0 - jx, -1.0 - jy]);
            labels.push(1);
        }
        (inputs, labels)
    }

    fn classifier_spec() -> ModelSpec {
        ModelSpec::new(Dims::new(1, 2, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax)
    }

    fn train_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            batch_size: 4,
            learning_rate: 0.01,
            validation_split: 0.0,
            restore_best: false,
            seed: 42,
            ..TrainConfig::default()
        }
    }

    fn fast_cluster(workers: usize) -> DistConfig {
        let mut cfg = DistConfig::new(workers).with_partitions(4).with_timeout_ms(50);
        cfg.grace_polls = 5;
        cfg
    }

    #[test]
    fn one_worker_matches_serial_reference() {
        let (inputs, labels) = blobs(16);
        let dist_cfg = fast_cluster(1);

        let mut serial = Sequential::build(&classifier_spec(), 7).unwrap();
        let serial_loss =
            train_serial_reference(&mut serial, &train_cfg(), &dist_cfg, &inputs, &labels).unwrap();

        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let report =
            DistTrainer::new(dist_cfg, train_cfg()).train(&mut model, &inputs, &labels).unwrap();

        assert_eq!(snapshot(&serial), snapshot(&model), "weights must match bit for bit");
        assert_eq!(report.weight_checksum, weight_checksum(&serial));
        assert_eq!(report.train_loss, serial_loss);
        assert_eq!(report.epochs, 3);
        assert_eq!(report.crashes_detected, 0);
    }

    #[test]
    fn worker_count_does_not_change_the_bits() {
        let (inputs, labels) = blobs(16);
        let mut checksums = Vec::new();
        for workers in [1usize, 2, 3, 4] {
            let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
            let report = DistTrainer::new(fast_cluster(workers), train_cfg())
                .train(&mut model, &inputs, &labels)
                .unwrap();
            checksums.push(report.weight_checksum);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "checksums diverged across worker counts: {checksums:?}"
        );
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (inputs, labels) = blobs(16);
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let cfg = TrainConfig { epochs: 10, ..train_cfg() };
        let report =
            DistTrainer::new(fast_cluster(2), cfg).train(&mut model, &inputs, &labels).unwrap();
        assert!(report.train_loss.last().unwrap() < report.train_loss.first().unwrap());
    }

    #[test]
    fn crash_mid_epoch_recovers_with_identical_bits() {
        let (inputs, labels) = blobs(16);
        let dist_cfg = fast_cluster(4);

        let mut baseline = Sequential::build(&classifier_spec(), 7).unwrap();
        train_serial_reference(&mut baseline, &train_cfg(), &dist_cfg, &inputs, &labels).unwrap();

        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let plan = DistFaultPlan::new().inject(1, 1, 0, WorkerFault::Crash);
        let report = DistTrainer::new(dist_cfg, train_cfg())
            .with_clock(Arc::new(VirtualClock::new()))
            .with_faults(plan)
            .train(&mut model, &inputs, &labels)
            .unwrap();

        assert_eq!(report.crashes_detected, 1);
        assert!(report.partitions_rescheduled >= 1);
        assert_eq!(report.epoch_retries, 1);
        assert_eq!(snapshot(&baseline), snapshot(&model), "recovery must not change the bits");
    }

    #[test]
    fn stall_past_deadline_is_detected_and_recovered() {
        let (inputs, labels) = blobs(16);
        let dist_cfg = fast_cluster(3);

        let mut baseline = Sequential::build(&classifier_spec(), 7).unwrap();
        train_serial_reference(&mut baseline, &train_cfg(), &dist_cfg, &inputs, &labels).unwrap();

        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let plan = DistFaultPlan::new().inject(2, 0, 1, WorkerFault::Stall(1_000_000));
        let report = DistTrainer::new(dist_cfg, train_cfg())
            .with_clock(Arc::new(VirtualClock::new()))
            .with_faults(plan)
            .train(&mut model, &inputs, &labels)
            .unwrap();

        assert_eq!(report.crashes_detected, 1);
        assert_eq!(snapshot(&baseline), snapshot(&model));
    }

    #[test]
    fn panic_is_isolated_and_recovered() {
        let (inputs, labels) = blobs(16);
        let dist_cfg = fast_cluster(2);

        let mut baseline = Sequential::build(&classifier_spec(), 7).unwrap();
        train_serial_reference(&mut baseline, &train_cfg(), &dist_cfg, &inputs, &labels).unwrap();

        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let plan = DistFaultPlan::new().inject(1, 2, 1, WorkerFault::Panic);
        let report = DistTrainer::new(dist_cfg, train_cfg())
            .with_clock(Arc::new(VirtualClock::new()))
            .with_faults(plan)
            .train(&mut model, &inputs, &labels)
            .unwrap();

        assert_eq!(report.crashes_detected, 1);
        assert_eq!(report.workers_surviving, 1);
        assert_eq!(snapshot(&baseline), snapshot(&model));
    }

    #[test]
    fn losing_every_worker_is_fatal() {
        let (inputs, labels) = blobs(8);
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let plan = DistFaultPlan::new().inject(0, 0, 0, WorkerFault::Crash).inject(
            1,
            0,
            0,
            WorkerFault::Crash,
        );
        let err = DistTrainer::new(fast_cluster(2), train_cfg())
            .with_clock(Arc::new(VirtualClock::new()))
            .with_faults(plan)
            .train(&mut model, &inputs, &labels)
            .unwrap_err();
        assert!(matches!(err, DistError::AllWorkersDead { epoch: 0 }), "got {err}");
    }

    #[test]
    fn retry_budget_is_enforced() {
        let (inputs, labels) = blobs(8);
        let mut dist_cfg = fast_cluster(2);
        dist_cfg.max_epoch_retries = 0;
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let plan = DistFaultPlan::new().inject(1, 0, 0, WorkerFault::Crash);
        let err = DistTrainer::new(dist_cfg, train_cfg())
            .with_clock(Arc::new(VirtualClock::new()))
            .with_faults(plan)
            .train(&mut model, &inputs, &labels)
            .unwrap_err();
        assert!(matches!(err, DistError::RetriesExhausted { epoch: 0, retries: 1 }), "got {err}");
    }

    #[test]
    fn rejects_bad_shapes_and_data() {
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let err = DistTrainer::new(DistConfig::new(0), train_cfg())
            .train(&mut model, &[vec![0.0, 0.0]], &[0])
            .unwrap_err();
        assert!(matches!(err, DistError::InvalidConfig(_)));
        let err = DistTrainer::new(DistConfig::new(1), train_cfg())
            .train(&mut model, &[], &[])
            .unwrap_err();
        assert!(matches!(err, DistError::InvalidData(_)));
    }

    #[test]
    fn more_workers_than_partitions_is_fine() {
        let (inputs, labels) = blobs(8);
        let dist_cfg = fast_cluster(4).with_partitions(2);
        let mut serial = Sequential::build(&classifier_spec(), 7).unwrap();
        train_serial_reference(&mut serial, &train_cfg(), &dist_cfg, &inputs, &labels).unwrap();
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        DistTrainer::new(dist_cfg, train_cfg()).train(&mut model, &inputs, &labels).unwrap();
        assert_eq!(snapshot(&serial), snapshot(&model));
    }

    #[test]
    fn tracer_counts_epochs_and_reductions() {
        let (inputs, labels) = blobs(8);
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let (tracer, collector) = Tracer::collecting(clock.clone());
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        DistTrainer::new(fast_cluster(2), train_cfg())
            .with_clock(clock)
            .with_tracer(tracer.clone())
            .train(&mut model, &inputs, &labels)
            .unwrap();
        let metrics = tracer.metrics_snapshot();
        assert_eq!(metrics.get("dist.epochs"), Some(&ei_trace::MetricValue::Counter(3)));
        match metrics.get("dist.reductions") {
            Some(ei_trace::MetricValue::Counter(n)) => assert!(*n > 0),
            other => panic!("missing dist.reductions counter: {other:?}"),
        }
        let names: Vec<String> = collector.records().iter().map(|r| r.name().to_string()).collect();
        assert!(names.iter().any(|n| n == "dist.train"));
        assert!(names.iter().any(|n| n == "dist.epoch"));
    }
}
