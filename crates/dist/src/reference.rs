//! Threadless serial oracle and the weight checksum.

use crate::config::{DistConfig, DistError};
use crate::schedule::{epoch_plan, partition_indices};
use ei_nn::model::LayerGrads;
use ei_nn::optimizer::Optimizer;
use ei_nn::train::{accumulate_grads, apply_batch, TrainConfig, Trainer};
use ei_nn::Sequential;

/// FNV-1a hash over the little-endian bit patterns of every weight and
/// bias value, in layer order. Two models collide only when their
/// parameter bytes are identical (up to hash collisions), so equality of
/// checksums is the cheap proxy the benches use for "bitwise-equal
/// weights".
pub fn weight_checksum(model: &Sequential) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for layer in model.layers() {
        for tensor in [layer.weights.as_ref(), layer.bias.as_ref()].into_iter().flatten() {
            if let Ok(values) = tensor.as_f32() {
                for v in values {
                    eat(&v.to_bits().to_le_bytes());
                }
            }
        }
    }
    hash
}

/// Serial replay of the distributed schedule: same partitions, same
/// shuffles, same per-batch dropout seeds, same ascending-partition fold
/// — executed by one thread with no cluster. [`crate::DistTrainer`] is
/// bitwise-equal to this at any worker count, which is what the
/// integration tests assert.
///
/// Returns the per-epoch mean training loss.
///
/// # Errors
///
/// Fails on invalid shapes/data or when the underlying trainer rejects a
/// batch.
pub fn train_serial_reference(
    model: &mut Sequential,
    train: &TrainConfig,
    dist: &DistConfig,
    inputs: &[Vec<f32>],
    labels: &[usize],
) -> crate::Result<Vec<f32>> {
    dist.validate()?;
    if inputs.is_empty() || inputs.len() != labels.len() {
        return Err(DistError::InvalidData(format!(
            "{} inputs vs {} labels",
            inputs.len(),
            labels.len()
        )));
    }
    let parts = partition_indices(inputs.len(), dist.partitions);
    let trainer = Trainer::new(train.clone());
    let mut optimizer = Optimizer::new(train.optimizer);
    let mut losses = Vec::with_capacity(train.epochs);
    for epoch in 0..train.epochs {
        let mut loss_sum = 0.0f64;
        let mut sample_count = 0usize;
        for batches in epoch_plan(&parts, epoch, train.batch_size, train.seed) {
            let mut total: Option<Vec<LayerGrads>> = None;
            let mut step_samples = 0usize;
            for pb in &batches {
                let grads = trainer.batch_gradients(model, inputs, labels, &pb.indices, pb.seed)?;
                loss_sum += grads.loss_sum;
                step_samples += grads.count;
                total = Some(match total {
                    None => grads.grads,
                    Some(mut acc) => {
                        accumulate_grads(&mut acc, &grads.grads);
                        acc
                    }
                });
            }
            if let Some(total) = total {
                apply_batch(
                    model,
                    &total,
                    &mut optimizer,
                    train.learning_rate,
                    step_samples as f32,
                    train.weight_decay,
                );
                sample_count += step_samples;
            }
        }
        losses.push((loss_sum / sample_count.max(1) as f64) as f32);
    }
    Ok(losses)
}
