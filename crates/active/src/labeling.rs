//! Cluster-proximity labeling suggestions.

use ei_tensor::ops::squared_distance;
use std::collections::BTreeMap;

/// A labeling suggestion for one unlabeled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Index of the sample in the unlabeled set.
    pub index: usize,
    /// Suggested label, or `None` when the sample looks like an outlier
    /// that should be reviewed or removed.
    pub label: Option<String>,
    /// Distance to the nearest class centroid (embedding units).
    pub distance: f32,
}

/// Suggests labels for unlabeled embeddings by proximity to labeled class
/// clusters.
#[derive(Debug, Clone)]
pub struct AutoLabeler {
    centroids: Vec<(String, Vec<f32>)>,
    /// Per-class mean member distance (cluster spread).
    spreads: Vec<f32>,
    /// Accept a suggestion when `distance <= accept_factor * spread`.
    accept_factor: f32,
}

impl AutoLabeler {
    /// Builds class centroids from labeled embeddings.
    ///
    /// `accept_factor` scales each class's spread into an acceptance
    /// radius; 2.0 is a reasonable default.
    ///
    /// # Panics
    ///
    /// Panics if `embeddings` and `labels` differ in length or are empty.
    pub fn fit(embeddings: &[Vec<f32>], labels: &[String], accept_factor: f32) -> AutoLabeler {
        assert_eq!(embeddings.len(), labels.len(), "embeddings/labels length mismatch");
        assert!(!embeddings.is_empty(), "need labeled data");
        let mut groups: BTreeMap<&String, Vec<&Vec<f32>>> = BTreeMap::new();
        for (e, l) in embeddings.iter().zip(labels) {
            groups.entry(l).or_default().push(e);
        }
        let dims = embeddings[0].len();
        let mut centroids = Vec::new();
        let mut spreads = Vec::new();
        for (label, members) in groups {
            let mut c = vec![0.0f32; dims];
            for m in &members {
                for (cv, &mv) in c.iter_mut().zip(m.iter()) {
                    *cv += mv;
                }
            }
            for cv in c.iter_mut() {
                *cv /= members.len() as f32;
            }
            let spread = (members.iter().map(|m| squared_distance(m, &c).sqrt()).sum::<f32>()
                / members.len() as f32)
                .max(1e-3);
            centroids.push((label.clone(), c));
            spreads.push(spread);
        }
        AutoLabeler { centroids, spreads, accept_factor }
    }

    /// Class labels known to the labeler (sorted).
    pub fn labels(&self) -> Vec<&str> {
        self.centroids.iter().map(|(l, _)| l.as_str()).collect()
    }

    /// Produces one suggestion per unlabeled embedding.
    pub fn suggest(&self, unlabeled: &[Vec<f32>]) -> Vec<Suggestion> {
        unlabeled
            .iter()
            .enumerate()
            .map(|(index, e)| {
                let mut best: Option<(usize, f32)> = None;
                for (ci, (_, c)) in self.centroids.iter().enumerate() {
                    let d = squared_distance(e, c).sqrt();
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((ci, d));
                    }
                }
                let (ci, distance) = best.expect("at least one centroid");
                let label = if distance <= self.accept_factor * self.spreads[ci] {
                    Some(self.centroids[ci].0.clone())
                } else {
                    None
                };
                Suggestion { index, label, distance }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled() -> (Vec<Vec<f32>>, Vec<String>) {
        let mut embeddings = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let j = (i % 5) as f32 * 0.1;
            embeddings.push(vec![1.0 + j, 1.0 - j]);
            labels.push("walk".to_string());
            embeddings.push(vec![-1.0 - j, -1.0 + j]);
            labels.push("idle".to_string());
        }
        (embeddings, labels)
    }

    #[test]
    fn suggests_nearby_class() {
        let (e, l) = labeled();
        let labeler = AutoLabeler::fit(&e, &l, 2.0);
        assert_eq!(labeler.labels(), vec!["idle", "walk"]);
        let suggestions = labeler.suggest(&[vec![1.1, 0.9], vec![-1.1, -0.9]]);
        assert_eq!(suggestions[0].label.as_deref(), Some("walk"));
        assert_eq!(suggestions[1].label.as_deref(), Some("idle"));
    }

    #[test]
    fn flags_outliers_for_review() {
        let (e, l) = labeled();
        let labeler = AutoLabeler::fit(&e, &l, 2.0);
        let suggestions = labeler.suggest(&[vec![50.0, 50.0]]);
        assert_eq!(suggestions[0].label, None, "far point must not be auto-labeled");
        assert!(suggestions[0].distance > 10.0);
    }

    #[test]
    fn accept_factor_controls_radius() {
        let (e, l) = labeled();
        let strict = AutoLabeler::fit(&e, &l, 0.1);
        let lax = AutoLabeler::fit(&e, &l, 100.0);
        let probe = vec![vec![2.0, 2.0]];
        assert_eq!(strict.suggest(&probe)[0].label, None);
        assert!(lax.suggest(&probe)[0].label.is_some());
    }

    #[test]
    fn suggestion_indices_track_input() {
        let (e, l) = labeled();
        let labeler = AutoLabeler::fit(&e, &l, 2.0);
        let suggestions = labeler.suggest(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![-1.0, -1.0]]);
        assert_eq!(suggestions.iter().map(|s| s.index).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
