#![warn(missing_docs)]

//! Active learning for the embedded sensor ecosystem (paper §4.8).
//!
//! The platform's loop: "(1) train a model on a small, labeled subset of
//! your data, (2) generate semantically meaningful embeddings using an
//! intermediate layer of the trained model, (3) visualize the embeddings
//! … in 2D space using a dimensionality reduction algorithm, and
//! (4) manually or automatically label or remove samples based on their
//! proximity to existing class clusters."
//!
//! * [`embedding::embed`] — step 2: intermediate-layer activations;
//! * [`projection::Pca`] / [`projection::refine_layout`] — step 3: PCA to
//!   2-D plus a t-SNE-style neighbor-embedding refinement;
//! * [`labeling::AutoLabeler`] — step 4: cluster-proximity suggestions
//!   (assign a label, or flag as an outlier to remove).

pub mod embedding;
pub mod labeling;
pub mod projection;

pub use embedding::embed;
pub use labeling::{AutoLabeler, Suggestion};
pub use projection::{refine_layout, Pca};
