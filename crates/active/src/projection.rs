//! Dimensionality reduction to 2-D: PCA plus a t-SNE-style refinement.

use ei_tensor::ops::squared_distance;

/// A 2-component PCA fit by power iteration with deflation.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f32>,
    components: [Vec<f32>; 2],
}

impl Pca {
    /// Fits two principal components on rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows are ragged/zero-length.
    pub fn fit(data: &[Vec<f32>]) -> Pca {
        assert!(!data.is_empty(), "pca needs data");
        let dims = data[0].len();
        assert!(dims > 0 && data.iter().all(|r| r.len() == dims), "ragged rows");
        let n = data.len() as f32;
        let mean: Vec<f32> =
            (0..dims).map(|d| data.iter().map(|r| r[d]).sum::<f32>() / n).collect();
        let centered: Vec<Vec<f32>> =
            data.iter().map(|r| r.iter().zip(&mean).map(|(v, m)| v - m).collect()).collect();
        let first = power_iteration(&centered, None);
        let second = power_iteration(&centered, Some(&first));
        Pca { mean, components: [first, second] }
    }

    /// Projects one point to 2-D.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) on dimension mismatch.
    pub fn transform(&self, point: &[f32]) -> [f32; 2] {
        debug_assert_eq!(point.len(), self.mean.len());
        let centered: Vec<f32> = point.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        [dot(&centered, &self.components[0]), dot(&centered, &self.components[1])]
    }

    /// Projects many points.
    pub fn transform_all(&self, data: &[Vec<f32>]) -> Vec<[f32; 2]> {
        data.iter().map(|r| self.transform(r)).collect()
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dominant covariance eigenvector by power iteration; with `deflate`,
/// finds the next component orthogonal to it.
fn power_iteration(centered: &[Vec<f32>], deflate: Option<&[f32]>) -> Vec<f32> {
    let dims = centered[0].len();
    // deterministic non-degenerate start
    let mut v: Vec<f32> = (0..dims).map(|d| 1.0 + 0.01 * d as f32).collect();
    normalize(&mut v);
    for _ in 0..60 {
        // w = C v computed as X^T (X v) / n
        let mut w = vec![0.0f32; dims];
        for row in centered {
            let proj = dot(row, &v);
            for (wi, &ri) in w.iter_mut().zip(row) {
                *wi += proj * ri;
            }
        }
        if let Some(d) = deflate {
            let along = dot(&w, d);
            for (wi, &di) in w.iter_mut().zip(d) {
                *wi -= along * di;
            }
        }
        let norm = w.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm < 1e-12 {
            // degenerate direction (e.g. rank-1 data): return any unit
            // vector orthogonal to the deflation direction
            let mut fallback = vec![0.0f32; dims];
            fallback[dims - 1] = 1.0;
            if let Some(d) = deflate {
                let along = dot(&fallback, d);
                for (fi, &di) in fallback.iter_mut().zip(d) {
                    *fi -= along * di;
                }
                if fallback.iter().all(|&x| x.abs() < 1e-9) {
                    fallback = vec![0.0; dims];
                    fallback[0] = 1.0;
                }
            }
            normalize(&mut fallback);
            return fallback;
        }
        v = w;
        normalize(&mut v);
    }
    v
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    for x in v {
        *x /= norm;
    }
}

/// t-SNE-style refinement of a 2-D layout: iteratively attracts each
/// point toward its high-dimensional nearest neighbours and repels it from
/// everything nearby in 2-D, starting from (usually) a PCA layout.
///
/// # Panics
///
/// Panics (debug assertion) when `layout` and `embeddings` differ in
/// length.
pub fn refine_layout(
    layout: &[[f32; 2]],
    embeddings: &[Vec<f32>],
    neighbours: usize,
    iterations: usize,
) -> Vec<[f32; 2]> {
    debug_assert_eq!(layout.len(), embeddings.len());
    let n = layout.len();
    if n == 0 {
        return Vec::new();
    }
    let k = neighbours.clamp(1, n.saturating_sub(1).max(1));
    // high-dimensional k nearest neighbours
    let mut knn: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut dists: Vec<(usize, f32)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, squared_distance(&embeddings[i], &embeddings[j])))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"));
        knn.push(dists.into_iter().take(k).map(|(j, _)| j).collect());
    }
    let mut pos: Vec<[f32; 2]> = layout.to_vec();
    let step = 0.1f32;
    for _ in 0..iterations {
        let mut force = vec![[0.0f32; 2]; n];
        for i in 0..n {
            // attraction to high-D neighbours
            for &j in &knn[i] {
                for d in 0..2 {
                    force[i][d] += (pos[j][d] - pos[i][d]) * 0.5;
                }
            }
            // repulsion from close non-neighbours
            for j in 0..n {
                if j == i || knn[i].contains(&j) {
                    continue;
                }
                let dx = pos[i][0] - pos[j][0];
                let dy = pos[i][1] - pos[j][1];
                let d2 = (dx * dx + dy * dy).max(1e-4);
                if d2 < 4.0 {
                    force[i][0] += dx / d2 * 0.2;
                    force[i][1] += dy / d2 * 0.2;
                }
            }
        }
        for i in 0..n {
            pos[i][0] += step * force[i][0];
            pos[i][1] += step * force[i][1];
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f32 * 0.1;
            data.push(vec![10.0 + j, 0.0 + j, 1.0]);
            data.push(vec![-10.0 - j, 0.5 - j, 1.0]);
        }
        data
    }

    #[test]
    fn pca_separates_clusters_on_first_axis() {
        let data = two_clusters();
        let pca = Pca::fit(&data);
        let proj = pca.transform_all(&data);
        // even indices (cluster A) and odd (cluster B) must separate in x
        let a_mean: f32 =
            proj.iter().step_by(2).map(|p| p[0]).sum::<f32>() / (proj.len() / 2) as f32;
        let b_mean: f32 =
            proj.iter().skip(1).step_by(2).map(|p| p[0]).sum::<f32>() / (proj.len() / 2) as f32;
        assert!((a_mean - b_mean).abs() > 10.0, "a {a_mean} b {b_mean}");
    }

    #[test]
    fn pca_components_orthonormal() {
        let pca = Pca::fit(&two_clusters());
        let c0 = &pca.components[0];
        let c1 = &pca.components[1];
        assert!((dot(c0, c0) - 1.0).abs() < 1e-3);
        assert!((dot(c1, c1) - 1.0).abs() < 1e-3);
        assert!(dot(c0, c1).abs() < 1e-2, "components must be orthogonal");
    }

    #[test]
    fn pca_handles_degenerate_rank() {
        // rank-1 data: second component must still be a valid unit vector
        let data: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 0.0]).collect();
        let pca = Pca::fit(&data);
        let norm1: f32 = pca.components[1].iter().map(|x| x * x).sum();
        assert!((norm1 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn refinement_tightens_clusters() {
        let data = two_clusters();
        let pca = Pca::fit(&data);
        let layout = pca.transform_all(&data);
        let refined = refine_layout(&layout, &data, 5, 30);
        assert_eq!(refined.len(), layout.len());
        // same-cluster spread should not blow up; cross-cluster separation kept
        let a_center = centroid(refined.iter().step_by(2));
        let b_center = centroid(refined.iter().skip(1).step_by(2));
        let sep = (a_center[0] - b_center[0]).powi(2) + (a_center[1] - b_center[1]).powi(2);
        assert!(sep > 25.0, "separation {sep}");
    }

    fn centroid<'a>(points: impl Iterator<Item = &'a [f32; 2]>) -> [f32; 2] {
        let pts: Vec<&[f32; 2]> = points.collect();
        let n = pts.len() as f32;
        [pts.iter().map(|p| p[0]).sum::<f32>() / n, pts.iter().map(|p| p[1]).sum::<f32>() / n]
    }

    #[test]
    fn refine_empty_layout() {
        assert!(refine_layout(&[], &[], 3, 5).is_empty());
    }
}
