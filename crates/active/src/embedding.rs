//! Embeddings from an intermediate layer of a trained model.

use ei_nn::{NnError, Sequential};

/// Extracts the activation of layer `layer` (0-based; `None` selects the
/// last layer with parameters before the classifier head — the usual
/// embedding point) for every input.
///
/// # Errors
///
/// Returns [`NnError::InvalidLayer`] when `layer` is out of range, or
/// forward-pass errors for wrongly sized inputs.
pub fn embed(
    model: &Sequential,
    inputs: &[Vec<f32>],
    layer: Option<usize>,
) -> Result<Vec<Vec<f32>>, NnError> {
    let n_layers = model.layers().len();
    let layer = match layer {
        Some(l) => {
            if l >= n_layers {
                return Err(NnError::InvalidLayer {
                    index: l,
                    reason: format!("model has {n_layers} layers"),
                });
            }
            l
        }
        None => default_embedding_layer(model),
    };
    let mut out = Vec::with_capacity(inputs.len());
    for input in inputs {
        let cache = model.forward_cached(input, false, None)?;
        out.push(cache.activations[layer + 1].clone());
    }
    Ok(out)
}

/// The second-to-last parameterized layer, or the last layer if none
/// qualifies — a reasonable "semantic" embedding point.
pub fn default_embedding_layer(model: &Sequential) -> usize {
    let param_layers: Vec<usize> = model
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.weights.is_some())
        .map(|(i, _)| i)
        .collect();
    match param_layers.len() {
        0 => model.layers().len().saturating_sub(1),
        1 => param_layers[0],
        n => param_layers[n - 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};

    fn model() -> Sequential {
        let spec = ModelSpec::new(Dims::new(1, 4, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 6, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        Sequential::build(&spec, 1).unwrap()
    }

    #[test]
    fn default_layer_is_penultimate_parameterized() {
        // parameterized layers are 1 and 2; default embedding = 1
        assert_eq!(default_embedding_layer(&model()), 1);
    }

    #[test]
    fn embeddings_have_layer_width() {
        let m = model();
        let inputs = vec![vec![0.1, 0.2, 0.3, 0.4], vec![0.4, 0.3, 0.2, 0.1]];
        let embs = embed(&m, &inputs, None).unwrap();
        assert_eq!(embs.len(), 2);
        assert!(embs.iter().all(|e| e.len() == 6));
        // explicit layer selection
        let logits = embed(&m, &inputs, Some(2)).unwrap();
        assert!(logits.iter().all(|e| e.len() == 2));
    }

    #[test]
    fn out_of_range_layer_rejected() {
        let m = model();
        assert!(embed(&m, &[vec![0.0; 4]], Some(10)).is_err());
        assert!(embed(&m, &[vec![0.0; 3]], None).is_err());
    }

    #[test]
    fn distinct_inputs_distinct_embeddings() {
        let m = model();
        let embs = embed(&m, &[vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]], None).unwrap();
        assert_ne!(embs[0], embs[1]);
    }
}
