//! The process-wide thread-count knob.

use std::num::NonZeroUsize;

/// Environment variable overriding the thread count.
pub const THREADS_ENV: &str = "EI_THREADS";

/// How many threads parallel operations may use.
///
/// One `Parallelism` value governs every layer: the tuner sweep, DSP
/// feature extraction, the nn kernels and the job scheduler all size
/// their shared [`crate::ParPool`] from it. `1` forces the serial path
/// through the same API — same outputs, no worker threads involved in
/// scoped work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly `threads` threads (clamped to at least one).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads: threads.max(1) }
    }

    /// The serial configuration (`threads == 1`).
    pub fn serial() -> Parallelism {
        Parallelism::new(1)
    }

    /// One thread per available core.
    pub fn available() -> Parallelism {
        let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Parallelism::new(cores)
    }

    /// Reads [`THREADS_ENV`] (`EI_THREADS`); unset, empty or invalid
    /// values fall back to [`Parallelism::available`].
    pub fn from_env() -> Parallelism {
        match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Parallelism::new(n),
                _ => Parallelism::available(),
            },
            Err(_) => Parallelism::available(),
        }
    }

    /// The configured thread count (always at least one).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// `true` when scoped work must run inline on the calling thread.
    pub fn is_serial(self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert!(Parallelism::new(0).is_serial());
    }

    #[test]
    fn serial_is_one_thread() {
        assert!(Parallelism::serial().is_serial());
        assert!(!Parallelism::new(4).is_serial());
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(Parallelism::available().threads() >= 1);
    }
}
