#![warn(missing_docs)]

//! Deterministic parallel execution for the MLOps pipeline: a scoped
//! work-stealing thread pool in the house style of `ei-faults` and
//! `ei-trace` — std-only, dependency-free, observable, cancellable.
//!
//! The paper's EON Tuner evaluates large AutoML search spaces by running
//! many candidate impulses concurrently; DSP feature extraction and the
//! training hot loops are embarrassingly parallel in the same way. This
//! crate is the shared compute substrate those sweeps run on.
//!
//! * [`config`] — the process-wide [`Parallelism`] knob (`EI_THREADS`,
//!   default = available cores, `1` forces the serial path through the
//!   same API).
//! * [`pool`] — the [`ParPool`]: per-worker deques plus a global
//!   injector, idle workers park on a condvar, waiting scopes help run
//!   queued tasks (so nested parallelism cannot deadlock).
//!
//! **Determinism guarantee.** [`ParPool::par_map`],
//! [`ParPool::par_map_result`] and [`ParPool::par_chunks_reduce`] place
//! every result by input index, propagate the *lowest-index* failure, and
//! fold chunk accumulators in chunk order — so their outputs (and the
//! deterministic part of their trace stream) are bitwise-identical to the
//! serial path regardless of thread count or steal order. Scheduling-
//! dependent series (`par.steal`, `par.queue_depth`) go through
//! `ei-trace`'s quiet registry-only path and never touch the record
//! stream.
//!
//! Tasks observe [`ei_faults::CancelToken`]: once a token fires, queued
//! tasks that have not started are skipped (the queue drains without
//! doing work) and fallible maps report [`ParError::Cancelled`].

pub mod config;
pub mod pool;

pub use config::Parallelism;
pub use pool::{ParError, ParPool, Scope};
