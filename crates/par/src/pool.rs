//! The scoped work-stealing pool and its deterministic combinators.
//!
//! Architecture: every worker owns a deque (LIFO for its own pushes,
//! FIFO for thieves) and there is one global injector queue for tasks
//! submitted from outside the pool. Idle workers park on a condvar.
//! A thread waiting for a scope to finish *helps*: it pops queued tasks
//! and runs them inline, so nested `par_map` calls from inside pool
//! tasks cannot deadlock and a `threads = N` pool really does provide
//! `N` concurrent executors (`N - 1` workers plus the scoped caller).

use crate::config::Parallelism;
use ei_faults::CancelToken;
use ei_trace::Tracer;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::convert::Infallible;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A queued unit of work (lifetime-erased by the scope layer).
type Task = Box<dyn FnOnce() + Send>;

/// How long an idle worker sleeps between wakeup re-checks. Workers are
/// notified on every push; the timeout is a belt-and-braces bound, not
/// the scheduling latency.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a waiting scope sleeps when the queue is empty but tasks
/// are still running on workers. Completion notifies the scope condvar,
/// so this too is only a fallback bound.
const SCOPE_WAIT_TIMEOUT: Duration = Duration::from_millis(1);

thread_local! {
    /// `(pool id, worker index)` of the pool thread we are on, if any.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Why a fallible parallel map did not return a full result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError<E> {
    /// The [`CancelToken`] fired before every task ran; queued tasks
    /// were drained without starting.
    Cancelled,
    /// The lowest-index task failure (identical to what the serial loop
    /// would have returned first).
    Task(E),
}

impl<E: std::fmt::Display> std::fmt::Display for ParError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Cancelled => write!(f, "parallel map cancelled"),
            ParError::Task(e) => write!(f, "parallel task failed: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ParError<E> {}

/// What one slot of a parallel map ended as. A slot left at `None`
/// means the task was skipped by cancellation (or never spawned).
enum Slot<R, E> {
    Done(R),
    Failed(E),
    Panicked(Box<dyn Any + Send>),
}

struct PoolInner {
    id: u64,
    deques: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    park_lock: Mutex<()>,
    park_cond: Condvar,
    queued: AtomicUsize,
    steals: AtomicU64,
    shutdown: AtomicBool,
    tracer: Tracer,
}

impl PoolInner {
    /// The calling thread's worker index *in this pool*, if it is one.
    fn own_slot(&self) -> Option<usize> {
        WORKER.with(Cell::get).filter(|(pool_id, _)| *pool_id == self.id).map(|(_, index)| index)
    }

    /// Queues a task: onto the caller's own deque when the caller is a
    /// worker of this pool, otherwise onto the global injector.
    fn push(&self, task: Task) {
        // Count the task *before* it becomes visible in a queue, so a
        // racing `take` can never drive the counter below zero.
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        self.tracer.quiet_gauge("par.queue_depth").set(depth as f64);
        match self.own_slot() {
            Some(w) => lock(&self.deques[w]).push_back(task),
            None => lock(&self.injector).push_back(task),
        }
        let _guard = lock(&self.park_lock);
        self.park_cond.notify_all();
    }

    /// Takes one task: own deque LIFO first, then the injector, then
    /// FIFO-steal from the other workers.
    fn take(&self) -> Option<Task> {
        let own = self.own_slot();
        if let Some(w) = own {
            if let Some(task) = lock(&self.deques[w]).pop_back() {
                return Some(self.took(task));
            }
        }
        if let Some(task) = lock(&self.injector).pop_front() {
            return Some(self.took(task));
        }
        let n = self.deques.len();
        let start = own.map_or(0, |w| w + 1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(task) = lock(&self.deques[victim]).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.tracer.quiet_counter("par.steal").inc();
                return Some(self.took(task));
            }
        }
        None
    }

    fn took(&self, task: Task) -> Task {
        let depth = self.queued.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        self.tracer.quiet_gauge("par.queue_depth").set(depth as f64);
        task
    }
}

fn worker_loop(inner: &Arc<PoolInner>, index: usize) {
    WORKER.with(|slot| slot.set(Some((inner.id, index))));
    loop {
        if let Some(task) = inner.take() {
            // Tasks catch their own panics; this is a last line of
            // defence so no unwind can ever kill a worker.
            let _ = catch_unwind(AssertUnwindSafe(task));
            continue;
        }
        let guard = lock(&inner.park_lock);
        // Drain everything before honouring shutdown so detached tasks
        // queued just before drop still run.
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if inner.queued.load(Ordering::SeqCst) > 0 {
            continue;
        }
        let _ = inner
            .park_cond
            .wait_timeout(guard, PARK_TIMEOUT)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

/// The scoped work-stealing thread pool.
///
/// A `Parallelism::new(n)` pool provides `n` concurrent executors for
/// scoped work: `n - 1` worker threads plus the calling thread, which
/// helps run queued tasks while it waits. A serial pool (`n == 1`) runs
/// all scoped work inline on the caller — same API, bitwise-identical
/// outputs — and keeps a single worker thread for detached tasks
/// ([`ParPool::spawn_detached`], used by the job scheduler).
pub struct ParPool {
    inner: Arc<PoolInner>,
    parallelism: Parallelism,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ParPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParPool")
            .field("threads", &self.parallelism.threads())
            .field("workers", &self.workers.len())
            .finish()
    }
}

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

impl ParPool {
    /// A pool with the given thread budget and no tracing.
    pub fn new(parallelism: Parallelism) -> ParPool {
        ParPool::with_tracer(parallelism, Tracer::disabled())
    }

    /// A pool whose combinators emit `par.*` spans, events and counters
    /// through `tracer`.
    pub fn with_tracer(parallelism: Parallelism, tracer: Tracer) -> ParPool {
        let worker_count = parallelism.threads().saturating_sub(1).max(1);
        let inner = Arc::new(PoolInner {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            deques: (0..worker_count).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park_lock: Mutex::new(()),
            park_cond: Condvar::new(),
            queued: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            tracer,
        });
        let workers = (0..worker_count)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ei-par-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn pool worker")
            })
            .collect();
        ParPool { inner, parallelism, workers }
    }

    /// The process-wide shared pool, sized from [`Parallelism::from_env`]
    /// (`EI_THREADS`) on first use. Layers that want a dedicated or
    /// differently-sized pool construct their own.
    pub fn global() -> &'static ParPool {
        static GLOBAL: OnceLock<ParPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ParPool::new(Parallelism::from_env()))
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.parallelism.threads()
    }

    /// The [`Parallelism`] this pool was built with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Total tasks taken from another worker's deque since creation
    /// (scheduling-dependent; also mirrored on the quiet `par.steal`
    /// counter).
    pub fn steals(&self) -> u64 {
        self.inner.steals.load(Ordering::Relaxed)
    }

    /// Tasks currently queued and not yet started.
    pub fn queue_depth(&self) -> usize {
        self.inner.queued.load(Ordering::SeqCst)
    }

    /// Runs `op` with a [`Scope`]; returns once every spawned task has
    /// finished. A task panic is re-raised here after all tasks finish.
    pub fn scope<'s, R>(&'s self, op: impl FnOnce(&Scope<'s>) -> R) -> R {
        self.scope_inner(None, op)
    }

    /// Like [`ParPool::scope`], but every task observes `cancel`: once
    /// the token fires, queued tasks are drained without starting.
    pub fn scope_with_cancel<'s, R>(
        &'s self,
        cancel: &CancelToken,
        op: impl FnOnce(&Scope<'s>) -> R,
    ) -> R {
        self.scope_inner(Some(cancel.clone()), op)
    }

    fn scope_inner<'s, R>(
        &'s self,
        cancel: Option<CancelToken>,
        op: impl FnOnce(&Scope<'s>) -> R,
    ) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                lock: Mutex::new(()),
                cond: Condvar::new(),
                panic: Mutex::new(None),
                started: AtomicUsize::new(0),
                skipped: AtomicUsize::new(0),
            }),
            cancel,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        scope.wait_pending();
        let task_panic = lock(&scope.state.panic).take();
        match result {
            Ok(value) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Queues a free-standing `'static` task (no scope, no result). The
    /// job scheduler uses this to share the pool instead of spawning a
    /// thread per job. A panicking task is caught and dropped; the
    /// worker survives.
    ///
    /// The submitter's ambient [`ei_trace::context::TraceContext`] (if
    /// any) is captured here and entered on the worker for the task's
    /// duration, so spans the task opens stitch into the submitting
    /// request's causal tree.
    pub fn spawn_detached<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let ctx = ei_trace::context::current();
        self.inner.push(Box::new(move || {
            let _entered = ctx.map(ei_trace::context::TraceContext::enter);
            let _ = catch_unwind(AssertUnwindSafe(f));
        }));
    }

    /// Deterministic order-preserving map: `f` runs once per item (in
    /// parallel on a multi-thread pool) and results land by input index,
    /// so the output is bitwise-identical to `items.iter().map(f)`. If
    /// any task panics, the *lowest-index* panic is re-raised after all
    /// tasks finish.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.par_map_fallible::<T, R, Infallible, _>(None, items, |item| Ok(f(item))) {
            Ok(out) => out,
            Err(ParError::Cancelled) => unreachable!("no cancel token was supplied"),
        }
    }

    /// Fallible deterministic map: on failure returns the error of the
    /// *lowest-index* failing task — exactly the error a serial
    /// short-circuiting loop would have hit first.
    pub fn par_map_result<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        match self.par_map_fallible(None, items, f) {
            Ok(out) => Ok(out),
            Err(ParError::Task(e)) => Err(e),
            Err(ParError::Cancelled) => unreachable!("no cancel token was supplied"),
        }
    }

    /// [`ParPool::par_map_result`] with cooperative cancellation: tasks
    /// not yet started when `cancel` fires are skipped, and the call
    /// reports [`ParError::Cancelled`].
    ///
    /// Every task runs (or is skipped) regardless of other tasks'
    /// failures, mirroring the parallel execution on the serial path, so
    /// the trace stream is identical at any thread count.
    pub fn par_map_fallible<T, R, E, F>(
        &self,
        cancel: Option<&CancelToken>,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, ParError<E>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let n = items.len();
        let span = self.inner.tracer.span_with("par.scope", vec![("tasks", (n as u64).into())]);
        let slots: Vec<Mutex<Option<Slot<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let run_one = |item: &T, slot: &Mutex<Option<Slot<R, E>>>| {
            let outcome = match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(Ok(value)) => Slot::Done(value),
                Ok(Err(error)) => Slot::Failed(error),
                Err(payload) => Slot::Panicked(payload),
            };
            *lock(slot) = Some(outcome);
        };

        if self.parallelism.is_serial() {
            for (item, slot) in items.iter().zip(&slots) {
                if cancel.is_some_and(|c| c.is_cancelled()) {
                    break;
                }
                run_one(item, slot);
            }
        } else {
            self.scope_inner(cancel.cloned(), |scope| {
                for (item, slot) in items.iter().zip(&slots) {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(item, slot));
                }
            });
        }

        let outcomes: Vec<Option<Slot<R, E>>> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner()))
            .collect();
        for (index, outcome) in outcomes.iter().enumerate() {
            let status = match outcome {
                Some(Slot::Done(_)) => "ok",
                Some(Slot::Failed(_)) => "err",
                Some(Slot::Panicked(_)) => "panic",
                None => "skipped",
            };
            span.event(
                "par.task",
                vec![("index", (index as u64).into()), ("status", status.into())],
            );
        }
        self.inner.tracer.counter("par.tasks").add(n as u64);

        let mut out = Vec::with_capacity(n);
        for outcome in outcomes {
            match outcome {
                Some(Slot::Done(value)) => out.push(value),
                Some(Slot::Failed(error)) => return Err(ParError::Task(error)),
                Some(Slot::Panicked(payload)) => resume_unwind(payload),
                None => return Err(ParError::Cancelled),
            }
        }
        Ok(out)
    }

    /// Deterministic chunked map-reduce: `map` runs once per
    /// `chunk_size`-sized slice of `items` (in parallel), and the chunk
    /// accumulators are folded left-to-right in chunk order — identical
    /// to the serial fold whenever `reduce` is associative over the
    /// chunk boundaries. Returns `None` on empty input.
    pub fn par_chunks_reduce<T, A, M, Rd>(
        &self,
        items: &[T],
        chunk_size: usize,
        map: M,
        reduce: Rd,
    ) -> Option<A>
    where
        T: Sync,
        A: Send,
        M: Fn(&[T]) -> A + Sync,
        Rd: Fn(A, A) -> A,
    {
        if items.is_empty() {
            return None;
        }
        let chunks: Vec<&[T]> = items.chunks(chunk_size.max(1)).collect();
        let accumulators = self.par_map(&chunks, |chunk| map(chunk));
        accumulators.into_iter().reduce(reduce)
    }

    fn shut_down(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = lock(&self.inner.park_lock);
            self.inner.park_cond.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        self.shut_down();
    }
}

struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    started: AtomicUsize,
    skipped: AtomicUsize,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A handle for spawning tasks that may borrow from the enclosing
/// stack frame; [`ParPool::scope`] waits for all of them before it
/// returns, which is what makes the borrow sound.
pub struct Scope<'s> {
    pool: &'s ParPool,
    state: Arc<ScopeState>,
    cancel: Option<CancelToken>,
}

impl<'s> Scope<'s> {
    /// Spawns a task. On a serial pool it runs inline immediately; the
    /// semantics (cancellation skip, panic capture) are identical.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 's,
    {
        if self.pool.parallelism.is_serial() {
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.state.skipped.fetch_add(1, Ordering::SeqCst);
                return;
            }
            self.state.started.fetch_add(1, Ordering::SeqCst);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                self.state.record_panic(payload);
            }
            return;
        }
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let cancel = self.cancel.clone();
        let task: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
            // Drop guard: `pending` is decremented (and the waiter woken)
            // even if anything below unwinds, so a scope can never hang.
            struct Complete(Arc<ScopeState>);
            impl Drop for Complete {
                fn drop(&mut self) {
                    if self.0.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                        let _guard = lock(&self.0.lock);
                        self.0.cond.notify_all();
                    }
                }
            }
            let _complete = Complete(Arc::clone(&state));
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                state.skipped.fetch_add(1, Ordering::SeqCst);
            } else {
                state.started.fetch_add(1, Ordering::SeqCst);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    state.record_panic(payload);
                }
            }
        });
        // SAFETY: the lifetime of the boxed closure is erased to 'static
        // so it can sit in the shared queues, but `scope_inner` always
        // waits for `pending == 0` before returning, so everything the
        // task borrows outlives its execution.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.inner.push(task);
    }

    /// Tasks that actually began executing.
    pub fn started(&self) -> usize {
        self.state.started.load(Ordering::SeqCst)
    }

    /// Tasks skipped because the cancel token had fired before they
    /// started.
    pub fn skipped(&self) -> usize {
        self.state.skipped.load(Ordering::SeqCst)
    }

    /// `true` once the scope's cancel token (if any) has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Helps run queued tasks until every task of this scope finished.
    fn wait_pending(&self) {
        while self.state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(task) = self.pool.inner.take() {
                task();
                continue;
            }
            let guard = lock(&self.state.lock);
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            let _ = self
                .state
                .cond
                .wait_timeout(guard, SCOPE_WAIT_TIMEOUT)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_faults::VirtualClock;
    use ei_trace::export::to_jsonl;
    use std::sync::atomic::AtomicU32;

    fn pool(threads: usize) -> ParPool {
        ParPool::new(Parallelism::new(threads))
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got = pool(threads).par_map(&items, |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_result_returns_lowest_index_error() {
        let items: Vec<u32> = (0..32).collect();
        let p = pool(4);
        let got: Result<Vec<u32>, String> =
            p.par_map_result(
                &items,
                |x| {
                    if *x % 10 == 3 {
                        Err(format!("bad {x}"))
                    } else {
                        Ok(*x)
                    }
                },
            );
        assert_eq!(got, Err("bad 3".to_string()));
    }

    #[test]
    fn lowest_index_panic_wins_and_pool_survives() {
        let p = pool(4);
        let items: Vec<u32> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.par_map(&items, |x| {
                if *x == 2 || *x == 11 {
                    panic!("task {x} exploded");
                }
                *x
            })
        }));
        let payload = result.expect_err("map should panic");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(message, "task 2 exploded");
        // The pool is still fully usable afterwards.
        assert_eq!(p.par_map(&[1u32, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn cancelled_token_skips_unstarted_tasks() {
        for threads in [1, 4] {
            let p = pool(threads);
            let cancel = CancelToken::new();
            cancel.cancel();
            let ran = AtomicU32::new(0);
            let items: Vec<u32> = (0..8).collect();
            let got: Result<Vec<u32>, ParError<String>> =
                p.par_map_fallible(Some(&cancel), &items, |x| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(*x)
                });
            assert_eq!(got, Err(ParError::Cancelled), "threads={threads}");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn cancel_mid_sweep_drains_the_queue() {
        let p = pool(2);
        let cancel = CancelToken::new();
        let started = AtomicU32::new(0);
        let items: Vec<u32> = (0..64).collect();
        let cancel_ref = &cancel;
        let started_ref = &started;
        let got: Result<Vec<u32>, ParError<String>> =
            p.par_map_fallible(Some(&cancel), &items, move |x| {
                started_ref.fetch_add(1, Ordering::SeqCst);
                if *x == 0 {
                    cancel_ref.cancel();
                }
                Ok(*x)
            });
        assert_eq!(got, Err(ParError::Cancelled));
        let started = started.load(Ordering::SeqCst);
        assert!(started < 64, "cancellation should stop new tasks, started={started}");
    }

    #[test]
    fn par_chunks_reduce_matches_serial_fold() {
        let items: Vec<u64> = (1..=1000).collect();
        let expected: u64 = items.iter().sum();
        for threads in [1, 4] {
            let got = pool(threads).par_chunks_reduce(
                &items,
                64,
                |chunk| chunk.iter().sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(got, Some(expected), "threads={threads}");
        }
        let empty: Option<u64> =
            pool(2).par_chunks_reduce(&[], 8, |c: &[u64]| c.iter().sum(), |a, b| a + b);
        assert_eq!(empty, None);
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let p = pool(2);
        let rows: Vec<u64> = (0..8).collect();
        let got = p.par_map(&rows, |row| {
            let cols: Vec<u64> = (0..8).collect();
            p.par_map(&cols, |col| row * 10 + col).iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|row| (0..8).map(|c| row * 10 + c).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn scope_runs_borrowing_tasks() {
        let p = pool(4);
        let mut results = vec![0u32; 16];
        p.scope(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.spawn(move || *slot = (i * 2) as u32);
            }
        });
        let expected: Vec<u32> = (0..16).map(|i| i * 2).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn detached_tasks_run_even_on_a_serial_pool() {
        for threads in [1, 4] {
            let p = pool(threads);
            let done = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&done);
            p.spawn_detached(move || flag.store(true, Ordering::SeqCst));
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !done.load(Ordering::SeqCst) {
                assert!(std::time::Instant::now() < deadline, "detached task never ran");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn detached_panic_does_not_kill_the_worker() {
        let p = pool(1);
        p.spawn_detached(|| panic!("detached boom"));
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        p.spawn_detached(move || flag.store(true, Ordering::SeqCst));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !done.load(Ordering::SeqCst) {
            assert!(std::time::Instant::now() < deadline, "worker died after panic");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn trace_stream_is_identical_across_thread_counts() {
        let streams: Vec<String> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let clock = VirtualClock::shared();
                let (tracer, collector) = Tracer::collecting(clock);
                let p = ParPool::with_tracer(Parallelism::new(threads), tracer);
                let items: Vec<u64> = (0..32).collect();
                let got = p.par_map(&items, |x| x + 1);
                assert_eq!(got.len(), 32);
                to_jsonl(&collector.records())
            })
            .collect();
        assert_eq!(streams[0], streams[1], "trace stream must not depend on thread count");
    }

    #[test]
    fn quiet_series_live_in_registry_not_stream() {
        let clock = VirtualClock::shared();
        let (tracer, collector) = Tracer::collecting(clock);
        let p = ParPool::with_tracer(Parallelism::new(4), tracer.clone());
        let items: Vec<u64> = (0..64).collect();
        p.par_map(&items, |x| x * 3);
        let snapshot = tracer.metrics_snapshot();
        assert_eq!(
            snapshot.get("par.queue_depth"),
            Some(&ei_trace::MetricValue::Gauge(0.0)),
            "queue must be drained"
        );
        assert_eq!(snapshot.get("par.tasks"), Some(&ei_trace::MetricValue::Counter(64)));
        for record in collector.records() {
            let name = record.name();
            assert!(
                name != "par.steal" && name != "par.queue_depth",
                "scheduling-dependent series leaked into the stream: {name}"
            );
        }
    }

    /// Satellite: N producers × M maps with pseudo-random panics — every
    /// panicking map is isolated to its caller and the pool survives.
    #[test]
    fn stress_random_panics_are_isolated_and_pool_survives() {
        let p = pool(4);
        let pool_ref = &p;
        std::thread::scope(|s| {
            for producer in 0..4u64 {
                s.spawn(move || {
                    for round in 0..25u64 {
                        // xorshift-style mix: deterministic, no rand dep.
                        let mix = |i: u64| {
                            let mut v = producer
                                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                                .wrapping_add(i);
                            v ^= v >> 30;
                            v = v.wrapping_mul(0x94d0_49bb_1331_11eb);
                            v ^ (v >> 31)
                        };
                        let items: Vec<u64> = (0..16).map(mix).collect();
                        let should_panic = items.iter().any(|v| v % 7 == 0);
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            pool_ref.par_map(&items, |v| {
                                if v % 7 == 0 {
                                    panic!("poisoned {v}");
                                }
                                v.wrapping_mul(2)
                            })
                        }));
                        match result {
                            Ok(out) => {
                                assert!(!should_panic);
                                let expected: Vec<u64> =
                                    items.iter().map(|v| v.wrapping_mul(2)).collect();
                                assert_eq!(out, expected);
                            }
                            Err(_) => assert!(should_panic),
                        }
                    }
                });
            }
        });
        // After the storm the pool still computes correctly.
        let items: Vec<u64> = (0..32).collect();
        let expected: Vec<u64> = items.iter().map(|x| x + 7).collect();
        assert_eq!(p.par_map(&items, |x| x + 7), expected);
    }

    #[test]
    fn serial_pool_runs_scoped_work_inline() {
        let p = pool(1);
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..8).collect();
        let threads = p.par_map(&items, |_| std::thread::current().id());
        assert!(threads.iter().all(|id| *id == caller));
    }

    #[test]
    fn global_pool_is_shared_and_alive() {
        let a = ParPool::global();
        let b = ParPool::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.par_map(&[1u32, 2, 3], |x| x * 2), vec![2, 4, 6]);
    }
}
