//! The data explorer: dataset health checks and outlier surfacing.
//!
//! The paper's Oura case study (§8.1) credits "integrated analysis tools
//! that enable domain experts to make design decisions" and flags
//! "incomplete, noisy, and inconsistent data" as the real-world bottleneck.
//! This module is that analysis layer: per-class signal statistics,
//! length-consistency checks, class-balance warnings, and z-score outlier
//! candidates for the cleaning loop (§4.8).

use crate::dataset::Dataset;
use crate::sample::Sample;
use std::collections::BTreeMap;

/// Aggregate statistics of one sample's values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    /// Mean value.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Root mean square.
    pub rms: f32,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
}

impl SampleStats {
    /// Computes statistics for a value buffer (zeros for an empty buffer).
    pub fn of(values: &[f32]) -> SampleStats {
        if values.is_empty() {
            return SampleStats::default();
        }
        let n = values.len() as f32;
        let mean = values.iter().sum::<f32>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let rms = (values.iter().map(|v| v * v).sum::<f32>() / n).sqrt();
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        SampleStats { mean, std: var.sqrt(), rms, min, max }
    }
}

/// Per-class aggregate over sample-level RMS values.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProfile {
    /// Class label.
    pub label: String,
    /// Sample count.
    pub count: usize,
    /// Mean of per-sample RMS.
    pub rms_mean: f32,
    /// Standard deviation of per-sample RMS.
    pub rms_std: f32,
    /// Distinct sample lengths observed (should usually be one).
    pub lengths: Vec<usize>,
}

/// A sample flagged for review.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierCandidate {
    /// Sample id.
    pub id: u64,
    /// Class label.
    pub label: String,
    /// Robust z-score: deviation of the sample's RMS from the class median
    /// in units of `1.4826 * MAD` (median absolute deviation). Robust
    /// scoring avoids the masking effect where one huge outlier inflates
    /// the standard deviation and hides the others.
    pub z_score: f32,
}

/// Median of a non-empty slice (helper).
fn median(values: &mut [f32]) -> f32 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Dataset health issues the explorer surfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum DataWarning {
    /// One class has far fewer samples than the largest class.
    ClassImbalance {
        /// Underrepresented label.
        label: String,
        /// Its sample count.
        count: usize,
        /// The largest class's count.
        largest: usize,
    },
    /// Samples of one class have inconsistent lengths.
    InconsistentLengths {
        /// Affected label.
        label: String,
        /// The lengths observed.
        lengths: Vec<usize>,
    },
    /// Unlabeled samples present (blockers for supervised training).
    UnlabeledSamples {
        /// How many.
        count: usize,
    },
}

/// The explorer's full report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerReport {
    /// Per-class profiles, sorted by label.
    pub classes: Vec<ClassProfile>,
    /// Samples whose RMS deviates beyond the z-score threshold.
    pub outliers: Vec<OutlierCandidate>,
    /// Health warnings.
    pub warnings: Vec<DataWarning>,
}

/// Analyzes a dataset: class profiles, outlier candidates (robust |z| >
/// `z_threshold` on per-sample RMS within each class) and health warnings.
pub fn explore(dataset: &Dataset, z_threshold: f32) -> ExplorerReport {
    // group labeled samples by class
    let mut groups: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
    let mut unlabeled = 0usize;
    for sample in dataset.iter() {
        match sample.label() {
            Some(l) => groups.entry(l.to_string()).or_default().push(sample),
            None => unlabeled += 1,
        }
    }

    let mut classes = Vec::with_capacity(groups.len());
    let mut outliers = Vec::new();
    for (label, samples) in &groups {
        let rms: Vec<f32> = samples.iter().map(|s| SampleStats::of(s.values()).rms).collect();
        let n = rms.len() as f32;
        let rms_mean = rms.iter().sum::<f32>() / n;
        let rms_std = (rms.iter().map(|r| (r - rms_mean).powi(2)).sum::<f32>() / n).sqrt();
        let mut lengths: Vec<usize> = samples.iter().map(|s| s.len()).collect();
        lengths.sort_unstable();
        lengths.dedup();
        // robust z-scores: median/MAD resists the masking effect
        let med = median(&mut rms.clone());
        let mut deviations: Vec<f32> = rms.iter().map(|r| (r - med).abs()).collect();
        let mad = median(&mut deviations);
        let scale = 1.4826 * mad;
        if scale > 1e-9 {
            for (sample, &r) in samples.iter().zip(&rms) {
                let z = (r - med) / scale;
                if z.abs() > z_threshold {
                    outliers.push(OutlierCandidate {
                        id: sample.id(),
                        label: label.clone(),
                        z_score: z,
                    });
                }
            }
        }
        classes.push(ClassProfile {
            label: label.clone(),
            count: samples.len(),
            rms_mean,
            rms_std,
            lengths,
        });
    }
    outliers
        .sort_by(|a, b| b.z_score.abs().partial_cmp(&a.z_score.abs()).expect("finite z-scores"));

    let mut warnings = Vec::new();
    if unlabeled > 0 {
        warnings.push(DataWarning::UnlabeledSamples { count: unlabeled });
    }
    let largest = classes.iter().map(|c| c.count).max().unwrap_or(0);
    for c in &classes {
        if largest >= 4 && c.count * 3 < largest {
            warnings.push(DataWarning::ClassImbalance {
                label: c.label.clone(),
                count: c.count,
                largest,
            });
        }
        if c.lengths.len() > 1 {
            warnings.push(DataWarning::InconsistentLengths {
                label: c.label.clone(),
                lengths: c.lengths.clone(),
            });
        }
    }
    ExplorerReport { classes, outliers, warnings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SensorKind;

    fn sample(values: Vec<f32>, label: &str) -> Sample {
        Sample::new(0, values, SensorKind::Other).with_label(label)
    }

    #[test]
    fn sample_stats_known_values() {
        let s = SampleStats::of(&[3.0, -3.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 3.0);
        assert_eq!(s.rms, 3.0);
        assert_eq!((s.min, s.max), (-3.0, 3.0));
        assert_eq!(SampleStats::of(&[]), SampleStats::default());
    }

    #[test]
    fn healthy_dataset_has_no_warnings() {
        let mut ds = Dataset::new("healthy");
        for i in 0..10 {
            let v = 0.5 + (i % 3) as f32 * 0.01;
            ds.add(sample(vec![v; 20], "a"));
            ds.add(sample(vec![-v; 20], "b"));
        }
        let report = explore(&ds, 3.0);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert_eq!(report.classes.len(), 2);
        assert!(report.outliers.is_empty());
        assert_eq!(report.classes[0].lengths, vec![20]);
    }

    #[test]
    fn detects_rms_outlier() {
        let mut ds = Dataset::new("outlier");
        for i in 0..20 {
            let v = 0.5 + (i % 5) as f32 * 0.02;
            ds.add(sample(vec![v; 10], "a"));
        }
        let bad_id = ds.add(sample(vec![50.0; 10], "a")); // wildly loud sample
        let report = explore(&ds, 3.0);
        assert_eq!(report.outliers.len(), 1);
        assert_eq!(report.outliers[0].id, bad_id);
        assert!(report.outliers[0].z_score > 3.0);
    }

    #[test]
    fn warns_on_imbalance_and_lengths_and_unlabeled() {
        let mut ds = Dataset::new("messy");
        for _ in 0..12 {
            ds.add(sample(vec![1.0; 10], "big"));
        }
        ds.add(sample(vec![1.0; 10], "small"));
        ds.add(sample(vec![1.0; 7], "big")); // wrong length
        ds.add(Sample::new(0, vec![0.0; 10], SensorKind::Other)); // unlabeled
        let report = explore(&ds, 3.0);
        assert!(report
            .warnings
            .iter()
            .any(|w| matches!(w, DataWarning::ClassImbalance { label, .. } if label == "small")));
        assert!(report.warnings.iter().any(
            |w| matches!(w, DataWarning::InconsistentLengths { label, .. } if label == "big")
        ));
        assert!(report
            .warnings
            .iter()
            .any(|w| matches!(w, DataWarning::UnlabeledSamples { count: 1 })));
    }

    #[test]
    fn outliers_sorted_by_severity() {
        let mut ds = Dataset::new("sorted");
        for i in 0..30 {
            let v = 1.0 + (i % 4) as f32 * 0.01;
            ds.add(sample(vec![v; 10], "a"));
        }
        ds.add(sample(vec![5.0; 10], "a"));
        ds.add(sample(vec![20.0; 10], "a"));
        let report = explore(&ds, 5.0);
        assert_eq!(report.outliers.len(), 2, "{:?}", report.outliers);
        assert!(report.outliers[0].z_score.abs() >= report.outliers[1].z_score.abs());
    }
}
