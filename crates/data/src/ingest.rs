//! File-format ingestion: CSV, JSON acquisition payloads, PCM16 WAV.
//!
//! The platform "can accept data stored in several file formats: CSV,
//! CBOR, JSON, WAV, JPG, or PNG" (paper §4.1). These parsers cover the
//! text and audio paths; image ingestion arrives as raw pixel buffers via
//! the synthetic generators or the API layer.

use crate::sample::{Sample, SensorKind};
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Parses CSV with a header row into one sample per numeric column set.
///
/// Layout: one row per time step; all columns numeric. Returns the values
/// interleaved row-major (matching the inertial `axes` convention).
///
/// # Errors
///
/// Returns [`DataError::ParseError`] for an empty file, ragged rows, or
/// non-numeric / non-finite cells (`NaN` and `inf` would silently poison
/// every downstream DSP and training stage, so they are rejected at the
/// door). CRLF line endings are accepted.
///
/// # Example
///
/// ```
/// use ei_data::ingest::parse_csv;
///
/// # fn main() -> Result<(), ei_data::DataError> {
/// let (names, values) = parse_csv("ax,ay,az\n0.1,0.2,0.3\n0.4,0.5,0.6\n")?;
/// assert_eq!(names, vec!["ax", "ay", "az"]);
/// assert_eq!(values, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
/// # Ok(())
/// # }
/// ```
pub fn parse_csv(text: &str) -> Result<(Vec<String>, Vec<f32>)> {
    let err = |reason: String| DataError::ParseError { format: "csv", reason };
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| err("empty file".into()))?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.is_empty() || names.iter().any(String::is_empty) {
        return Err(err("invalid header".into()));
    }
    let mut values = Vec::new();
    for (row_idx, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != names.len() {
            return Err(err(format!(
                "row {} has {} cells, header has {}",
                row_idx + 1,
                cells.len(),
                names.len()
            )));
        }
        for cell in cells {
            let v = cell
                .parse::<f32>()
                .map_err(|_| err(format!("non-numeric cell {cell:?} in row {}", row_idx + 1)))?;
            if !v.is_finite() {
                return Err(err(format!("non-finite cell {cell:?} in row {}", row_idx + 1)));
            }
            values.push(v);
        }
    }
    if values.is_empty() {
        return Err(err("no data rows".into()));
    }
    Ok((names, values))
}

/// The JSON acquisition payload the ingestion API accepts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionPayload {
    /// Flattened sensor values.
    pub values: Vec<f32>,
    /// Sampling interval in milliseconds.
    pub interval_ms: f32,
    /// Sensor description, e.g. `"audio"` or `"accelerometer"`.
    pub sensor: String,
    /// Optional label.
    #[serde(default)]
    pub label: Option<String>,
}

/// Parses a JSON acquisition payload into a [`Sample`].
///
/// # Errors
///
/// Returns [`DataError::ParseError`] for malformed JSON, an empty value
/// array, non-finite values, or a non-positive interval.
pub fn parse_json(text: &str, id: u64) -> Result<Sample> {
    let err = |reason: String| DataError::ParseError { format: "json", reason };
    let payload: AcquisitionPayload = serde_json::from_str(text).map_err(|e| err(e.to_string()))?;
    if payload.values.is_empty() {
        return Err(err("values array is empty".into()));
    }
    if let Some(v) = payload.values.iter().find(|v| !v.is_finite()) {
        return Err(err(format!("non-finite value {v} in values array")));
    }
    if payload.interval_ms.is_nan() || payload.interval_ms <= 0.0 {
        return Err(err(format!("interval_ms {} must be positive", payload.interval_ms)));
    }
    let sensor = match payload.sensor.as_str() {
        "audio" | "microphone" => SensorKind::Audio,
        "camera" | "image" => SensorKind::Image,
        "accelerometer" | "imu" | "inertial" => SensorKind::Inertial,
        _ => SensorKind::Other,
    };
    let rate = (1000.0 / payload.interval_ms).round() as u32;
    let mut sample = Sample::new(id, payload.values, sensor).with_sample_rate(rate);
    if let Some(label) = payload.label {
        sample = sample.with_label(&label);
    }
    Ok(sample)
}

/// Parses a mono 16-bit PCM WAV file into `(sample_rate_hz, samples)` with
/// samples normalized to `[-1, 1]`.
///
/// # Errors
///
/// Returns [`DataError::ParseError`] for truncated files, non-PCM
/// encodings, or unsupported channel/bit configurations.
pub fn parse_wav(data: &[u8]) -> Result<(u32, Vec<f32>)> {
    let err = |reason: String| DataError::ParseError { format: "wav", reason };
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 12 {
        return Err(err("file shorter than riff header".into()));
    }
    let riff = buf.copy_to_bytes(4);
    if &riff[..] != b"RIFF" {
        return Err(err("missing RIFF magic".into()));
    }
    let _file_len = buf.get_u32_le();
    let wave = buf.copy_to_bytes(4);
    if &wave[..] != b"WAVE" {
        return Err(err("missing WAVE magic".into()));
    }
    let mut sample_rate = 0u32;
    let mut bits = 0u16;
    let mut channels = 0u16;
    let mut pcm_data: Option<Bytes> = None;
    while buf.remaining() >= 8 {
        let chunk_id = buf.copy_to_bytes(4);
        let chunk_len = buf.get_u32_le() as usize;
        if buf.remaining() < chunk_len {
            return Err(err(format!("chunk {chunk_id:?} truncated")));
        }
        let chunk = buf.copy_to_bytes(chunk_len);
        match &chunk_id[..] {
            b"fmt " => {
                if chunk.len() < 16 {
                    return Err(err("fmt chunk too short".into()));
                }
                let mut fmt = chunk;
                let audio_format = fmt.get_u16_le();
                if audio_format != 1 {
                    return Err(err(format!("unsupported audio format {audio_format} (want PCM)")));
                }
                channels = fmt.get_u16_le();
                sample_rate = fmt.get_u32_le();
                let _byte_rate = fmt.get_u32_le();
                let _block_align = fmt.get_u16_le();
                bits = fmt.get_u16_le();
            }
            b"data" => pcm_data = Some(chunk),
            _ => {} // skip LIST/INFO etc.
        }
        // chunks are word-aligned
        if chunk_len % 2 == 1 && buf.remaining() > 0 {
            buf.advance(1);
        }
    }
    let pcm = pcm_data.ok_or_else(|| err("no data chunk".into()))?;
    if channels != 1 {
        return Err(err(format!("{channels} channels unsupported (want mono)")));
    }
    if bits != 16 {
        return Err(err(format!("{bits}-bit samples unsupported (want 16)")));
    }
    if sample_rate == 0 {
        return Err(err("fmt chunk missing or zero sample rate".into()));
    }
    let mut samples = Vec::with_capacity(pcm.len() / 2);
    let mut pcm = pcm;
    while pcm.remaining() >= 2 {
        samples.push(pcm.get_i16_le() as f32 / 32768.0);
    }
    Ok((sample_rate, samples))
}

/// Serializes samples in `[-1, 1]` as a mono 16-bit PCM WAV file.
///
/// The inverse of [`parse_wav`] (modulo int16 rounding).
pub fn to_wav_bytes(sample_rate_hz: u32, samples: &[f32]) -> Vec<u8> {
    let data_len = samples.len() * 2;
    let mut out = BytesMut::with_capacity(44 + data_len);
    out.put_slice(b"RIFF");
    out.put_u32_le(36 + data_len as u32);
    out.put_slice(b"WAVE");
    out.put_slice(b"fmt ");
    out.put_u32_le(16);
    out.put_u16_le(1); // PCM
    out.put_u16_le(1); // mono
    out.put_u32_le(sample_rate_hz);
    out.put_u32_le(sample_rate_hz * 2);
    out.put_u16_le(2);
    out.put_u16_le(16);
    out.put_slice(b"data");
    out.put_u32_le(data_len as u32);
    for &s in samples {
        out.put_i16_le((s.clamp(-1.0, 1.0) * 32767.0).round() as i16);
    }
    out.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn csv_happy_path() {
        let (names, values) = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(values, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn csv_rejects_bad_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b\n1\n").is_err());
        assert!(parse_csv("a,b\n1,x\n").is_err());
        assert!(parse_csv("a,b\n").is_err());
    }

    #[test]
    fn csv_rejects_ragged_rows_with_a_parse_error() {
        for text in ["a,b\n1,2\n3\n", "a,b\n1,2,3\n", "a,b,c\n1,2\n"] {
            assert!(
                matches!(parse_csv(text), Err(DataError::ParseError { format: "csv", .. })),
                "ragged input {text:?} must be a csv parse error"
            );
        }
    }

    #[test]
    fn csv_rejects_non_finite_cells() {
        for cell in ["NaN", "nan", "inf", "-inf", "infinity"] {
            let text = format!("a,b\n1,{cell}\n");
            assert!(
                matches!(parse_csv(&text), Err(DataError::ParseError { format: "csv", .. })),
                "{cell} must be rejected"
            );
        }
    }

    #[test]
    fn csv_accepts_crlf_line_endings() {
        let (names, values) = parse_csv("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(values, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn json_happy_path() {
        let text = r#"{"values": [1.0, 2.0], "interval_ms": 10.0, "sensor": "accelerometer", "label": "idle"}"#;
        let s = parse_json(text, 5).unwrap();
        assert_eq!(s.sensor(), SensorKind::Inertial);
        assert_eq!(s.label(), Some("idle"));
        assert_eq!(s.sample_rate_hz(), Some(100));
    }

    #[test]
    fn json_rejects_bad_payloads() {
        assert!(parse_json("not json", 0).is_err());
        assert!(parse_json(r#"{"values": [], "interval_ms": 1.0, "sensor": "audio"}"#, 0).is_err());
        assert!(
            parse_json(r#"{"values": [1.0], "interval_ms": 0.0, "sensor": "audio"}"#, 0).is_err()
        );
    }

    #[test]
    fn json_rejects_non_finite_values() {
        // serde_json itself refuses bare NaN/Infinity tokens, but huge
        // literals overflow f32 to +inf and must still be rejected
        let overflow = r#"{"values": [1e39], "interval_ms": 1.0, "sensor": "audio"}"#;
        assert!(matches!(
            parse_json(overflow, 0),
            Err(DataError::ParseError { format: "json", .. })
        ));
        let bare_nan = r#"{"values": [NaN], "interval_ms": 1.0, "sensor": "audio"}"#;
        assert!(parse_json(bare_nan, 0).is_err());
    }

    #[test]
    fn json_sensor_mapping() {
        for (name, kind) in [
            ("audio", SensorKind::Audio),
            ("camera", SensorKind::Image),
            ("imu", SensorKind::Inertial),
            ("magnetometer", SensorKind::Other),
        ] {
            let text = format!(r#"{{"values": [1.0], "interval_ms": 1.0, "sensor": "{name}"}}"#);
            assert_eq!(parse_json(&text, 0).unwrap().sensor(), kind, "{name}");
        }
    }

    #[test]
    fn wav_round_trip() {
        let samples: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.05).sin() * 0.8).collect();
        let bytes = to_wav_bytes(16_000, &samples);
        let (rate, decoded) = parse_wav(&bytes).unwrap();
        assert_eq!(rate, 16_000);
        assert_eq!(decoded.len(), samples.len());
        for (a, b) in samples.iter().zip(&decoded) {
            assert!((a - b).abs() < 2.5 / 32768.0, "{a} vs {b}");
        }
    }

    #[test]
    fn wav_rejects_garbage() {
        assert!(parse_wav(b"").is_err());
        assert!(parse_wav(b"RIFFxxxxWAVE").is_err()); // no chunks
        assert!(parse_wav(b"JUNKxxxxWAVE1234").is_err());
        // stereo rejected
        let mut bytes = to_wav_bytes(8000, &[0.0; 4]);
        bytes[22] = 2; // channels
        assert!(parse_wav(&bytes).is_err());
    }

    #[test]
    fn wav_truncations_return_parse_errors_not_panics() {
        let full = to_wav_bytes(16_000, &[0.1, -0.2, 0.3, -0.4]);
        // every prefix of a valid file must fail cleanly or parse fully
        for len in 0..full.len() {
            match parse_wav(&full[..len]) {
                Err(DataError::ParseError { format: "wav", .. }) => {}
                Err(other) => panic!("prefix {len}: wrong error {other:?}"),
                // a prefix that still contains fmt + a shorter data chunk
                // cannot occur: the data chunk length would overrun
                Ok(_) => panic!("prefix {len}: truncated file must not parse"),
            }
        }
        // header cut mid-magic
        assert!(matches!(
            parse_wav(b"RIFF\x24\x00\x00\x00WA"),
            Err(DataError::ParseError { format: "wav", .. })
        ));
    }

    #[test]
    fn wav_rejects_non_pcm() {
        let mut bytes = to_wav_bytes(8000, &[0.0; 4]);
        bytes[20] = 3; // IEEE float format tag
        assert!(parse_wav(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_wav_round_trip(
            rate in 8000u32..48_000,
            samples in proptest::collection::vec(-1.0f32..1.0, 1..300)
        ) {
            let bytes = to_wav_bytes(rate, &samples);
            let (r, decoded) = parse_wav(&bytes).unwrap();
            prop_assert_eq!(r, rate);
            prop_assert_eq!(decoded.len(), samples.len());
            for (a, b) in samples.iter().zip(&decoded) {
                prop_assert!((a - b).abs() <= 2.5 / 32768.0);
            }
        }

        #[test]
        fn prop_csv_round_trip(rows in 1usize..20, cols in 1usize..6) {
            let header: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
            let mut text = header.join(",");
            text.push('\n');
            for r in 0..rows {
                let row: Vec<String> =
                    (0..cols).map(|c| format!("{}", (r * cols + c) as f32 * 0.5)).collect();
                text.push_str(&row.join(","));
                text.push('\n');
            }
            let (names, values) = parse_csv(&text).unwrap();
            prop_assert_eq!(names.len(), cols);
            prop_assert_eq!(values.len(), rows * cols);
        }
    }
}
