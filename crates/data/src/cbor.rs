//! Minimal CBOR (RFC 8949) decoding for acquisition payloads.
//!
//! The ingestion service accepts CBOR alongside JSON (paper §4.1) because
//! battery-powered devices prefer the compact binary framing. This module
//! implements the subset those payloads use — unsigned/negative integers,
//! floats (16/32/64-bit), text strings, arrays and maps — plus an encoder
//! for the same subset so device firmware (and our tests) can produce
//! payloads.

use crate::sample::{Sample, SensorKind};
use crate::{DataError, Result};

/// A decoded CBOR value (the subset acquisition payloads use).
#[derive(Debug, Clone, PartialEq)]
pub enum CborValue {
    /// Any integer (negative values use CBOR major type 1).
    Int(i64),
    /// Any float width, widened to f64.
    Float(f64),
    /// A UTF-8 text string.
    Text(String),
    /// An array of values.
    Array(Vec<CborValue>),
    /// A map with text keys (non-text keys are rejected).
    Map(Vec<(String, CborValue)>),
    /// Booleans/null (major type 7 simple values).
    Bool(bool),
    /// CBOR `null`.
    Null,
}

impl CborValue {
    /// Numeric view of an `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            CborValue::Int(i) => Some(*i as f64),
            CborValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Looks a key up in a `Map`.
    pub fn get(&self, key: &str) -> Option<&CborValue> {
        match self {
            CborValue::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn err(reason: impl Into<String>) -> DataError {
    DataError::ParseError { format: "cbor", reason: reason.into() }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8> {
        let b = *self.data.get(self.pos).ok_or_else(|| err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(err("unexpected end of input"));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads the length/value argument following an initial byte.
    fn argument(&mut self, info: u8) -> Result<u64> {
        match info {
            0..=23 => Ok(info as u64),
            24 => Ok(self.byte()? as u64),
            25 => {
                let b = self.take(2)?;
                Ok(u16::from_be_bytes([b[0], b[1]]) as u64)
            }
            26 => {
                let b = self.take(4)?;
                Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as u64)
            }
            27 => {
                let b = self.take(8)?;
                Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
            }
            other => Err(err(format!("unsupported additional info {other}"))),
        }
    }

    fn value(&mut self, depth: usize) -> Result<CborValue> {
        if depth > 32 {
            return Err(err("nesting too deep"));
        }
        let initial = self.byte()?;
        let major = initial >> 5;
        let info = initial & 0x1f;
        match major {
            0 => {
                let v = self.argument(info)?;
                i64::try_from(v).map(CborValue::Int).map_err(|_| err("integer overflow"))
            }
            1 => {
                let v = self.argument(info)?;
                let neg = -1i64 - i64::try_from(v).map_err(|_| err("integer overflow"))?;
                Ok(CborValue::Int(neg))
            }
            3 => {
                let len = self.argument(info)? as usize;
                let bytes = self.take(len)?;
                String::from_utf8(bytes.to_vec())
                    .map(CborValue::Text)
                    .map_err(|_| err("invalid utf-8 text"))
            }
            4 => {
                let len = self.argument(info)? as usize;
                if len > self.data.len() {
                    return Err(err("array length exceeds input"));
                }
                let mut items = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Ok(CborValue::Array(items))
            }
            5 => {
                let len = self.argument(info)? as usize;
                if len > self.data.len() {
                    return Err(err("map length exceeds input"));
                }
                let mut entries = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    let key = match self.value(depth + 1)? {
                        CborValue::Text(t) => t,
                        other => return Err(err(format!("non-text map key {other:?}"))),
                    };
                    entries.push((key, self.value(depth + 1)?));
                }
                Ok(CborValue::Map(entries))
            }
            7 => match info {
                20 => Ok(CborValue::Bool(false)),
                21 => Ok(CborValue::Bool(true)),
                22 => Ok(CborValue::Null),
                25 => {
                    let b = self.take(2)?;
                    Ok(CborValue::Float(half_to_f64(u16::from_be_bytes([b[0], b[1]]))))
                }
                26 => {
                    let b = self.take(4)?;
                    Ok(CborValue::Float(f32::from_be_bytes([b[0], b[1], b[2], b[3]]) as f64))
                }
                27 => {
                    let b = self.take(8)?;
                    Ok(CborValue::Float(f64::from_be_bytes(b.try_into().expect("8 bytes"))))
                }
                other => Err(err(format!("unsupported simple value {other}"))),
            },
            other => Err(err(format!("unsupported major type {other}"))),
        }
    }
}

/// Decodes an IEEE half-precision float.
fn half_to_f64(h: u16) -> f64 {
    let sign = if h & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = ((h >> 10) & 0x1f) as i32;
    let mant = (h & 0x3ff) as f64;
    sign * match exp {
        0 => mant * 2f64.powi(-24),
        31 => {
            if mant == 0.0 {
                f64::INFINITY
            } else {
                f64::NAN
            }
        }
        _ => (1.0 + mant / 1024.0) * 2f64.powi(exp - 15),
    }
}

/// Decodes one CBOR value from `data`.
///
/// # Errors
///
/// Returns [`DataError::ParseError`] for malformed or unsupported input,
/// or trailing bytes after the value.
pub fn decode(data: &[u8]) -> Result<CborValue> {
    let mut reader = Reader { data, pos: 0 };
    let value = reader.value(0)?;
    if reader.pos != data.len() {
        return Err(err(format!("{} trailing bytes", data.len() - reader.pos)));
    }
    Ok(value)
}

/// Encodes the supported CBOR subset (the encoder device firmware uses).
pub fn encode(value: &CborValue) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

fn encode_head(major: u8, arg: u64, out: &mut Vec<u8>) {
    match arg {
        0..=23 => out.push((major << 5) | arg as u8),
        24..=0xff => {
            out.push((major << 5) | 24);
            out.push(arg as u8);
        }
        0x100..=0xffff => {
            out.push((major << 5) | 25);
            out.extend_from_slice(&(arg as u16).to_be_bytes());
        }
        0x1_0000..=0xffff_ffff => {
            out.push((major << 5) | 26);
            out.extend_from_slice(&(arg as u32).to_be_bytes());
        }
        _ => {
            out.push((major << 5) | 27);
            out.extend_from_slice(&arg.to_be_bytes());
        }
    }
}

fn encode_into(value: &CborValue, out: &mut Vec<u8>) {
    match value {
        CborValue::Int(i) => {
            if *i >= 0 {
                encode_head(0, *i as u64, out);
            } else {
                encode_head(1, (-1 - i) as u64, out);
            }
        }
        CborValue::Float(f) => {
            out.push(0xfb);
            out.extend_from_slice(&f.to_be_bytes());
        }
        CborValue::Text(t) => {
            encode_head(3, t.len() as u64, out);
            out.extend_from_slice(t.as_bytes());
        }
        CborValue::Array(items) => {
            encode_head(4, items.len() as u64, out);
            for item in items {
                encode_into(item, out);
            }
        }
        CborValue::Map(entries) => {
            encode_head(5, entries.len() as u64, out);
            for (k, v) in entries {
                encode_into(&CborValue::Text(k.clone()), out);
                encode_into(v, out);
            }
        }
        CborValue::Bool(false) => out.push(0xf4),
        CborValue::Bool(true) => out.push(0xf5),
        CborValue::Null => out.push(0xf6),
    }
}

/// Parses a CBOR acquisition payload (same schema as the JSON variant:
/// `{values: [...], interval_ms, sensor, label?}`) into a [`Sample`].
///
/// # Errors
///
/// Returns [`DataError::ParseError`] for malformed CBOR or a payload
/// missing the required fields.
pub fn parse_cbor(data: &[u8], id: u64) -> Result<Sample> {
    let value = decode(data)?;
    let values = value.get("values").ok_or_else(|| err("missing 'values'"))?;
    let values: Vec<f32> = match values {
        CborValue::Array(items) => items
            .iter()
            .map(|v| v.as_f64().map(|x| x as f32).ok_or_else(|| err("non-numeric value")))
            .collect::<Result<_>>()?,
        _ => return Err(err("'values' must be an array")),
    };
    if values.is_empty() {
        return Err(err("values array is empty"));
    }
    let interval_ms = value
        .get("interval_ms")
        .and_then(CborValue::as_f64)
        .ok_or_else(|| err("missing 'interval_ms'"))?;
    if interval_ms <= 0.0 {
        return Err(err(format!("interval_ms {interval_ms} must be positive")));
    }
    let sensor = match value.get("sensor") {
        Some(CborValue::Text(t)) => match t.as_str() {
            "audio" | "microphone" => SensorKind::Audio,
            "camera" | "image" => SensorKind::Image,
            "accelerometer" | "imu" | "inertial" => SensorKind::Inertial,
            _ => SensorKind::Other,
        },
        _ => SensorKind::Other,
    };
    let rate = (1000.0 / interval_ms).round() as u32;
    let mut sample = Sample::new(id, values, sensor).with_sample_rate(rate);
    if let Some(CborValue::Text(label)) = value.get("label") {
        sample = sample.with_label(label);
    }
    Ok(sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn payload(values: Vec<f64>, label: Option<&str>) -> CborValue {
        let mut entries = vec![
            (
                "values".to_string(),
                CborValue::Array(values.into_iter().map(CborValue::Float).collect()),
            ),
            ("interval_ms".to_string(), CborValue::Float(10.0)),
            ("sensor".to_string(), CborValue::Text("accelerometer".into())),
        ];
        if let Some(l) = label {
            entries.push(("label".to_string(), CborValue::Text(l.to_string())));
        }
        CborValue::Map(entries)
    }

    #[test]
    fn decode_rfc_examples() {
        assert_eq!(decode(&[0x00]).unwrap(), CborValue::Int(0));
        assert_eq!(decode(&[0x17]).unwrap(), CborValue::Int(23));
        assert_eq!(decode(&[0x18, 0x64]).unwrap(), CborValue::Int(100));
        assert_eq!(decode(&[0x19, 0x03, 0xe8]).unwrap(), CborValue::Int(1000));
        assert_eq!(decode(&[0x20]).unwrap(), CborValue::Int(-1));
        assert_eq!(decode(&[0x38, 0x63]).unwrap(), CborValue::Int(-100));
        assert_eq!(decode(&[0x63, b'a', b'b', b'c']).unwrap(), CborValue::Text("abc".into()));
        assert_eq!(decode(&[0xf5]).unwrap(), CborValue::Bool(true));
        assert_eq!(decode(&[0xf6]).unwrap(), CborValue::Null);
        // 1.5 as half-float (RFC 8949 appendix A)
        assert_eq!(decode(&[0xf9, 0x3e, 0x00]).unwrap(), CborValue::Float(1.5));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0x18]).is_err()); // truncated argument
        assert!(decode(&[0x00, 0x00]).is_err()); // trailing bytes
        assert!(decode(&[0x40]).is_err()); // byte strings unsupported
        assert!(decode(&[0xa1, 0x00, 0x00]).is_err()); // non-text map key
                                                       // huge declared array with no content
        assert!(decode(&[0x9b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn acquisition_payload_round_trip() {
        let bytes = encode(&payload(vec![0.5, -0.25, 1.0], Some("idle")));
        let sample = parse_cbor(&bytes, 7).unwrap();
        assert_eq!(sample.values(), &[0.5, -0.25, 1.0]);
        assert_eq!(sample.label(), Some("idle"));
        assert_eq!(sample.sensor(), SensorKind::Inertial);
        assert_eq!(sample.sample_rate_hz(), Some(100));
    }

    #[test]
    fn payload_validation() {
        let empty = encode(&payload(vec![], None));
        assert!(parse_cbor(&empty, 0).is_err());
        let mut no_interval = payload(vec![1.0], None);
        if let CborValue::Map(entries) = &mut no_interval {
            entries.retain(|(k, _)| k != "interval_ms");
        }
        assert!(parse_cbor(&encode(&no_interval), 0).is_err());
        assert!(parse_cbor(b"junk", 0).is_err());
    }

    #[test]
    fn integer_values_accepted() {
        // devices often send raw ADC integers
        let value = CborValue::Map(vec![
            ("values".into(), CborValue::Array(vec![CborValue::Int(-5), CborValue::Int(300)])),
            ("interval_ms".into(), CborValue::Int(4)),
            ("sensor".into(), CborValue::Text("audio".into())),
        ]);
        let sample = parse_cbor(&encode(&value), 0).unwrap();
        assert_eq!(sample.values(), &[-5.0, 300.0]);
        assert_eq!(sample.sample_rate_hz(), Some(250));
        assert_eq!(sample.sensor(), SensorKind::Audio);
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(
            ints in proptest::collection::vec(-1_000_000i64..1_000_000, 0..8),
            floats in proptest::collection::vec(-1e6f64..1e6, 0..8),
            text in "[a-z]{0,12}",
        ) {
            let value = CborValue::Map(vec![
                ("ints".into(), CborValue::Array(ints.iter().map(|&i| CborValue::Int(i)).collect())),
                ("floats".into(), CborValue::Array(floats.iter().map(|&f| CborValue::Float(f)).collect())),
                ("text".into(), CborValue::Text(text)),
                ("flag".into(), CborValue::Bool(true)),
            ]);
            prop_assert_eq!(decode(&encode(&value)).unwrap(), value);
        }

        #[test]
        fn prop_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode(&bytes); // must return Err, not panic
        }
    }
}
