//! Error type for the data layer.

use std::fmt;

/// Errors produced by dataset management and ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A parser rejected its input.
    ParseError {
        /// Format being parsed (`"csv"`, `"json"`, `"wav"`).
        format: &'static str,
        /// What went wrong.
        reason: String,
    },
    /// A sample id was not found in the dataset.
    UnknownSample(u64),
    /// An operation needed labeled data but none (or inconsistent data) was
    /// available.
    InvalidDataset(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ParseError { format, reason } => {
                write!(f, "failed to parse {format}: {reason}")
            }
            DataError::UnknownSample(id) => write!(f, "unknown sample id {id}"),
            DataError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DataError::ParseError { format: "wav", reason: "truncated header".into() };
        assert!(e.to_string().contains("wav"));
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<DataError>();
    }
}
