//! The labeled-sample store: splits, statistics, versioned mutations.

use crate::sample::Sample;
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which partition a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Used for training (and validation inside the trainer).
    Training,
    /// Held out for final evaluation.
    Testing,
}

/// Per-class and per-split counts — what the Studio's data view shows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DatasetStats {
    /// Total samples.
    pub total: usize,
    /// Training-split samples.
    pub training: usize,
    /// Testing-split samples.
    pub testing: usize,
    /// Labeled sample count per class.
    pub per_class: BTreeMap<String, usize>,
    /// Samples with no label yet.
    pub unlabeled: usize,
}

/// A versioned, labeled dataset.
///
/// Splitting is deterministic: each sample's partition is a pure function
/// of its id and the dataset's split ratio, so adding or removing other
/// samples never reshuffles existing ones — the property that makes
/// collaborative dataset edits reproducible (paper §2.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    samples: BTreeMap<u64, Sample>,
    test_percent: u8,
    version: u64,
    audit_log: Vec<String>,
    next_id: u64,
}

impl Dataset {
    /// Creates an empty dataset with the default 80/20 split.
    pub fn new(name: &str) -> Dataset {
        Dataset {
            name: name.to_string(),
            samples: BTreeMap::new(),
            test_percent: 20,
            version: 0,
            audit_log: Vec::new(),
            next_id: 1,
        }
    }

    /// Sets the test-split percentage (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    #[must_use]
    pub fn with_test_percent(mut self, percent: u8) -> Dataset {
        assert!(percent <= 100, "test percent must be 0..=100");
        self.test_percent = percent;
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic version, bumped by every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Human-readable audit trail of mutations.
    pub fn audit_log(&self) -> &[String] {
        &self.audit_log
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn bump(&mut self, what: String) {
        self.version += 1;
        self.audit_log.push(format!("v{}: {what}", self.version));
    }

    /// Adds a sample, assigning it a fresh id. Returns the id.
    pub fn add(&mut self, sample: Sample) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let label = sample.label().unwrap_or("<unlabeled>").to_string();
        // re-key the sample under the dataset-assigned id
        let rekeyed = {
            let mut s = Sample::new(id, sample.values().to_vec(), sample.sensor());
            if let Some(l) = sample.label() {
                s = s.with_label(l);
            }
            if let Some(hz) = sample.sample_rate_hz() {
                s = s.with_sample_rate(hz);
            }
            for (k, v) in sample.metadata() {
                s = s.with_metadata(k, v);
            }
            s
        };
        self.samples.insert(id, rekeyed);
        self.bump(format!("add sample {id} ({label})"));
        id
    }

    /// Removes a sample by id.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownSample`] when the id does not exist.
    pub fn remove(&mut self, id: u64) -> Result<Sample> {
        let sample = self.samples.remove(&id).ok_or(DataError::UnknownSample(id))?;
        self.bump(format!("remove sample {id}"));
        Ok(sample)
    }

    /// Relabels a sample in place.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownSample`] when the id does not exist.
    pub fn relabel(&mut self, id: u64, label: Option<&str>) -> Result<()> {
        let sample = self.samples.get_mut(&id).ok_or(DataError::UnknownSample(id))?;
        sample.set_label(label.map(String::from));
        self.bump(format!("relabel sample {id} -> {}", label.unwrap_or("<none>")));
        Ok(())
    }

    /// Fetches a sample by id.
    pub fn get(&self, id: u64) -> Option<&Sample> {
        self.samples.get(&id)
    }

    /// Iterates over all samples in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.values()
    }

    /// The deterministic split of a sample id.
    pub fn split_of(&self, id: u64) -> Split {
        // splitmix64 finalizer: uniform, stable, independent of insertion order
        let mut h = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        if (h % 100) < self.test_percent as u64 {
            Split::Testing
        } else {
            Split::Training
        }
    }

    /// Iterates over the samples of one split.
    pub fn split(&self, split: Split) -> impl Iterator<Item = &Sample> + '_ {
        self.samples.values().filter(move |s| self.split_of(s.id()) == split)
    }

    /// Sorted list of distinct labels.
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> =
            self.samples.values().filter_map(|s| s.label().map(String::from)).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Returns `(features, label indices)` for one split, mapping labels to
    /// their index in [`Dataset::labels`] — the format the trainer consumes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidDataset`] when the split has no labeled
    /// samples.
    pub fn xy(&self, split: Split) -> Result<(Vec<Vec<f32>>, Vec<usize>)> {
        let labels = self.labels();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in self.split(split) {
            if let Some(l) = s.label() {
                let idx = labels.iter().position(|x| x == l).expect("label came from labels()");
                xs.push(s.values().to_vec());
                ys.push(idx);
            }
        }
        if xs.is_empty() {
            return Err(DataError::InvalidDataset(format!(
                "no labeled samples in {split:?} split"
            )));
        }
        Ok((xs, ys))
    }

    /// Split / class statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut stats = DatasetStats { total: self.samples.len(), ..DatasetStats::default() };
        for s in self.samples.values() {
            match self.split_of(s.id()) {
                Split::Training => stats.training += 1,
                Split::Testing => stats.testing += 1,
            }
            match s.label() {
                Some(l) => *stats.per_class.entry(l.to_string()).or_insert(0) += 1,
                None => stats.unlabeled += 1,
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SensorKind;
    use proptest::prelude::*;

    fn sample(label: &str) -> Sample {
        Sample::new(0, vec![0.1, 0.2], SensorKind::Other).with_label(label)
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut ds = Dataset::new("d");
        let a = ds.add(sample("x"));
        let b = ds.add(sample("y"));
        assert_eq!((a, b), (1, 2));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.version(), 2);
    }

    #[test]
    fn remove_and_relabel() {
        let mut ds = Dataset::new("d");
        let id = ds.add(sample("x"));
        ds.relabel(id, Some("z")).unwrap();
        assert_eq!(ds.get(id).unwrap().label(), Some("z"));
        ds.remove(id).unwrap();
        assert!(ds.remove(id).is_err());
        assert!(ds.relabel(id, None).is_err());
        assert_eq!(ds.audit_log().len(), 3);
    }

    #[test]
    fn split_is_deterministic_and_stable() {
        let mut ds = Dataset::new("d").with_test_percent(30);
        let ids: Vec<u64> = (0..50).map(|_| ds.add(sample("a"))).collect();
        let before: Vec<Split> = ids.iter().map(|&i| ds.split_of(i)).collect();
        // adding more samples must not move existing ones
        for _ in 0..50 {
            ds.add(sample("b"));
        }
        let after: Vec<Split> = ids.iter().map(|&i| ds.split_of(i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn split_ratio_approximate() {
        let mut ds = Dataset::new("d").with_test_percent(20);
        for _ in 0..1000 {
            ds.add(sample("a"));
        }
        let stats = ds.stats();
        let ratio = stats.testing as f64 / stats.total as f64;
        assert!((0.15..0.25).contains(&ratio), "test ratio {ratio}");
    }

    #[test]
    fn zero_test_percent() {
        let mut ds = Dataset::new("d").with_test_percent(0);
        for _ in 0..20 {
            ds.add(sample("a"));
        }
        assert_eq!(ds.stats().testing, 0);
    }

    #[test]
    fn labels_sorted_and_unique() {
        let mut ds = Dataset::new("d");
        ds.add(sample("zebra"));
        ds.add(sample("apple"));
        ds.add(sample("apple"));
        ds.add(Sample::new(0, vec![1.0], SensorKind::Other)); // unlabeled
        assert_eq!(ds.labels(), vec!["apple".to_string(), "zebra".to_string()]);
        let stats = ds.stats();
        assert_eq!(stats.unlabeled, 1);
        assert_eq!(stats.per_class["apple"], 2);
    }

    #[test]
    fn xy_maps_labels_to_indices() {
        let mut ds = Dataset::new("d").with_test_percent(0);
        ds.add(sample("b"));
        ds.add(sample("a"));
        let (xs, ys) = ds.xy(Split::Training).unwrap();
        assert_eq!(xs.len(), 2);
        // "a" -> 0, "b" -> 1 (sorted)
        assert_eq!(ys, vec![1, 0]);
        assert!(ds.xy(Split::Testing).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_version() {
        let mut ds = Dataset::new("d");
        ds.add(sample("k"));
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.version(), ds.version());
        assert_eq!(back.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_split_partitions_everything(n in 1usize..200, pct in 0u8..=100) {
            let mut ds = Dataset::new("p").with_test_percent(pct);
            for _ in 0..n {
                ds.add(sample("c"));
            }
            let train = ds.split(Split::Training).count();
            let test = ds.split(Split::Testing).count();
            prop_assert_eq!(train + test, n);
        }
    }
}
