//! Data augmentation for small sensor datasets.
//!
//! Sensor datasets are scarce (paper challenge #1), so the platform
//! augments audio during training — noise injection, time shifting and
//! gain scaling — to stretch a handful of captures into a robust training
//! set. All transforms are deterministic functions of their seed.

use crate::dataset::Dataset;
use crate::sample::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Peak amplitude of injected uniform noise (0 disables).
    pub noise: f32,
    /// Maximum shift as a fraction of the window (0 disables). Shifted-in
    /// regions are zero-filled.
    pub max_shift: f32,
    /// Gain range `[1 - gain_var, 1 + gain_var]` (0 disables).
    pub gain_var: f32,
}

impl Default for AugmentConfig {
    /// Mild audio defaults: 2% noise, ±10% shift, ±20% gain.
    fn default() -> Self {
        AugmentConfig { noise: 0.02, max_shift: 0.1, gain_var: 0.2 }
    }
}

/// Applies one random augmentation to a value buffer.
pub fn augment(values: &[f32], config: AugmentConfig, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = values.len();
    let mut out = vec![0.0f32; n];

    // time shift (positive = delay)
    let max_shift = (config.max_shift.clamp(0.0, 1.0) * n as f32) as i64;
    let shift = if max_shift > 0 { rng.gen_range(-max_shift..=max_shift) } else { 0 };
    for (i, slot) in out.iter_mut().enumerate() {
        let src = i as i64 - shift;
        if src >= 0 && (src as usize) < n {
            *slot = values[src as usize];
        }
    }

    // gain
    let gain = if config.gain_var > 0.0 {
        rng.gen_range(1.0 - config.gain_var..=1.0 + config.gain_var)
    } else {
        1.0
    };
    // noise
    for v in &mut out {
        *v = *v * gain
            + if config.noise > 0.0 { rng.gen_range(-config.noise..=config.noise) } else { 0.0 };
    }
    out
}

/// Expands a dataset: for every labeled sample, adds `copies` augmented
/// variants (same label, same sensor/rate metadata plus an
/// `augmented=true` marker). Returns the number of samples added.
pub fn augment_dataset(
    dataset: &mut Dataset,
    config: AugmentConfig,
    copies: usize,
    seed: u64,
) -> usize {
    let originals: Vec<Sample> = dataset.iter().filter(|s| s.label().is_some()).cloned().collect();
    let mut added = 0usize;
    for (i, original) in originals.iter().enumerate() {
        for c in 0..copies {
            let variant_seed =
                seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(c as u64);
            let values = augment(original.values(), config, variant_seed);
            let mut sample = Sample::new(0, values, original.sensor())
                .with_label(original.label().expect("filtered for labeled"))
                .with_metadata("augmented", "true");
            if let Some(hz) = original.sample_rate_hz() {
                sample = sample.with_sample_rate(hz);
            }
            dataset.add(sample);
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SensorKind;
    use proptest::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
        let cfg = AugmentConfig::default();
        assert_eq!(augment(&values, cfg, 5), augment(&values, cfg, 5));
        assert_ne!(augment(&values, cfg, 5), augment(&values, cfg, 6));
    }

    #[test]
    fn disabled_config_is_identity() {
        let values: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let cfg = AugmentConfig { noise: 0.0, max_shift: 0.0, gain_var: 0.0 };
        assert_eq!(augment(&values, cfg, 9), values);
    }

    #[test]
    fn shift_moves_content() {
        let mut values = vec![0.0f32; 100];
        values[50] = 1.0;
        let cfg = AugmentConfig { noise: 0.0, max_shift: 0.2, gain_var: 0.0 };
        // over several seeds the peak must move but stay present
        let mut moved = false;
        for seed in 0..10 {
            let out = augment(&values, cfg, seed);
            let peak = out.iter().position(|&v| v == 1.0);
            if let Some(p) = peak {
                assert!(p.abs_diff(50) <= 20, "peak at {p}");
                if p != 50 {
                    moved = true;
                }
            }
        }
        assert!(moved, "shift never moved the peak across 10 seeds");
    }

    #[test]
    fn augment_dataset_expands_and_labels() {
        let mut ds = Dataset::new("aug");
        for i in 0..4 {
            ds.add(
                Sample::new(0, vec![i as f32; 10], SensorKind::Audio)
                    .with_label("x")
                    .with_sample_rate(8_000),
            );
        }
        ds.add(Sample::new(0, vec![0.0; 10], SensorKind::Audio)); // unlabeled: skipped
        let added = augment_dataset(&mut ds, AugmentConfig::default(), 3, 1);
        assert_eq!(added, 12);
        assert_eq!(ds.len(), 5 + 12);
        let augmented: Vec<&Sample> =
            ds.iter().filter(|s| s.metadata().get("augmented").is_some()).collect();
        assert_eq!(augmented.len(), 12);
        assert!(augmented.iter().all(|s| s.label() == Some("x")));
        assert!(augmented.iter().all(|s| s.sample_rate_hz() == Some(8_000)));
    }

    proptest! {
        #[test]
        fn prop_augment_preserves_length_and_boundedness(
            values in proptest::collection::vec(-1.0f32..1.0, 10..200),
            seed in 0u64..1000,
        ) {
            let out = augment(&values, AugmentConfig::default(), seed);
            prop_assert_eq!(out.len(), values.len());
            // gain <= 1.2 and noise <= 0.02 bound the output
            prop_assert!(out.iter().all(|v| v.abs() <= 1.2 + 0.02 + 1e-6));
        }
    }
}
