//! Individual labeled samples.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of sensor produced a sample (drives default DSP choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Microphone audio (1-D, typically 16 kHz).
    Audio,
    /// Camera image (h×w×c pixel values 0–255).
    Image,
    /// Inertial/vibration data (interleaved axes).
    Inertial,
    /// Anything else (raw time series).
    Other,
}

/// One captured sample: raw values plus label and capture metadata.
///
/// # Example
///
/// ```
/// use ei_data::{Sample, SensorKind};
///
/// let s = Sample::new(1, vec![0.0; 16_000], SensorKind::Audio)
///     .with_label("yes")
///     .with_metadata("device", "nano33");
/// assert_eq!(s.label(), Some("yes"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    id: u64,
    values: Vec<f32>,
    sensor: SensorKind,
    label: Option<String>,
    sample_rate_hz: Option<u32>,
    metadata: BTreeMap<String, String>,
}

impl Sample {
    /// Creates an unlabeled sample.
    pub fn new(id: u64, values: Vec<f32>, sensor: SensorKind) -> Sample {
        Sample { id, values, sensor, label: None, sample_rate_hz: None, metadata: BTreeMap::new() }
    }

    /// Sets the label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Sample {
        self.label = Some(label.to_string());
        self
    }

    /// Sets the capture sample rate (builder style).
    #[must_use]
    pub fn with_sample_rate(mut self, hz: u32) -> Sample {
        self.sample_rate_hz = Some(hz);
        self
    }

    /// Attaches one metadata key/value pair (builder style).
    #[must_use]
    pub fn with_metadata(mut self, key: &str, value: &str) -> Sample {
        self.metadata.insert(key.to_string(), value.to_string());
        self
    }

    /// Unique sample id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Raw values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Sensor kind.
    pub fn sensor(&self) -> SensorKind {
        self.sensor
    }

    /// Label, if assigned.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Assigns or clears the label in place (used by active labeling).
    pub fn set_label(&mut self, label: Option<String>) {
        self.label = label;
    }

    /// Capture sample rate, if known.
    pub fn sample_rate_hz(&self) -> Option<u32> {
        self.sample_rate_hz
    }

    /// Metadata map.
    pub fn metadata(&self) -> &BTreeMap<String, String> {
        &self.metadata
    }

    /// Number of raw values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the sample has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let s = Sample::new(7, vec![1.0, 2.0], SensorKind::Inertial)
            .with_label("idle")
            .with_sample_rate(100)
            .with_metadata("site", "factory-3");
        assert_eq!(s.id(), 7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(), Some("idle"));
        assert_eq!(s.sample_rate_hz(), Some(100));
        assert_eq!(s.metadata()["site"], "factory-3");
        assert!(!s.is_empty());
    }

    #[test]
    fn relabel() {
        let mut s = Sample::new(1, vec![0.0], SensorKind::Other);
        assert_eq!(s.label(), None);
        s.set_label(Some("anomaly".into()));
        assert_eq!(s.label(), Some("anomaly"));
        s.set_label(None);
        assert_eq!(s.label(), None);
    }

    #[test]
    fn serde_round_trip() {
        let s = Sample::new(3, vec![0.5; 4], SensorKind::Audio).with_label("no");
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
