//! Synthetic workload generators.
//!
//! The paper evaluates on Google Speech Commands (KWS), Visual Wake Words
//! (VWW) and CIFAR-10 (IC) — datasets we cannot ship. These generators
//! produce class-structured synthetic data with the *same tensor shapes*
//! (1 s of 16 kHz audio; 96×96×1 images; 32×32×3 images), so every
//! latency/memory/architecture result downstream is preserved, and the
//! classes are separable so training and accuracy evaluation are real.
//!
//! All generators are deterministic functions of their seed.

use crate::dataset::Dataset;
use crate::sample::{Sample, SensorKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Audio keyword generator: each class is a distinct harmonic stack with
/// its own fundamental, harmonic weights and amplitude-modulation rate —
/// a crude stand-in for the formant structure that separates spoken words.
#[derive(Debug, Clone)]
pub struct KwsGenerator {
    /// Class (keyword) names.
    pub classes: Vec<String>,
    /// Sample rate in hertz.
    pub sample_rate_hz: u32,
    /// Clip length in seconds.
    pub duration_s: f32,
    /// Additive white-noise amplitude.
    pub noise: f32,
}

impl Default for KwsGenerator {
    /// Four keywords at 16 kHz, 1 s clips — the paper's KWS input shape.
    fn default() -> Self {
        KwsGenerator {
            classes: vec!["yes".into(), "no".into(), "up".into(), "down".into()],
            sample_rate_hz: 16_000,
            duration_s: 1.0,
            noise: 0.05,
        }
    }
}

impl KwsGenerator {
    /// Samples per clip.
    pub fn clip_len(&self) -> usize {
        (self.duration_s * self.sample_rate_hz as f32) as usize
    }

    /// Generates one clip of class `class_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `class_idx >= classes.len()`.
    pub fn generate(&self, class_idx: usize, seed: u64) -> Vec<f32> {
        assert!(class_idx < self.classes.len(), "class index out of range");
        let mut rng = StdRng::seed_from_u64(seed ^ (class_idx as u64) << 32);
        let n = self.clip_len();
        let rate = self.sample_rate_hz as f32;
        // class-specific spectral signature
        let f0 = 220.0 + 180.0 * class_idx as f32;
        let h2 = 0.6 - 0.1 * (class_idx % 4) as f32;
        let h3 = 0.2 + 0.15 * (class_idx % 3) as f32;
        let am_hz = 3.0 + class_idx as f32 * 2.0;
        // per-clip variation: slight detune, onset time, amplitude
        let detune = rng.gen_range(0.97f32..1.03);
        let onset = rng.gen_range(0.05f32..0.2);
        let amp = rng.gen_range(0.5f32..0.9);
        (0..n)
            .map(|i| {
                let t = i as f32 / rate;
                let envelope = if t < onset {
                    0.0
                } else {
                    let u = (t - onset) / self.duration_s.max(0.1);
                    (1.0 - u).max(0.0)
                        * (1.0 + 0.5 * (2.0 * std::f32::consts::PI * am_hz * t).sin())
                };
                let w = 2.0 * std::f32::consts::PI * f0 * detune * t;
                let tone = w.sin() + h2 * (2.0 * w).sin() + h3 * (3.0 * w).sin();
                (amp * envelope * tone * 0.4 + self.noise * rng.gen_range(-1.0f32..1.0))
                    .clamp(-1.0, 1.0)
            })
            .collect()
    }

    /// Builds a labeled dataset with `per_class` clips of every class.
    pub fn dataset(&self, per_class: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new("synthetic-kws");
        for (ci, class) in self.classes.iter().enumerate() {
            for k in 0..per_class {
                let clip = self.generate(ci, seed.wrapping_add((ci * per_class + k) as u64));
                ds.add(
                    Sample::new(0, clip, SensorKind::Audio)
                        .with_label(class)
                        .with_sample_rate(self.sample_rate_hz),
                );
            }
        }
        ds
    }
}

/// Visual-wake-words-style image generator: "person" images contain a
/// head-plus-torso blob; "no person" images contain rectangular clutter.
/// Pixels are grayscale 0–255, shape `side × side × 1`.
#[derive(Debug, Clone)]
pub struct VwwGenerator {
    /// Image side length in pixels.
    pub side: usize,
}

impl Default for VwwGenerator {
    /// 96×96 — the paper's VWW input.
    fn default() -> Self {
        VwwGenerator { side: 96 }
    }
}

impl VwwGenerator {
    /// Pixels per image.
    pub fn image_len(&self) -> usize {
        self.side * self.side
    }

    /// Generates one image; `person` selects the positive class.
    pub fn generate(&self, person: bool, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed ^ if person { 0xDEAD } else { 0 });
        let s = self.side as f32;
        let mut img = vec![0.0f32; self.image_len()];
        // textured background
        let bg = rng.gen_range(40.0f32..120.0);
        for p in img.iter_mut() {
            *p = bg + rng.gen_range(-20.0f32..20.0);
        }
        if person {
            // head: circle; torso: ellipse below it
            let cx = rng.gen_range(0.3f32..0.7) * s;
            let head_cy = rng.gen_range(0.2f32..0.4) * s;
            let head_r = rng.gen_range(0.08f32..0.14) * s;
            let torso_ry = rng.gen_range(0.2f32..0.3) * s;
            let torso_rx = rng.gen_range(0.1f32..0.18) * s;
            let torso_cy = head_cy + head_r + torso_ry * 0.9;
            let tone = rng.gen_range(180.0f32..250.0);
            for y in 0..self.side {
                for x in 0..self.side {
                    let (fx, fy) = (x as f32, y as f32);
                    let in_head = (fx - cx).powi(2) + (fy - head_cy).powi(2) <= head_r * head_r;
                    let in_torso = ((fx - cx) / torso_rx).powi(2)
                        + ((fy - torso_cy) / torso_ry).powi(2)
                        <= 1.0;
                    if in_head || in_torso {
                        img[y * self.side + x] = tone + rng.gen_range(-10.0f32..10.0);
                    }
                }
            }
        } else {
            // rectangular clutter
            for _ in 0..rng.gen_range(2..6) {
                let w = rng.gen_range(self.side / 10..self.side / 3);
                let h = rng.gen_range(self.side / 10..self.side / 3);
                let x0 = rng.gen_range(0..self.side - w);
                let y0 = rng.gen_range(0..self.side - h);
                let tone = rng.gen_range(100.0f32..220.0);
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        img[y * self.side + x] = tone;
                    }
                }
            }
        }
        for p in img.iter_mut() {
            *p = p.clamp(0.0, 255.0);
        }
        img
    }

    /// Builds a balanced labeled dataset (`person` / `no_person`).
    pub fn dataset(&self, per_class: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new("synthetic-vww");
        for k in 0..per_class {
            for (person, label) in [(true, "person"), (false, "no_person")] {
                let img = self.generate(person, seed.wrapping_add(k as u64 * 2 + person as u64));
                ds.add(Sample::new(0, img, SensorKind::Image).with_label(label));
            }
        }
        ds
    }
}

/// CIFAR-style 10-class color texture generator: each class has a distinct
/// combination of base hue, checker period and gradient orientation.
/// Pixels are RGB 0–255, shape `32 × 32 × 3`.
#[derive(Debug, Clone)]
pub struct CifarGenerator {
    /// Image side length.
    pub side: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Default for CifarGenerator {
    fn default() -> Self {
        CifarGenerator { side: 32, classes: 10 }
    }
}

impl CifarGenerator {
    /// Values per image (`side² × 3`).
    pub fn image_len(&self) -> usize {
        self.side * self.side * 3
    }

    /// Generates one image of class `class_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `class_idx >= classes`.
    pub fn generate(&self, class_idx: usize, seed: u64) -> Vec<f32> {
        assert!(class_idx < self.classes, "class index out of range");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(class_idx as u64));
        let period = 3 + (class_idx % 5);
        let angle = class_idx as f32 * 0.6;
        let (ca, sa) = (angle.cos(), angle.sin());
        // distinct base colors per class
        let base = [
            (200.0, 60.0, 60.0),
            (60.0, 200.0, 60.0),
            (60.0, 60.0, 200.0),
            (200.0, 200.0, 60.0),
            (200.0, 60.0, 200.0),
            (60.0, 200.0, 200.0),
            (230.0, 140.0, 40.0),
            (140.0, 230.0, 40.0),
            (40.0, 140.0, 230.0),
            (150.0, 150.0, 150.0),
        ];
        let (r0, g0, b0) = base[class_idx % base.len()];
        let jitter = rng.gen_range(-25.0f32..25.0);
        let mut img = Vec::with_capacity(self.image_len());
        for y in 0..self.side {
            for x in 0..self.side {
                let u = x as f32 * ca + y as f32 * sa;
                let checker = if (u as usize / period).is_multiple_of(2) { 1.0 } else { 0.55 };
                let texture = 1.0 + 0.15 * (u * 0.8).sin();
                let noise = rng.gen_range(-15.0f32..15.0);
                img.push(((r0 + jitter) * checker * texture + noise).clamp(0.0, 255.0));
                img.push(((g0 + jitter) * checker * texture + noise).clamp(0.0, 255.0));
                img.push(((b0 + jitter) * checker * texture + noise).clamp(0.0, 255.0));
            }
        }
        img
    }

    /// Builds a balanced labeled dataset with class names `class0..classN`.
    pub fn dataset(&self, per_class: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new("synthetic-cifar");
        for ci in 0..self.classes {
            for k in 0..per_class {
                let img = self.generate(ci, seed.wrapping_add((ci * per_class + k) as u64));
                ds.add(Sample::new(0, img, SensorKind::Image).with_label(&format!("class{ci}")));
            }
        }
        ds
    }
}

/// Kinds of injected vibration anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A high-frequency component appears (bearing wear).
    HighFrequency,
    /// Overall amplitude grows (imbalance).
    Amplitude,
    /// A slow drift overlays the signal (mounting loosening).
    Drift,
}

/// 3-axis vibration generator for predictive-maintenance workloads:
/// "normal" is a clean low-frequency oscillation per axis; anomalies
/// inject one of [`AnomalyKind`].
#[derive(Debug, Clone)]
pub struct VibrationGenerator {
    /// Sample rate in hertz.
    pub sample_rate_hz: u32,
    /// Window length in seconds.
    pub duration_s: f32,
    /// Interleaved axis count (x, y, z).
    pub axes: usize,
}

impl Default for VibrationGenerator {
    /// 100 Hz, 2 s, 3 axes — the platform's motion-workload defaults.
    fn default() -> Self {
        VibrationGenerator { sample_rate_hz: 100, duration_s: 2.0, axes: 3 }
    }
}

impl VibrationGenerator {
    /// Values per window (`steps × axes`, interleaved).
    pub fn window_len(&self) -> usize {
        (self.duration_s * self.sample_rate_hz as f32) as usize * self.axes
    }

    /// Generates one window; `anomaly == None` produces normal operation.
    pub fn generate(&self, anomaly: Option<AnomalyKind>, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let steps = (self.duration_s * self.sample_rate_hz as f32) as usize;
        let rate = self.sample_rate_hz as f32;
        let phase: Vec<f32> =
            (0..self.axes).map(|_| rng.gen_range(0.0f32..std::f32::consts::TAU)).collect();
        let mut out = Vec::with_capacity(steps * self.axes);
        for i in 0..steps {
            let t = i as f32 / rate;
            for (axis, &axis_phase) in phase.iter().enumerate() {
                let base = (2.0 * std::f32::consts::PI * 5.0 * t + axis_phase).sin()
                    * (0.8 + 0.1 * axis as f32);
                let extra = match anomaly {
                    None => 0.0,
                    Some(AnomalyKind::HighFrequency) => {
                        0.6 * (2.0 * std::f32::consts::PI * 27.0 * t + axis_phase).sin()
                    }
                    Some(AnomalyKind::Amplitude) => base * 1.5,
                    Some(AnomalyKind::Drift) => 2.0 * t / self.duration_s.max(0.1),
                };
                out.push(base + extra + rng.gen_range(-0.05f32..0.05));
            }
        }
        out
    }

    /// Builds a dataset of `normal` normal windows (labeled `"normal"`) and
    /// `abnormal` windows cycling through the anomaly kinds (labeled
    /// `"anomaly"`).
    pub fn dataset(&self, normal: usize, abnormal: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new("synthetic-vibration");
        for k in 0..normal {
            let w = self.generate(None, seed.wrapping_add(k as u64));
            ds.add(
                Sample::new(0, w, SensorKind::Inertial)
                    .with_label("normal")
                    .with_sample_rate(self.sample_rate_hz),
            );
        }
        let kinds = [AnomalyKind::HighFrequency, AnomalyKind::Amplitude, AnomalyKind::Drift];
        for k in 0..abnormal {
            let w =
                self.generate(Some(kinds[k % kinds.len()]), seed.wrapping_add(10_000 + k as u64));
            ds.add(
                Sample::new(0, w, SensorKind::Inertial)
                    .with_label("anomaly")
                    .with_sample_rate(self.sample_rate_hz),
            );
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Goertzel power of one frequency in a signal (test helper).
    fn tone_power(signal: &[f32], freq: f32, rate: f32) -> f32 {
        let w = 2.0 * std::f32::consts::PI * freq / rate;
        let coeff = 2.0 * w.cos();
        let (mut s1, mut s2) = (0.0f32, 0.0f32);
        for &x in signal {
            let s0 = x + coeff * s1 - s2;
            s2 = s1;
            s1 = s0;
        }
        s1 * s1 + s2 * s2 - coeff * s1 * s2
    }

    #[test]
    fn kws_deterministic_and_shaped() {
        let g = KwsGenerator::default();
        let a = g.generate(0, 42);
        let b = g.generate(0, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16_000);
        assert!(a.iter().all(|x| x.abs() <= 1.0));
        assert_ne!(a, g.generate(0, 43), "different seeds differ");
    }

    #[test]
    fn kws_classes_have_distinct_spectra() {
        let g = KwsGenerator { noise: 0.0, ..KwsGenerator::default() };
        let c0 = g.generate(0, 1);
        let c2 = g.generate(2, 1);
        // class 0 fundamental 220 Hz, class 2 fundamental 580 Hz
        let p0_at_own = tone_power(&c0, 220.0, 16_000.0);
        let p0_at_other = tone_power(&c0, 580.0, 16_000.0);
        assert!(p0_at_own > 10.0 * p0_at_other, "{p0_at_own} vs {p0_at_other}");
        let p2_at_own = tone_power(&c2, 580.0, 16_000.0);
        let p2_at_other = tone_power(&c2, 220.0, 16_000.0);
        assert!(p2_at_own > 10.0 * p2_at_other);
    }

    #[test]
    fn kws_dataset_balanced() {
        let g = KwsGenerator::default();
        let ds = g.dataset(5, 7);
        assert_eq!(ds.len(), 20);
        let stats = ds.stats();
        assert!(stats.per_class.values().all(|&c| c == 5));
        assert_eq!(ds.labels().len(), 4);
    }

    #[test]
    fn vww_person_images_brighter_in_center() {
        let g = VwwGenerator { side: 48 };
        let person = g.generate(true, 9);
        let clutter = g.generate(false, 9);
        assert_eq!(person.len(), 48 * 48);
        // the person blob adds a bright compact region; global stats differ
        let bright =
            |img: &[f32]| img.iter().filter(|&&p| p > 170.0).count() as f32 / img.len() as f32;
        assert!(bright(&person) > 0.02, "person image has a bright blob");
        assert!(person.iter().all(|&p| (0.0..=255.0).contains(&p)));
        assert_ne!(person, clutter);
    }

    #[test]
    fn cifar_classes_distinct_colors() {
        let g = CifarGenerator::default();
        let red = g.generate(0, 3);
        let green = g.generate(1, 3);
        let mean_channel = |img: &[f32], ch: usize| -> f32 {
            img.iter().skip(ch).step_by(3).sum::<f32>() / (img.len() / 3) as f32
        };
        assert!(mean_channel(&red, 0) > mean_channel(&red, 1));
        assert!(mean_channel(&green, 1) > mean_channel(&green, 0));
        assert_eq!(red.len(), 32 * 32 * 3);
    }

    #[test]
    fn cifar_rejects_bad_class() {
        let g = CifarGenerator::default();
        let result = std::panic::catch_unwind(|| g.generate(10, 0));
        assert!(result.is_err());
    }

    #[test]
    fn vibration_anomaly_has_more_high_frequency_power() {
        let g = VibrationGenerator::default();
        let normal = g.generate(None, 5);
        let anomalous = g.generate(Some(AnomalyKind::HighFrequency), 5);
        assert_eq!(normal.len(), 600);
        // de-interleave axis 0 and compare 27 Hz content
        let axis0 = |w: &[f32]| -> Vec<f32> { w.iter().step_by(3).copied().collect() };
        let pn = tone_power(&axis0(&normal), 27.0, 100.0);
        let pa = tone_power(&axis0(&anomalous), 27.0, 100.0);
        assert!(pa > 5.0 * pn, "anomaly 27 Hz power {pa} vs normal {pn}");
    }

    #[test]
    fn vibration_dataset_composition() {
        let g = VibrationGenerator::default();
        let ds = g.dataset(10, 4, 1);
        let stats = ds.stats();
        assert_eq!(stats.per_class["normal"], 10);
        assert_eq!(stats.per_class["anomaly"], 4);
    }
}
