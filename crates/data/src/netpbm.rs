//! Netpbm (PGM/PPM) image ingestion.
//!
//! The platform accepts JPG/PNG uploads (paper §4.1); those codecs are out
//! of scope for a dependency-free reproduction, so image ingestion uses
//! the uncompressed netpbm family instead (documented substitution in
//! DESIGN.md): binary `P5` (grayscale) and `P6` (RGB), the formats every
//! image tool can write. Pixels arrive as `f32` in 0–255, channels-last —
//! exactly what the image DSP block consumes.

use crate::sample::{Sample, SensorKind};
use crate::{DataError, Result};

/// A decoded image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Channels (1 for PGM, 3 for PPM).
    pub channels: usize,
    /// Pixel values 0–255, row-major channels-last.
    pub pixels: Vec<f32>,
}

fn err(reason: impl Into<String>) -> DataError {
    DataError::ParseError { format: "netpbm", reason: reason.into() }
}

/// Reads one whitespace-delimited ASCII token, skipping `#` comments.
fn token<'a>(data: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    // skip whitespace and comments
    loop {
        while *pos < data.len() && data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < data.len() && data[*pos] == b'#' {
            while *pos < data.len() && data[*pos] != b'\n' {
                *pos += 1;
            }
            continue;
        }
        break;
    }
    if *pos >= data.len() {
        return Err(err("unexpected end of header"));
    }
    let start = *pos;
    while *pos < data.len() && !data[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    Ok(&data[start..*pos])
}

fn number(data: &[u8], pos: &mut usize) -> Result<usize> {
    let tok = token(data, pos)?;
    std::str::from_utf8(tok)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(format!("invalid number {:?}", String::from_utf8_lossy(tok))))
}

/// Decodes a binary PGM (`P5`) or PPM (`P6`) image.
///
/// # Errors
///
/// Returns [`DataError::ParseError`] for other magics, malformed headers,
/// unsupported maxval (> 255), or truncated pixel data.
pub fn parse_netpbm(data: &[u8]) -> Result<Image> {
    let mut pos = 0usize;
    let magic = token(data, &mut pos)?;
    let channels = match magic {
        b"P5" => 1usize,
        b"P6" => 3usize,
        other => {
            return Err(err(format!(
                "unsupported magic {:?} (want P5 or P6)",
                String::from_utf8_lossy(other)
            )))
        }
    };
    let width = number(data, &mut pos)?;
    let height = number(data, &mut pos)?;
    let maxval = number(data, &mut pos)?;
    if width == 0 || height == 0 {
        return Err(err("zero image dimension"));
    }
    if maxval == 0 || maxval > 255 {
        return Err(err(format!("unsupported maxval {maxval} (want 1..=255)")));
    }
    // exactly one whitespace byte separates the header from pixel data
    if pos >= data.len() || !data[pos].is_ascii_whitespace() {
        return Err(err("missing header terminator"));
    }
    pos += 1;
    let expected = width * height * channels;
    let raster = &data[pos..];
    if raster.len() < expected {
        return Err(err(format!("raster has {} bytes, image needs {expected}", raster.len())));
    }
    let scale = 255.0 / maxval as f32;
    let pixels = raster[..expected].iter().map(|&b| b as f32 * scale).collect();
    Ok(Image { width, height, channels, pixels })
}

/// Encodes an [`Image`] as binary PGM/PPM (the inverse of [`parse_netpbm`]).
pub fn to_netpbm_bytes(image: &Image) -> Vec<u8> {
    let magic = if image.channels == 1 { "P5" } else { "P6" };
    let mut out = format!("{magic}\n{} {}\n255\n", image.width, image.height).into_bytes();
    out.extend(image.pixels.iter().map(|&p| p.clamp(0.0, 255.0).round() as u8));
    out
}

/// Parses a netpbm payload into a labeled-ready [`Sample`] (pixels 0–255,
/// channels-last — the image block's expected input).
///
/// # Errors
///
/// Propagates [`parse_netpbm`] failures.
pub fn parse_netpbm_sample(data: &[u8], id: u64) -> Result<Sample> {
    let image = parse_netpbm(data)?;
    Ok(Sample::new(id, image.pixels.clone(), SensorKind::Image)
        .with_metadata("width", &image.width.to_string())
        .with_metadata("height", &image.height.to_string())
        .with_metadata("channels", &image.channels.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert_eq, proptest};

    fn gray_2x2() -> Vec<u8> {
        b"P5\n2 2\n255\n\x00\x40\x80\xff".to_vec()
    }

    #[test]
    fn parses_pgm() {
        let img = parse_netpbm(&gray_2x2()).unwrap();
        assert_eq!((img.width, img.height, img.channels), (2, 2, 1));
        assert_eq!(img.pixels, vec![0.0, 64.0, 128.0, 255.0]);
    }

    #[test]
    fn parses_ppm_with_comments() {
        let mut data = b"P6 # rgb image\n# comment line\n1 2\n255\n".to_vec();
        data.extend_from_slice(&[255, 0, 0, 0, 255, 0]);
        let img = parse_netpbm(&data).unwrap();
        assert_eq!((img.width, img.height, img.channels), (1, 2, 3));
        assert_eq!(img.pixels[..3], [255.0, 0.0, 0.0]);
        assert_eq!(img.pixels[3..], [0.0, 255.0, 0.0]);
    }

    #[test]
    fn maxval_rescaled() {
        let data = b"P5\n1 1\n15\n\x0f".to_vec();
        let img = parse_netpbm(&data).unwrap();
        assert_eq!(img.pixels, vec![255.0]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_netpbm(b"").is_err());
        assert!(parse_netpbm(b"P3\n1 1\n255\n0 0 0").is_err(), "ascii variants unsupported");
        assert!(parse_netpbm(b"P5\n0 2\n255\n").is_err(), "zero dimension");
        assert!(parse_netpbm(b"P5\n2 2\n65535\n").is_err(), "16-bit unsupported");
        assert!(parse_netpbm(b"P5\n2 2\n255\n\x00\x01").is_err(), "truncated raster");
        assert!(parse_netpbm(b"P5\n2 x\n255\n....").is_err(), "non-numeric header");
    }

    #[test]
    fn sample_carries_geometry_metadata() {
        let sample = parse_netpbm_sample(&gray_2x2(), 3).unwrap();
        assert_eq!(sample.sensor(), SensorKind::Image);
        assert_eq!(sample.metadata()["width"], "2");
        assert_eq!(sample.metadata()["channels"], "1");
        assert_eq!(sample.len(), 4);
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            w in 1usize..12,
            h in 1usize..12,
            rgb in proptest::bool::ANY,
            seed in 0u64..1000,
        ) {
            let channels = if rgb { 3 } else { 1 };
            let pixels: Vec<f32> = (0..w * h * channels)
                .map(|i| ((i as u64).wrapping_mul(seed + 7) % 256) as f32)
                .collect();
            let image = Image { width: w, height: h, channels, pixels };
            let decoded = parse_netpbm(&to_netpbm_bytes(&image)).unwrap();
            prop_assert_eq!(decoded, image);
        }

        #[test]
        fn prop_parser_never_panics(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..128)) {
            let _ = parse_netpbm(&bytes);
        }
    }
}
