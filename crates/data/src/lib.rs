#![warn(missing_docs)]

//! Data collection, dataset management and synthetic workloads for
//! `edgelab`.
//!
//! Edge Impulse is deliberately *data-centric* (paper §3, objective 3):
//! "every ML project begins with data that is often hard to gather easily"
//! (§4.1). This crate is the platform's data layer:
//!
//! * [`dataset::Dataset`] — a labeled sample store with deterministic
//!   hash-based train/test splitting, per-class statistics, metadata, and
//!   an audit trail that versions every mutation (§2.4's reproducibility
//!   concern);
//! * [`ingest`] — file-format parsers for the formats the platform accepts
//!   (CSV, JSON acquisition payloads, 16-bit PCM WAV), with the compact
//!   binary CBOR variant in [`cbor`];
//! * [`synth`] — synthetic workload generators standing in for the paper's
//!   datasets (Google Speech Commands → formant-like keyword audio, Visual
//!   Wake Words → procedural person/background images, CIFAR-10 →
//!   procedural texture classes, plus a vibration generator for anomaly
//!   detection). Generators keep the exact tensor shapes of the originals
//!   so every downstream latency/memory result is preserved.

pub mod augment;
pub mod cbor;
pub mod dataset;
pub mod error;
pub mod explorer;
pub mod ingest;
pub mod netpbm;
pub mod sample;
pub mod synth;

pub use dataset::{Dataset, DatasetStats, Split};
pub use error::DataError;
pub use sample::{Sample, SensorKind};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
