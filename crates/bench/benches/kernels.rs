//! Criterion microbenchmarks of the hot paths: DSP feature extraction,
//! float vs int8 inference, both engines, the memory planner, and
//! quantization itself. These measure host throughput (the on-device
//! latencies of the paper come from `ei-device`'s cycle model); they exist
//! to keep the reference kernels honest as the code evolves.

use criterion::{criterion_group, criterion_main, Criterion};
use ei_bench::Task;
use ei_data::synth::KwsGenerator;
use ei_dsp::{blocks::MfccBlock, DspBlock, MfccConfig};
use ei_runtime::planner::plan_model;
use ei_runtime::{EonProgram, InferenceEngine, Interpreter};
use std::hint::black_box;

fn bench_dsp(c: &mut Criterion) {
    let block = MfccBlock::new(MfccConfig::default()).expect("valid config");
    let audio = KwsGenerator::default().generate(0, 1);
    c.bench_function("mfcc_16k_1s", |b| {
        b.iter(|| block.process(black_box(&audio)).expect("processes"))
    });
}

fn bench_inference(c: &mut Criterion) {
    let (float_a, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let features = vec![0.1f32; float_a.input_len()];
    c.bench_function("kws_dscnn_float_forward", |b| {
        b.iter(|| float_a.run_reference(black_box(&features)).expect("runs"))
    });
    c.bench_function("kws_dscnn_int8_forward", |b| {
        b.iter(|| int8_a.run_reference(black_box(&features)).expect("runs"))
    });
}

fn bench_engines(c: &mut Criterion) {
    let (float_a, _) = Task::ImageClassification.untrained_artifacts();
    let features = vec![0.3f32; float_a.input_len()];
    let interp = Interpreter::new(float_a.clone()).expect("builds");
    let eon = EonProgram::compile(float_a).expect("compiles");
    c.bench_function("ic_interpreter_run", |b| {
        b.iter(|| interp.run(black_box(&features)).expect("runs"))
    });
    c.bench_function("ic_eon_run", |b| b.iter(|| eon.run(black_box(&features)).expect("runs")));
}

fn bench_planner(c: &mut Criterion) {
    let (float_a, _) = Task::VisualWakeWords.untrained_artifacts();
    c.bench_function("vww_memory_planning", |b| {
        b.iter(|| plan_model(black_box(&float_a)).expect("plans"))
    });
}

fn bench_quantization(c: &mut Criterion) {
    let task = Task::ImageClassification;
    let spec = task.model_spec();
    let model = ei_nn::Sequential::build(&spec, 42).expect("builds");
    let dims = task.design().feature_dims().expect("valid");
    let calib = vec![vec![0.05f32; dims.len()], vec![-0.05f32; dims.len()]];
    c.bench_function("ic_quantize_model", |b| {
        b.iter(|| {
            ei_quant::quantize_model(black_box(&model), black_box(&calib)).expect("quantizes")
        })
    });
}

fn bench_training(c: &mut Criterion) {
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
    use ei_nn::train::{TrainConfig, Trainer};
    use ei_nn::Sequential;
    let spec = ModelSpec::new(Dims::new(1, 64, 1))
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense { units: 32, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: 4, activation: Activation::None })
        .layer(LayerSpec::Softmax);
    let inputs: Vec<Vec<f32>> =
        (0..64).map(|i| (0..64).map(|j| ((i * j) % 17) as f32 * 0.05).collect()).collect();
    let labels: Vec<usize> = (0..64).map(|i| i % 4).collect();
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        validation_split: 0.0,
        restore_best: false,
        ..TrainConfig::default()
    });
    c.bench_function("mlp_one_epoch_64_samples", |b| {
        b.iter(|| {
            let mut model = Sequential::build(&spec, 1).expect("builds");
            trainer.train(&mut model, black_box(&inputs), black_box(&labels)).expect("trains")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dsp, bench_inference, bench_engines, bench_planner, bench_quantization, bench_training
}
criterion_main!(benches);
