//! Design ablations beyond the paper's headline tables:
//!
//! 1. **EON overhead decomposition** — where exactly the RAM/flash savings
//!    of Table 4 come from (interpreter structs, schema, kernel code);
//! 2. **Operator fusion** — conv+BatchNorm folding: op count, MACs, and
//!    output equivalence;
//! 3. **Op resolver** — minimal vs all-ops kernel registration flash cost;
//! 4. **Memory planner** — greedy lifetime-sharing arena vs naive
//!    no-sharing allocation;
//! 5. **Fixed-point requantization** — integer multiplier error vs the
//!    float reference.

use ei_bench::{kb, Task};
use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec, Padding};
use ei_nn::Sequential;
use ei_quant::fusion::fold_batch_norm;
use ei_quant::qparams::FixedMultiplier;
use ei_runtime::planner::{activation_requests, plan_memory};
use ei_runtime::{EonProgram, InferenceEngine, Interpreter};
use ei_tensor::arena::align_up;

fn main() {
    ablation_overhead();
    ablation_fusion();
    ablation_resolver();
    ablation_planner();
    ablation_requantization();
}

fn ablation_overhead() {
    println!("Ablation 1: EON vs TFLM overhead decomposition (KWS int8)");
    let (_, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let interp = Interpreter::new(int8_a.clone()).expect("builds");
    let eon = EonProgram::compile(int8_a).expect("compiles");
    let im = interp.memory();
    let em = eon.memory();
    println!("{:<28} {:>12} {:>12}", "", "TFLM", "EON");
    for (label, t, e) in [
        ("arena (kB)", im.arena_bytes, em.arena_bytes),
        ("runtime state RAM (kB)", im.runtime_ram_bytes, em.runtime_ram_bytes),
        ("weights flash (kB)", im.weight_bytes, em.weight_bytes),
        ("model format flash (kB)", im.model_format_bytes, em.model_format_bytes),
        ("code flash (kB)", im.code_bytes, em.code_bytes),
        ("TOTAL RAM (kB)", im.ram_total(), em.ram_total()),
        ("TOTAL flash (kB)", im.flash_total(), em.flash_total()),
    ] {
        println!("{label:<28} {:>12} {:>12}", kb(t), kb(e));
    }
    println!();
}

fn ablation_fusion() {
    println!("Ablation 2: conv + BatchNorm operator fusion");
    let spec = ModelSpec::new(Dims::new(16, 16, 1))
        .named("fusion-probe")
        .layer(LayerSpec::Conv2d {
            filters: 8,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            activation: Activation::None,
        })
        .layer(LayerSpec::BatchNorm)
        .layer(LayerSpec::Conv2d {
            filters: 8,
            kernel: 3,
            stride: 2,
            padding: Padding::Same,
            activation: Activation::None,
        })
        .layer(LayerSpec::BatchNorm)
        .layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dense { units: 4, activation: Activation::None })
        .layer(LayerSpec::Softmax);
    let model = Sequential::build(&spec, 3).expect("builds");
    let (fused, n) = fold_batch_norm(&model).expect("fuses");
    let input: Vec<f32> = (0..256).map(|i| ((i % 17) as f32 - 8.0) * 0.05).collect();
    let a = model.forward(&input).expect("runs");
    let b = fused.forward(&input).expect("runs");
    let max_err = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
    println!("  batch-norm ops folded:   {n}");
    println!("  ops before -> after:     {} -> {}", model.layers().len(), fused.layers().len());
    println!("  MACs before -> after:    {} -> {}", model.macs(), fused.macs());
    println!("  max output deviation:    {max_err:.2e}");
    println!();
}

fn ablation_resolver() {
    println!("Ablation 3: op resolver registration (flash)");
    let (float_a, _) = Task::ImageClassification.untrained_artifacts();
    let minimal = Interpreter::new(float_a.clone()).expect("builds");
    let all = Interpreter::with_all_ops(float_a).expect("builds");
    println!("  minimal resolver code:   {} kB", kb(minimal.memory().code_bytes));
    println!("  all-ops resolver code:   {} kB", kb(all.memory().code_bytes));
    println!(
        "  wasted by all-ops:       {} kB",
        kb(all.memory().code_bytes - minimal.memory().code_bytes)
    );
    println!();
}

fn ablation_planner() {
    println!("Ablation 4: arena memory planner (greedy lifetime sharing vs none)");
    for task in Task::all() {
        let (float_a, int8_a) = task.untrained_artifacts();
        for artifact in [float_a, int8_a] {
            let requests = activation_requests(&artifact);
            let plan = plan_memory(&requests).expect("plans");
            let naive: usize = requests.iter().map(|r| align_up(r.size.max(1), 16)).sum();
            println!(
                "  {:<28} {:>5}: planned {:>8} kB vs naive {:>8} kB  (-{:.0}%)",
                task.name(),
                if artifact.is_quantized() { "int8" } else { "f32" },
                kb(plan.arena_bytes),
                kb(naive),
                100.0 * (naive - plan.arena_bytes) as f64 / naive as f64
            );
        }
    }
    println!();
}

fn ablation_requantization() {
    println!("Ablation 5: fixed-point requantization error vs float reference");
    let mut worst: f64 = 0.0;
    let mut samples = 0u64;
    for &real in &[0.00037f32, 0.0041, 0.062, 0.33, 0.87, 1.9] {
        let fm = FixedMultiplier::from_real(real);
        for acc in (-200_000i32..200_000).step_by(7919) {
            let want = (acc as f64 * real as f64).round();
            let got = fm.apply(acc) as f64;
            worst = worst.max((want - got).abs());
            samples += 1;
        }
    }
    println!("  multipliers tested:      6");
    println!("  accumulators tested:     {samples}");
    println!("  worst absolute error:    {worst} LSB");
    println!();
}
