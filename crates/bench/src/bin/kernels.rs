//! Kernel-layer benchmark: naive reference loops vs the cache-blocked
//! GEMM (and its im2col conv lowerings) vs the fused int8 epilogue, over
//! the three shape classes the paper's models hit hardest — MLP dense
//! layers, KWS DS-CNN convolutions, and vision depthwise stacks.
//!
//! Every variant must produce *byte-identical* outputs to the naive
//! reference at any pool width (that is the contract that lets the
//! blocked kernels back both engines), so this binary asserts bitwise
//! equality before it reports a single number, then asserts the blocked
//! kernel is at least 2x the naive one on the large-GEMM shape.
//!
//! ```bash
//! cargo run --release -p ei-bench --bin kernels
//! ```
//!
//! Writes machine-readable rows to `results/kernels.json`.

use ei_bench::{quick_mode, ResultsWriter};
use ei_nn::layers::conv::{conv2d_forward, depthwise_forward, Conv2dGeom};
use ei_nn::par::{conv2d_forward_auto, depthwise_forward_auto, gemm_f32_auto};
use ei_nn::spec::Padding;
use ei_par::{ParPool, Parallelism};
use ei_tensor::gemm::{gemm_f32, gemm_i8_fused, reference};
use ei_trace::json::Json;
use std::time::Instant;

/// Deterministic pseudo-random f32 in roughly [-1, 1], never exactly zero
/// (so the `x == 0.0` skip in the kernels doesn't flatter either side).
fn fill_f32(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((state >> 40) as f32) / ((1u32 << 24) as f32); // [0, 1)
        *v = (u - 0.5) * 2.0 + 1.0e-3;
    }
}

/// Deterministic i8 fill over the full quantized range.
fn fill_i8(buf: &mut [i8], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = (state >> 40) as i8;
    }
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row<'a> {
    shape: &'a str,
    kernel: &'a str,
    dims: (usize, usize, usize),
    threads: usize,
    wall_ms: f64,
    naive_ms: f64,
    bitwise_equal: bool,
}

fn push_row(writer: &mut ResultsWriter, row: &Row<'_>) {
    let (m, k, n) = row.dims;
    writer.push(
        writer
            .stamp()
            .field("shape", Json::Str(row.shape.to_string()))
            .field("kernel", Json::Str(row.kernel.to_string()))
            .field("m", Json::Uint(m as u64))
            .field("k", Json::Uint(k as u64))
            .field("n", Json::Uint(n as u64))
            .field("threads", Json::Uint(row.threads as u64))
            .field("wall_ms", Json::Float(row.wall_ms))
            .field("speedup_vs_naive", Json::Float(row.naive_ms / row.wall_ms))
            .field("bitwise_equal", Json::Bool(row.bitwise_equal)),
    );
    println!(
        "{:<18} {:<14} {:>4}x{:<4}x{:<4} threads={} {:>9.3} ms  {:>5.2}x  {}",
        row.shape,
        row.kernel,
        m,
        k,
        n,
        row.threads,
        row.wall_ms,
        row.naive_ms / row.wall_ms,
        if row.bitwise_equal { "bitwise-equal" } else { "MISMATCH" }
    );
}

/// MLP dense shape class: one big float GEMM (batch x in x out).
/// Returns (serial blocked speedup, min speedup) for the final asserts.
fn dense_mlp(writer: &mut ResultsWriter, reps: usize, pool4: &ParPool) -> (f64, f64) {
    let (m, k, n) = (256, 512, 512);
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut bias = vec![0.0f32; n];
    fill_f32(&mut a, 1);
    fill_f32(&mut b, 2);
    fill_f32(&mut bias, 3);

    let mut naive = vec![0.0f32; m * n];
    reference::matmul_f32(m, k, n, &a, &b, Some(&bias), &mut naive);
    let mut blocked = vec![0.0f32; m * n];
    gemm_f32(m, k, n, &a, &b, Some(&bias), &mut blocked);
    let mut par = vec![0.0f32; m * n];
    gemm_f32_auto(pool4, m, k, n, &a, &b, Some(&bias), &mut par);
    let blocked_equal = naive == blocked;
    let par_equal = naive == par;

    let mut scratch = vec![0.0f32; m * n];
    let naive_ms =
        time_ms(reps, || reference::matmul_f32(m, k, n, &a, &b, Some(&bias), &mut scratch));
    let blocked_ms = time_ms(reps, || gemm_f32(m, k, n, &a, &b, Some(&bias), &mut blocked));
    let par_ms = time_ms(reps, || gemm_f32_auto(pool4, m, k, n, &a, &b, Some(&bias), &mut par));

    let dims = (m, k, n);
    push_row(
        writer,
        &Row {
            shape: "dense_mlp",
            kernel: "naive",
            dims,
            threads: 1,
            wall_ms: naive_ms,
            naive_ms,
            bitwise_equal: true,
        },
    );
    push_row(
        writer,
        &Row {
            shape: "dense_mlp",
            kernel: "blocked",
            dims,
            threads: 1,
            wall_ms: blocked_ms,
            naive_ms,
            bitwise_equal: blocked_equal,
        },
    );
    push_row(
        writer,
        &Row {
            shape: "dense_mlp",
            kernel: "blocked_par",
            dims,
            threads: pool4.threads(),
            wall_ms: par_ms,
            naive_ms,
            bitwise_equal: par_equal,
        },
    );
    assert!(blocked_equal && par_equal, "dense_mlp outputs must be bitwise-identical");
    ((naive_ms / blocked_ms), (naive_ms / blocked_ms).min(naive_ms / par_ms))
}

/// Fused int8 shape class: the same GEMM through the quantized kernel,
/// with requantize+ReLU fused into the epilogue vs applied in a second
/// pass over an i32 buffer (what the engines did before fusion).
fn dense_mlp_int8(writer: &mut ResultsWriter, reps: usize) -> f64 {
    let (m, k, n) = (256, 512, 512);
    let mut a = vec![0i8; m * k];
    let mut b = vec![0i8; k * n];
    fill_i8(&mut a, 11);
    fill_i8(&mut b, 12);
    let bias: Vec<i32> = (0..n as i32).map(|j| j * 7 - 512).collect();
    let a_zp = 3i32;
    // a per-column requantize+ReLU of the kind ei-quant's finish() applies
    let epi = |j: usize, acc: i32| {
        let scaled = ((acc as i64 * (1_500_000_000 + j as i64)) >> 40) as i32;
        scaled.clamp(0, 127) as i8
    };

    let naive_once = || {
        let acc = reference::matmul_i8(m, k, n, &a, a_zp, &b, &bias);
        let mut out = vec![0i8; m * n];
        for (i, v) in acc.iter().enumerate() {
            out[i] = epi(i % n, *v);
        }
        out
    };

    let naive = naive_once();
    let mut fused = vec![0i8; m * n];
    gemm_i8_fused(m, k, n, &a, a_zp, &b, &bias, epi, &mut fused);
    let equal = naive == fused;

    let naive_ms = time_ms(reps, || {
        std::hint::black_box(naive_once());
    });
    let fused_ms = time_ms(reps, || gemm_i8_fused(m, k, n, &a, a_zp, &b, &bias, epi, &mut fused));

    let dims = (m, k, n);
    push_row(
        writer,
        &Row {
            shape: "dense_mlp_int8",
            kernel: "naive",
            dims,
            threads: 1,
            wall_ms: naive_ms,
            naive_ms,
            bitwise_equal: true,
        },
    );
    push_row(
        writer,
        &Row {
            shape: "dense_mlp_int8",
            kernel: "blocked_fused",
            dims,
            threads: 1,
            wall_ms: fused_ms,
            naive_ms,
            bitwise_equal: equal,
        },
    );
    assert!(equal, "int8 fused output must be bitwise-identical to requantize-after");
    naive_ms / fused_ms
}

/// KWS conv shape class: a mid-stack DS-CNN conv2d. At ~18 M MACs this
/// sits below `PAR_MIN_IM2COL_MACS`, so the auto path must stay on the
/// direct serial kernel — the reported speedup hovers at 1.0 instead of
/// the 0.88x regression the im2col lowering used to cost here.
fn kws_conv(writer: &mut ResultsWriter, reps: usize, pool1: &ParPool, pool4: &ParPool) -> f64 {
    let g = Conv2dGeom {
        in_h: 49,
        in_w: 10,
        in_c: 64,
        out_c: 64,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: Padding::Same,
    };
    let (oh, ow, _, _) = g.output();
    let dims = (oh * ow, g.kernel_h * g.kernel_w * g.in_c, g.out_c);
    let mut input = vec![0.0f32; g.in_h * g.in_w * g.in_c];
    let mut weights = vec![0.0f32; g.kernel_h * g.kernel_w * g.in_c * g.out_c];
    let mut bias = vec![0.0f32; g.out_c];
    fill_f32(&mut input, 21);
    fill_f32(&mut weights, 22);
    fill_f32(&mut bias, 23);

    let naive = conv2d_forward(&input, &weights, &bias, g);
    let serial = conv2d_forward_auto(pool1, &input, &weights, &bias, g);
    let steals_before = pool4.steals();
    let par = conv2d_forward_auto(pool4, &input, &weights, &bias, g);
    assert_eq!(
        pool4.steals(),
        steals_before,
        "kws_conv is below PAR_MIN_IM2COL_MACS and must dispatch serially"
    );
    let serial_equal = naive == serial;
    let par_equal = naive == par;

    let naive_ms = time_ms(reps, || {
        std::hint::black_box(conv2d_forward(&input, &weights, &bias, g));
    });
    let par_ms = time_ms(reps, || {
        std::hint::black_box(conv2d_forward_auto(pool4, &input, &weights, &bias, g));
    });

    push_row(
        writer,
        &Row {
            shape: "kws_conv",
            kernel: "naive",
            dims,
            threads: 1,
            wall_ms: naive_ms,
            naive_ms,
            bitwise_equal: serial_equal,
        },
    );
    push_row(
        writer,
        &Row {
            shape: "kws_conv",
            kernel: "blocked_par",
            dims,
            threads: pool4.threads(),
            wall_ms: par_ms,
            naive_ms,
            bitwise_equal: par_equal,
        },
    );
    assert!(serial_equal && par_equal, "kws_conv outputs must be bitwise-identical");
    naive_ms / par_ms
}

/// Vision depthwise shape class: 96x96x24, 3x3 per-channel filters.
fn vision_depthwise(
    writer: &mut ResultsWriter,
    reps: usize,
    pool1: &ParPool,
    pool4: &ParPool,
) -> f64 {
    let g = Conv2dGeom {
        in_h: 96,
        in_w: 96,
        in_c: 24,
        out_c: 24,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: Padding::Same,
    };
    let (oh, ow, _, _) = g.output();
    let dims = (oh * ow, g.kernel_h * g.kernel_w, g.in_c);
    let mut input = vec![0.0f32; g.in_h * g.in_w * g.in_c];
    let mut weights = vec![0.0f32; g.kernel_h * g.kernel_w * g.in_c];
    let mut bias = vec![0.0f32; g.in_c];
    fill_f32(&mut input, 31);
    fill_f32(&mut weights, 32);
    fill_f32(&mut bias, 33);

    let naive = depthwise_forward(&input, &weights, &bias, g);
    let serial = depthwise_forward_auto(pool1, &input, &weights, &bias, g);
    let par = depthwise_forward_auto(pool4, &input, &weights, &bias, g);
    let serial_equal = naive == serial;
    let par_equal = naive == par;

    let naive_ms = time_ms(reps, || {
        std::hint::black_box(depthwise_forward(&input, &weights, &bias, g));
    });
    let par_ms = time_ms(reps, || {
        std::hint::black_box(depthwise_forward_auto(pool4, &input, &weights, &bias, g));
    });

    push_row(
        writer,
        &Row {
            shape: "vision_depthwise",
            kernel: "naive",
            dims,
            threads: 1,
            wall_ms: naive_ms,
            naive_ms,
            bitwise_equal: serial_equal,
        },
    );
    push_row(
        writer,
        &Row {
            shape: "vision_depthwise",
            kernel: "blocked_par",
            dims,
            threads: pool4.threads(),
            wall_ms: par_ms,
            naive_ms,
            bitwise_equal: par_equal,
        },
    );
    assert!(serial_equal && par_equal, "depthwise outputs must be bitwise-identical");
    naive_ms / par_ms
}

fn main() {
    let reps = if quick_mode() { 5 } else { 10 };
    let pool1 = ParPool::new(Parallelism::serial());
    let pool4 = ParPool::new(Parallelism::new(4));
    let mut writer = ResultsWriter::new("kernels");

    println!("kernel layer: naive reference vs blocked/fused (best of {reps} reps)");
    println!();
    let (dense_speedup, dense_min) = dense_mlp(&mut writer, reps, &pool4);
    let int8_speedup = dense_mlp_int8(&mut writer, reps);
    let kws_speedup = kws_conv(&mut writer, reps, &pool1, &pool4);
    let depthwise_speedup = vision_depthwise(&mut writer, reps, &pool1, &pool4);

    println!();
    println!("dense_mlp blocked speedup over naive: {dense_speedup:.2}x");
    assert!(
        dense_speedup >= 2.0,
        "blocked GEMM must be at least 2x the naive reference on the large shape \
         (measured {dense_speedup:.2}x)"
    );
    // no shape may regress below the naive reference: shapes the auto
    // gate keeps serial measure ~1.0, and the 0.92 floor absorbs timer
    // noise while still catching the 0.88x im2col regression this gate
    // was added for
    let min_speedup = dense_min.min(int8_speedup).min(kws_speedup).min(depthwise_speedup);
    println!("minimum non-naive speedup: {min_speedup:.2}x");
    assert!(
        min_speedup >= 0.92,
        "a kernel variant regressed below the naive reference (measured {min_speedup:.2}x)"
    );

    writer.write_and_report();
}
