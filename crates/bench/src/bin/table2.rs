//! Regenerates paper Table 2: end-to-end preprocessing + inference times
//! (ms) for KWS/VWW/IC as float32 and int8 across the three boards, with
//! `-` where the model does not fit the board.
//!
//! Also prints the §5.2 ratio analysis: preprocessing share of the
//! end-to-end budget before and after quantization.

use ei_bench::{ms, ResultsWriter, Task};
use ei_device::{Board, Profiler};
use ei_runtime::{EonProgram, ModelArtifact};
use ei_trace::json::Json;

struct Cell {
    dsp_ms: f64,
    inference_ms: f64,
    total_ms: f64,
    fits: bool,
}

fn profile(task: Task, artifact: &ModelArtifact, board: &Board) -> Cell {
    let engine = EonProgram::compile(artifact.clone()).expect("artifact compiles");
    let profiler = Profiler::new(board.clone());
    let report = profiler.profile(Some(task.dsp_cost()), &engine);
    Cell {
        dsp_ms: report.dsp_ms,
        inference_ms: report.inference_ms,
        total_ms: report.total_ms,
        fits: report.fit.fits,
    }
}

fn cell_str(value: f64, fits: bool) -> String {
    if fits {
        ms(value)
    } else {
        "-".to_string()
    }
}

fn main() {
    let mut results = ResultsWriter::new("table2");
    let boards = Board::paper_boards();
    println!("Table 2. Preprocessing and inference times (in milliseconds).");
    println!("'-' indicates the model did not fit due to flash or RAM constraints.");
    println!();
    print!("{:<16}", "");
    for board in &boards {
        print!(" | {:>10} {:>10}", format!("{} F32", short(&board.name)), "Int8");
    }
    println!();

    let mut ratio_notes = Vec::new();
    for task in Task::all() {
        println!("{} inference times", task.name());
        let (float_a, int8_a) = task.untrained_artifacts();
        let mut rows =
            vec![("Preprocessing", Vec::new()), ("Inference", Vec::new()), ("Total", Vec::new())];
        for board in &boards {
            for artifact in [&float_a, &int8_a] {
                let cell = profile(task, artifact, board);
                results.push(
                    results
                        .stamp()
                        .field("task", Json::Str(task.name().to_string()))
                        .field("board", Json::Str(board.name.clone()))
                        .field(
                            "dtype",
                            Json::Str(if artifact.is_quantized() { "int8" } else { "f32" }.into()),
                        )
                        .field("fits", Json::Bool(cell.fits))
                        .field("dsp_ms", Json::Float(cell.dsp_ms))
                        .field("inference_ms", Json::Float(cell.inference_ms))
                        .field("total_ms", Json::Float(cell.total_ms)),
                );
                rows[0].1.push(cell_str(cell.dsp_ms, cell.fits));
                rows[1].1.push(cell_str(cell.inference_ms, cell.fits));
                rows[2].1.push(cell_str(cell.total_ms, cell.fits));
                if cell.fits && artifact.is_quantized() && task == Task::KeywordSpotting {
                    ratio_notes.push(format!(
                        "  {}: preprocessing is {:.0}% of the int8 end-to-end time",
                        board.name,
                        100.0 * cell.dsp_ms / cell.total_ms
                    ));
                }
            }
        }
        for (label, cells) in rows {
            print!("{label:<16}");
            for cell in cells {
                print!(" | {cell:>10}");
            }
            println!();
        }
        println!();
    }

    println!("Section 5.2 analysis — preprocessing can rival optimized inference:");
    for note in ratio_notes {
        println!("{note}");
    }
    println!();
    println!("Quantization speedup (float total / int8 total), KWS:");
    let (float_a, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    for board in &boards {
        let f = profile(Task::KeywordSpotting, &float_a, board);
        let q = profile(Task::KeywordSpotting, &int8_a, board);
        if f.fits && q.fits {
            println!("  {:<24} {:.1}x", board.name, f.total_ms / q.total_ms);
        }
    }

    results.write_and_report();
}

fn short(name: &str) -> String {
    name.split_whitespace().next().unwrap_or(name).to_string()
}
