//! Always-on telemetry overhead bench: proves the `ei-obs` quiet path
//! (per-request histogram + counters + SLO burn-rate evaluation) costs
//! ≤ 5% on top of the serving hot path, and that the flight recorder's
//! fault dumps are byte-identical across pool widths and repeated runs.
//! Writes `results/obs_overhead.json`.
//!
//! Two measurements:
//!
//! 1. **Quiet path** — classify one window through a compiled artifact
//!    `iters` times, bare vs. with [`Obs::record_request`] after every
//!    request (healthy latencies, so no SLO ever fires and the recorder
//!    never dumps — the steady state production runs in). Min-of-repeats
//!    wall time, `overhead_ratio = instrumented / baseline`.
//! 2. **Fault dumps** — replay a deadline-overrun serving trace (pool
//!    widths 1 and 4, each twice) and a job dead-letter flow (twice) on
//!    a [`VirtualClock`]; every replay must produce byte-identical
//!    flight-recorder captures.
//!
//! Set `EDGELAB_QUICK=1` for a shorter timing loop.

use ei_bench::{quick_mode, ResultsWriter};
use ei_core::impulse::ImpulseDesign;
use ei_data::synth::KwsGenerator;
use ei_dsp::{DspConfig, MfccConfig};
use ei_faults::{Clock, VirtualClock};
use ei_nn::presets;
use ei_nn::train::TrainConfig;
use ei_obs::{BurnWindow, Obs, SloSpec};
use ei_par::{ParPool, Parallelism};
use ei_platform::JobScheduler;
use ei_runtime::EngineKind;
use ei_serve::{
    ArtifactKey, CompiledArtifact, InferenceRequest, ModelSource, Outcome, Server, ServerConfig,
};
use ei_trace::json::Json;
use std::sync::Arc;
use std::time::Instant;

const TENANTS: [&str; 8] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

/// Trains the one small model the whole bench serves.
fn model_json() -> String {
    let design = ImpulseDesign::new(
        "obs-overhead",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("bench design is valid");
    let spec = presets::dense_mlp(design.feature_dims().expect("valid design"), 2, 16);
    let config =
        TrainConfig { epochs: 4, batch_size: 8, learning_rate: 0.01, ..TrainConfig::default() };
    design
        .train(&spec, &generator().dataset(6, 7), &config)
        .expect("bench model trains")
        .to_json()
        .expect("serializes")
}

/// An always-on hub with a tight-window latency SLO that healthy
/// traffic never breaches — the full quiet-path cost, nothing skipped.
fn quiet_obs(clock: Arc<VirtualClock>) -> Arc<Obs> {
    Obs::builder(clock as Arc<dyn Clock>)
        .slo(SloSpec::latency("serve-p99", 100.0, 0.99).with_windows(vec![
            BurnWindow { window_ms: 50, burn_threshold: 2.0 },
            BurnWindow { window_ms: 200, burn_threshold: 1.0 },
        ]))
        .build()
}

/// One timed pass over the hot path; returns elapsed ns. The classify
/// result is consumed so the loop cannot be optimized away.
fn quiet_pass(
    artifact: &CompiledArtifact,
    window: &[f32],
    iters: usize,
    clock: &VirtualClock,
    obs: Option<&Obs>,
) -> u64 {
    let start = Instant::now();
    let mut ok = 0u64;
    for i in 0..iters {
        clock.advance_ms(1);
        let out = artifact.classify(window).expect("bench window classifies");
        ok += (out.confidence >= 0.0) as u64;
        if let Some(obs) = obs {
            // healthy latencies: under the 100 ms objective, never bad
            obs.record_request(TENANTS[i % TENANTS.len()], (i % 40) as f64, true);
        }
    }
    assert_eq!(ok, iters as u64, "every classify must succeed");
    start.elapsed().as_nanos() as u64
}

fn request(
    tenant: &str,
    model: &ModelSource,
    window: Vec<f32>,
    deadline_ms: u64,
) -> InferenceRequest {
    InferenceRequest {
        tenant: tenant.to_string(),
        model: model.clone(),
        board: String::new(),
        engine: EngineKind::EonCompiled,
        quantized: false,
        window,
        deadline_ms,
        precomputed: false,
    }
}

/// Deadline-overrun serving trace: the 1 s batch overhead blows the
/// 200 ms deadline, tripping the recorder. Returns the dump JSONLs.
fn deadline_dumps(json: &str, window: &[f32], threads: usize) -> Vec<String> {
    let clock = VirtualClock::shared();
    let obs = quiet_obs(clock.clone());
    let srv = Server::new(
        ServerConfig { batch_overhead_ms: 1_000, ..ServerConfig::default() },
        clock as Arc<dyn Clock>,
        Arc::new(ParPool::with_tracer(Parallelism::new(threads), obs.tracer().clone())),
        obs.tracer().clone(),
    )
    .with_obs(Arc::clone(&obs));
    let model = ModelSource::new("kws", json.to_string());
    let ticket = srv.submit(request("alpha", &model, window.to_vec(), 200)).expect("admitted");
    let completion = srv.resolve(ticket).expect("completed");
    assert!(
        matches!(completion.outcome, Outcome::DeadlineExceeded { .. }),
        "the batch must overrun: {completion:?}"
    );
    obs.dumps().into_iter().map(|d| d.jsonl).collect()
}

/// Job dead-letter flow under an ambient request span. Returns dump
/// JSONLs.
fn dead_letter_dumps() -> Vec<String> {
    let clock = VirtualClock::shared();
    let obs = quiet_obs(clock.clone());
    let scheduler =
        JobScheduler::with_clock_and_tracer(1, clock as Arc<dyn Clock>, obs.tracer().clone());
    let root = obs.tracer().span("bench.request");
    let id = {
        let _ambient = root.enter();
        scheduler.submit(2, || Err("injected failure".into())).expect("submitted")
    };
    assert!(scheduler.wait(id).is_err(), "the job must dead-letter");
    drop(root);
    obs.dumps().into_iter().map(|d| d.jsonl).collect()
}

fn main() {
    let json = model_json();
    let window = generator().generate(0, 3);
    let key = ArtifactKey {
        content_hash: ModelSource::new("kws", json.clone()).content_hash,
        board: String::new(),
        engine: EngineKind::EonCompiled,
        quantized: false,
    };
    let artifact = CompiledArtifact::compile(key, &json).expect("compiles");

    // --- 1. quiet-path overhead, min of interleaved repeats ---
    // many short passes: the min of each variant converges on its true
    // floor, squeezing scheduler noise out of the ratio
    let (iters, repeats) = if quick_mode() { (200, 5) } else { (1_000, 15) };
    // warm-up: touch the classify path once before timing
    let warmup = VirtualClock::shared();
    quiet_pass(&artifact, &window, 10, &warmup, None);

    let (mut baseline_ns, mut instrumented_ns) = (u64::MAX, u64::MAX);
    for _ in 0..repeats {
        let clock = VirtualClock::shared();
        baseline_ns = baseline_ns.min(quiet_pass(&artifact, &window, iters, &clock, None));
        let clock = VirtualClock::shared();
        let obs = quiet_obs(clock.clone());
        instrumented_ns =
            instrumented_ns.min(quiet_pass(&artifact, &window, iters, &clock, Some(&obs)));
        assert!(obs.dumps().is_empty(), "the quiet path must never trip the recorder");
    }
    let overhead_ratio = instrumented_ns as f64 / baseline_ns as f64;

    // --- 2. fault dumps: byte-identical across widths and runs ---
    let reference = deadline_dumps(&json, &window, 1);
    assert!(!reference.is_empty(), "the deadline scenario must dump");
    let mut dumps_identical = true;
    for replay in [
        deadline_dumps(&json, &window, 1),
        deadline_dumps(&json, &window, 4),
        deadline_dumps(&json, &window, 4),
    ] {
        dumps_identical &= replay == reference;
    }
    let letters = dead_letter_dumps();
    assert!(!letters.is_empty(), "the dead-letter scenario must dump");
    dumps_identical &= dead_letter_dumps() == letters;

    println!("obs overhead: {iters} classifications x {repeats} repeats (min)");
    println!("  baseline      {:>12} ns", baseline_ns);
    println!("  instrumented  {:>12} ns", instrumented_ns);
    println!("  overhead      {:>11.3}x (gate: <= 1.05)", overhead_ratio);
    println!(
        "fault dumps: {} deadline + {} dead-letter captures, identical: {dumps_identical}",
        reference.len(),
        letters.len()
    );
    assert!(
        overhead_ratio <= 1.05,
        "always-on telemetry must stay under 5% ({overhead_ratio:.3}x)"
    );
    assert!(dumps_identical, "flight dumps must not depend on pool width or run");

    let mut results = ResultsWriter::new("obs_overhead");
    results.push(
        results
            .stamp()
            .field("kind", Json::Str("quiet_path".into()))
            .field("iters", Json::Uint(iters as u64))
            .field("repeats", Json::Uint(repeats as u64))
            .field("baseline_ns", Json::Uint(baseline_ns))
            .field("instrumented_ns", Json::Uint(instrumented_ns))
            .field("overhead_ratio", Json::Float(overhead_ratio)),
    );
    results.push(
        results
            .stamp()
            .field("kind", Json::Str("fault_dumps".into()))
            .field("deadline_dumps", Json::Uint(reference.len() as u64))
            .field("dead_letter_dumps", Json::Uint(letters.len() as u64))
            .field("dumps_identical", Json::Bool(dumps_identical)),
    );
    results.write_and_report();
}
