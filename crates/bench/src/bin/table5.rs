//! Regenerates paper Table 5: comparison of supported features across
//! MLOps platforms (Y = fully supported, ~ = partial, X = unsupported).

use ei_platform::features::render_table;

fn main() {
    println!("Table 5. Comparison of supported features of MLOps platforms.");
    println!("Y: fully supported, ~: partially supported, X: not supported.");
    println!();
    print!("{}", render_table());
}
