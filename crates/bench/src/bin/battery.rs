//! Battery-life analysis (paper §2.1): how model accuracy becomes an
//! energy budget.
//!
//! For the int8 KWS pipeline on each board, prints (1) battery life on a
//! coin cell across duty cycles, and (2) the §2.1 claim quantified — false
//! accepts trigger radio transmissions, so a worse operating point on the
//! calibration curve directly shortens battery life.

use ei_bench::{ResultsWriter, Task};
use ei_device::energy::energy_per_inference_mj;
use ei_device::{estimate_energy, Battery, Board, EnergyWorkload, Profiler};
use ei_runtime::EonProgram;
use ei_trace::json::Json;

fn main() {
    let mut results = ResultsWriter::new("battery");
    let (_, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let eon = EonProgram::compile(int8_a).expect("compiles");
    let dsp_cost = Task::KeywordSpotting.dsp_cost();

    println!("Battery analysis — int8 KWS pipeline, CR2032 coin cell (675 mWh)");
    println!();
    println!(
        "{:<24} {:>10} {:>14} {:>14} {:>14}",
        "Board", "total ms", "mJ/inference", "life @1 Hz", "life @1/min"
    );
    for board in Board::paper_boards() {
        let profile = Profiler::new(board.clone()).profile(Some(dsp_cost), &eon);
        if !profile.fit.fits {
            println!("{:<24} {:>10}", board.name, "-");
            continue;
        }
        let mj = energy_per_inference_mj(&board, profile.total_ms);
        let continuous = estimate_energy(
            &board,
            EnergyWorkload {
                total_ms: profile.total_ms,
                inferences_per_hour: 3_600.0,
                transmissions_per_hour: 1.0,
            },
            Battery::coin_cell(),
        );
        let duty_cycled = estimate_energy(
            &board,
            EnergyWorkload {
                total_ms: profile.total_ms,
                inferences_per_hour: 60.0,
                transmissions_per_hour: 1.0,
            },
            Battery::coin_cell(),
        );
        println!(
            "{:<24} {:>10.0} {:>14.2} {:>11.1} h {:>11.1} h",
            board.name,
            profile.total_ms,
            mj,
            continuous.battery_life_hours,
            duty_cycled.battery_life_hours,
        );
        results.push(
            results
                .stamp()
                .field("board", Json::Str(board.name.clone()))
                .field("total_ms", Json::Float(profile.total_ms))
                .field("mj_per_inference", Json::Float(mj))
                .field("life_1hz_hours", Json::Float(continuous.battery_life_hours))
                .field("life_1min_hours", Json::Float(duty_cycled.battery_life_hours)),
        );
    }

    println!();
    println!("Section 2.1 quantified — false accepts drain the battery (Nano 33, 1 Hz):");
    let nano = Board::nano33_ble_sense();
    let profile = Profiler::new(nano.clone()).profile(Some(dsp_cost), &eon);
    println!("{:>22} {:>12} {:>12}", "false accepts/hour", "life (h)", "radio share");
    for far_per_hour in [0.0, 5.0, 30.0, 120.0, 600.0] {
        let estimate = estimate_energy(
            &nano,
            EnergyWorkload {
                total_ms: profile.total_ms,
                inferences_per_hour: 3_600.0,
                transmissions_per_hour: 1.0 + far_per_hour,
            },
            Battery::coin_cell(),
        );
        println!(
            "{far_per_hour:>22} {:>12.1} {:>11.1}%",
            estimate.battery_life_hours,
            estimate.radio_share * 100.0
        );
        results.push(
            results
                .stamp()
                .field("board", Json::Str(nano.name.clone()))
                .field("false_accepts_per_hour", Json::Float(far_per_hour))
                .field("life_hours", Json::Float(estimate.battery_life_hours))
                .field("radio_share", Json::Float(estimate.radio_share)),
        );
    }
    println!();
    println!("Quantization as an energy optimization (Nano 33, per inference):");
    let (float_a, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let feon = EonProgram::compile(float_a).expect("compiles");
    let qeon = EonProgram::compile(int8_a).expect("compiles");
    let fp = Profiler::new(nano.clone()).profile(Some(dsp_cost), &feon);
    let qp = Profiler::new(nano.clone()).profile(Some(dsp_cost), &qeon);
    let f_mj = energy_per_inference_mj(&nano, fp.total_ms);
    let q_mj = energy_per_inference_mj(&nano, qp.total_ms);
    println!("  float32: {f_mj:.2} mJ   int8: {q_mj:.2} mJ   saving: {:.1}x", f_mj / q_mj);
    results.push(
        results
            .stamp()
            .field("board", Json::Str(nano.name.clone()))
            .field("float_mj", Json::Float(f_mj))
            .field("int8_mj", Json::Float(q_mj))
            .field("quant_energy_saving", Json::Float(f_mj / q_mj)),
    );
    results.write_and_report();
}
