//! Regenerates paper Figure 2: the Studio project view — the impulse as a
//! block chain with its dataflow, per-block parameters and the ML-workflow
//! steps listed down the side.

use ei_bench::Task;
use ei_core::workflow::workflow_map;
use ei_nn::Sequential;

fn main() {
    let task = Task::KeywordSpotting;
    let design = task.design();
    let block = design.dsp_block().expect("valid dsp");
    let dims = design.feature_dims().expect("valid design");
    let spec = task.model_spec();
    let model = Sequential::build(&spec, 42).expect("preset builds");
    let classes = task.classes();

    println!("Figure 2. Project view: the impulse as connected blocks.");
    println!();
    // workflow steps down the side, as in the Studio's left rail
    println!("workflow steps:");
    for entry in workflow_map() {
        println!("  - {:?}", entry.stage);
    }
    println!();
    // the block chain
    let features = block.output_len(design.window_samples).expect("window fits");
    println!(
        "┌─────────────────────┐   ┌─────────────────────┐   ┌─────────────────────────┐   ┌──────────────────┐"
    );
    println!(
        "│ Time series data    │──►│ {:<19} │──►│ Classification          │──►│ Output features  │",
        block.name()
    );
    println!(
        "│ window: {:>6} smp  │   │ {:<19} │   │ {:<23} │   │ {:<16} │",
        design.window_samples,
        format!("out: {features} features"),
        spec.name,
        format!("{classes} classes"),
    );
    println!(
        "│ axis: audio @16 kHz │   │ {:<19} │   │ {:<23} │   │ {:<16} │",
        format!("shape: {dims}"),
        format!("{} parameters", model.param_count()),
        "yes/no/up/down",
    );
    println!(
        "└─────────────────────┘   └─────────────────────┘   └─────────────────────────┘   └──────────────────┘"
    );
    println!();
    // per-block parameter panel
    println!("processing block parameters: {}", design.dsp.summary());
    println!("learn block layers:");
    for (i, layer) in model.layers().iter().enumerate() {
        println!(
            "  {i:>2}. {:<18} {} -> {}  ({} params, {} MACs)",
            layer.spec.op_name(),
            layer.input,
            layer.output,
            layer.param_count(),
            layer.macs()
        );
    }
}
