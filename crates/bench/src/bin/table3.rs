//! Regenerates paper Table 3: preprocessing blocks and models explored by
//! the EON Tuner for the keyword-spotting task on the Arduino Nano 33 BLE
//! Sense (float32, TFLM interpreter estimates).
//!
//! Columns mirror the paper: accuracy, DSP/NN/total latency, DSP/NN/total
//! RAM, and flash.

use ei_bench::{kb, quick_mode, Task};
use ei_data::synth::KwsGenerator;
use ei_device::{Board, Profiler};
use ei_nn::train::TrainConfig;
use ei_runtime::EngineKind;
use ei_tuner::{EonTuner, SearchSpace, TunerConfig};

fn main() {
    let quick = quick_mode();
    let per_class = if quick { 8 } else { 20 };
    let epochs = if quick { 2 } else { 4 };
    let trials = if quick { 4 } else { 8 };

    // heavier noise and more classes than the quickstart demo, so the
    // accuracy column spreads like the paper's 66-85% band instead of
    // saturating
    let generator = KwsGenerator {
        classes: vec![
            "yes".into(),
            "no".into(),
            "up".into(),
            "down".into(),
            "left".into(),
            "right".into(),
        ],
        noise: 0.45,
        ..KwsGenerator::default()
    };
    let dataset = generator.dataset(per_class, 42);
    let space = SearchSpace::kws_table3(16_000);
    let tuner = EonTuner::new(
        space,
        Profiler::new(Board::nano33_ble_sense()),
        Task::KeywordSpotting.window(),
        TunerConfig {
            trials,
            train: TrainConfig {
                epochs,
                batch_size: 16,
                learning_rate: 0.005,
                ..TrainConfig::default()
            },
            quantize: false,
            engine: EngineKind::TflmInterpreter,
            max_latency_ms: None,
            seed: 7,
        },
    );

    eprintln!("running EON Tuner: {trials} trials x {epochs} epochs ({per_class} clips/class)...");
    let report = tuner.run(&dataset).expect("tuner run succeeds");

    println!("Table 3. Preprocessing blocks and models explored with EON Tuner for the");
    println!("keyword spotting task on the Nano 33 BLE Sense (float32, TFLM estimates).");
    println!();
    println!(
        "{:<24} {:<24} {:>6} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8} | {:>9}",
        "Preprocessing",
        "Model",
        "Acc.",
        "DSP ms",
        "NN ms",
        "Total",
        "DSP kB",
        "NN kB",
        "RAM kB",
        "Flash kB"
    );
    for t in &report.trials {
        println!(
            "{:<24} {:<24} {:>5.0}% | {:>7.0} {:>7.0} {:>7.0} | {:>8} {:>8} {:>8} | {:>9}",
            t.dsp_name,
            t.model_name,
            t.accuracy * 100.0,
            t.dsp_ms,
            t.nn_ms,
            t.total_ms(),
            kb(t.dsp_ram),
            kb(t.nn_ram),
            kb(t.total_ram()),
            kb(t.flash),
        );
    }
    if !report.filtered.is_empty() {
        println!();
        println!("Filtered before training (heuristic estimate):");
        for (c, why) in &report.filtered {
            println!("  {} + {}: {}", c.dsp.summary(), c.model.name(), why);
        }
    }
    println!();
    println!("Pareto front (accuracy vs total latency):");
    for t in report.pareto_front() {
        println!(
            "  {:>4.0}% @ {:>6.0} ms — {} + {}",
            t.accuracy * 100.0,
            t.total_ms(),
            t.dsp_name,
            t.model_name
        );
    }
}
