//! Multi-tenant serving bench: replays a synthetic request trace against
//! [`ei_serve::Server`] and writes throughput, per-tenant latency
//! percentiles, and cache statistics to `results/serving.json`.
//!
//! Three tenants each own a distinct trained KWS-style model and call both
//! engines (TFLM interpreter and EON compiled), so the trace exercises six
//! artifact-cache entries. The server runs on a [`VirtualClock`] with all
//! service costs modeled, which makes the whole bench byte-for-byte
//! reproducible: the trace is replayed twice and the runs are asserted
//! identical. The cold-vs-hit comparison at the top asserts the cache's
//! contract — a hit is at least 5x faster than a cold compile and returns
//! the identical classification.
//!
//! Set `EDGELAB_QUICK=1` for a smoke run with a shorter trace.

use ei_bench::{quick_mode, ResultsWriter};
use ei_core::impulse::ImpulseDesign;
use ei_data::synth::KwsGenerator;
use ei_dsp::{DspConfig, MfccConfig};
use ei_faults::{Clock, VirtualClock};
use ei_nn::presets;
use ei_nn::train::TrainConfig;
use ei_par::{ParPool, Parallelism};
use ei_runtime::EngineKind;
use ei_serve::{InferenceRequest, ModelSource, Outcome, Server, ServerConfig};
use ei_trace::json::Json;
use ei_trace::Tracer;
use std::collections::BTreeMap;
use std::sync::Arc;

const ENGINES: [EngineKind; 2] = [EngineKind::TflmInterpreter, EngineKind::EonCompiled];

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

fn design(name: &str) -> ImpulseDesign {
    ImpulseDesign::new(
        name,
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 20,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("bench design is valid")
}

/// Trains one small model per tenant; hidden sizes differ so each tenant's
/// model has distinct content, weights, and compile cost.
fn tenant_models() -> Vec<(String, ModelSource)> {
    let epochs = if quick_mode() { 3 } else { 10 };
    let gen = generator();
    [("alpha", 16usize, 7u64), ("beta", 24, 8), ("gamma", 32, 9)]
        .into_iter()
        .map(|(tenant, hidden, seed)| {
            let d = design(tenant);
            let spec = presets::dense_mlp(d.feature_dims().expect("valid design"), 2, hidden);
            let config = TrainConfig {
                epochs,
                batch_size: 8,
                learning_rate: 0.01,
                seed,
                ..TrainConfig::default()
            };
            let trained =
                d.train(&spec, &gen.dataset(6, seed), &config).expect("bench model trains");
            let json = trained.to_json().expect("serializes");
            (tenant.to_string(), ModelSource::new(tenant, json))
        })
        .collect()
}

fn request(
    tenant: &str,
    model: &ModelSource,
    engine: EngineKind,
    window: Vec<f32>,
) -> InferenceRequest {
    InferenceRequest {
        tenant: tenant.to_string(),
        model: model.clone(),
        board: String::new(),
        engine,
        quantized: false,
        window,
        deadline_ms: 0,
        precomputed: false,
    }
}

/// Nearest-rank percentile of an ascending-sorted latency series.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Replays the trace once and returns the fully-populated results writer.
fn run_trace(models: &[(String, ModelSource)], print: bool) -> ResultsWriter {
    let clock = VirtualClock::shared();
    let pool = Arc::new(ParPool::new(Parallelism::from_env()));
    let config = ServerConfig {
        queue_capacity: 256,
        quota_capacity: 256,
        quota_refill_per_sec: 256.0,
        ..ServerConfig::default()
    };
    let server = Server::new(config, clock.clone() as Arc<dyn Clock>, pool, Tracer::disabled());
    let gen = generator();

    // Cache contract: a hit must be >= 5x faster than the cold compile and
    // byte-identical to it.
    let (tenant0, model0) = &models[0];
    let probe = gen.generate(0, 1);
    let t = server.submit(request(tenant0, model0, EngineKind::EonCompiled, probe.clone()));
    let cold = server.resolve(t.expect("admitted")).expect("completed");
    let t = server.submit(request(tenant0, model0, EngineKind::EonCompiled, probe));
    let hit = server.resolve(t.expect("admitted")).expect("completed");
    assert!(!cold.cache_hit && hit.cache_hit);
    assert_eq!(cold.outcome, hit.outcome, "cache hit must return the identical classification");
    assert!(
        cold.latency_ms >= 5 * hit.latency_ms.max(1),
        "cold {} ms vs hit {} ms: hit path must be >= 5x faster",
        cold.latency_ms,
        hit.latency_ms
    );
    let speedup = cold.latency_ms as f64 / hit.latency_ms.max(1) as f64;

    let rounds = if quick_mode() { 4 } else { 12 };
    let mut completions = vec![cold, hit];
    for round in 0..rounds {
        for (i, (tenant, model)) in models.iter().enumerate() {
            for engine in ENGINES {
                for rep in 0..2u64 {
                    let seed = (round * 1_000 + i * 100) as u64 + rep;
                    let window = gen.generate((rep % 2) as usize, seed);
                    server
                        .submit(request(tenant, model, engine, window))
                        .expect("trace stays under quota and queue bounds");
                }
            }
        }
        completions.extend(server.drain());
    }

    // group latencies per (tenant, engine) and per tenant across engines
    let mut series: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    let mut by_tenant: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for c in &completions {
        assert!(
            matches!(c.outcome, Outcome::Classified(_)),
            "trace requests must all classify: {c:?}"
        );
        series.entry((c.tenant.clone(), c.engine.to_string())).or_default().push(c.latency_ms);
        by_tenant.entry(c.tenant.clone()).or_default().push(c.latency_ms);
    }

    let stats = server.cache_stats();
    let elapsed_ms = clock.now_ms();
    let throughput_rps = completions.len() as f64 * 1_000.0 / elapsed_ms as f64;

    let mut results = ResultsWriter::new("serving");
    if print {
        println!("serving trace: {} requests over {} virtual ms", completions.len(), elapsed_ms);
        println!(
            "{:<8} {:<6} {:>9} {:>8} {:>8} {:>8}",
            "tenant", "engine", "requests", "p50 ms", "p95 ms", "p99 ms"
        );
    }
    for ((tenant, engine), mut lat) in series {
        lat.sort_unstable();
        let (p50, p95, p99) = (percentile(&lat, 50), percentile(&lat, 95), percentile(&lat, 99));
        if print {
            println!("{tenant:<8} {engine:<6} {:>9} {p50:>8} {p95:>8} {p99:>8}", lat.len());
        }
        results.push(
            results
                .stamp()
                .field("tenant", Json::Str(tenant))
                .field("engine", Json::Str(engine))
                .field("requests", Json::Uint(lat.len() as u64))
                .field("p50_ms", Json::Uint(p50))
                .field("p95_ms", Json::Uint(p95))
                .field("p99_ms", Json::Uint(p99)),
        );
    }
    // per-tenant aggregates across engines: the ground truth an
    // `ei_obs::SloSpec` latency objective for that tenant evaluates
    // against (ei-obs labels `serve.latency_ms` by tenant only)
    for (tenant, mut lat) in by_tenant {
        lat.sort_unstable();
        let (p50, p95, p99) = (percentile(&lat, 50), percentile(&lat, 95), percentile(&lat, 99));
        if print {
            println!("{tenant:<8} {:<6} {:>9} {p50:>8} {p95:>8} {p99:>8}", "all", lat.len());
        }
        results.push(
            results
                .stamp()
                .field("tenant", Json::Str(tenant))
                .field("engine", Json::Str("all".into()))
                .field("slo_ground_truth", Json::Bool(true))
                .field("requests", Json::Uint(lat.len() as u64))
                .field("p50_ms", Json::Uint(p50))
                .field("p95_ms", Json::Uint(p95))
                .field("p99_ms", Json::Uint(p99)),
        );
    }
    if print {
        println!(
            "throughput {throughput_rps:.1} req/s   cache hit rate {:.2} \
             ({} hits / {} misses / {} evictions)   cold/hit speedup {speedup:.1}x",
            stats.hit_rate(),
            stats.hits,
            stats.misses,
            stats.evictions
        );
    }
    results.push(
        results
            .stamp()
            .field("summary", Json::Bool(true))
            .field("requests", Json::Uint(completions.len() as u64))
            .field("virtual_ms", Json::Uint(elapsed_ms))
            .field("throughput_rps", Json::Float(throughput_rps))
            .field("cache_hits", Json::Uint(stats.hits))
            .field("cache_misses", Json::Uint(stats.misses))
            .field("cache_evictions", Json::Uint(stats.evictions))
            .field("cache_hit_rate", Json::Float(stats.hit_rate()))
            .field("cold_hit_speedup", Json::Float(speedup)),
    );
    results
}

fn main() {
    let models = tenant_models();
    let first = run_trace(&models, true);
    let second = run_trace(&models, false);
    assert_eq!(
        first.to_jsonl(),
        second.to_jsonl(),
        "serving trace must be byte-for-byte reproducible under the virtual clock"
    );
    first.write_and_report();
}
