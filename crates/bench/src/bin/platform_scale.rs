//! Platform-scale bench: a deterministic open-loop load harness over the
//! sharded [`ei_platform::Api`], writing latency percentiles, saturation
//! throughput, per-shard occupancy skew, per-shard artifact-cache hit
//! rates and cross-shard-count state equality to
//! `results/platform_scale.json`.
//!
//! The harness generates one seeded arrival schedule — a Poisson process
//! whose rate bursts 5x every fourth block (open-loop: arrivals never wait
//! for completions) — over a population of 10^5 synthetic tenants, each a
//! real project in the sharded store. Every arrival is one platform op:
//!
//! * `classify` / `estimate` — served through the attached serving layer
//!   (admission and artifact-cache shards = store shards) against a
//!   Zipf-style hot set of tenants holding a real trained model;
//! * `job-submit` — a keyed job on the sharded [`JobScheduler`] that
//!   uploads a uniquely-named artifact to a tenant drawn uniformly from
//!   the *whole* population (the long tail);
//! * `stream-push` — a chunk into one of the always-open continuous
//!   inference sessions, pinned to its project's shard.
//!
//! The schedule replays against a real `Api` at shard counts {1, 4, 16,
//! 64}; ops execute in arrival order and mutate real state, and the final
//! `export_json` checksum must be identical at every shard count
//! (`state_identical`). Latency and throughput are *modeled* on the
//! logical timeline by a discrete-event queueing simulation — completion
//! = max(arrival, shard-lock free, worker free) + per-op service cost —
//! at worker widths {1, 4} (the `EI_THREADS` axis; modeled, so the bench
//! is honest on a single-core host, the same idiom as the serving
//! layer's modeled service times). The arrival rate deliberately exceeds
//! single-shard capacity, so throughput reads as saturation capacity:
//! flat across shard counts at 1 worker, scaling with shard count at 4.
//!
//! Two further phases ride on the same schedule:
//!
//! * **Racing replay** — the schedule is re-run from *real* concurrent
//!   OS threads (event `i` goes to thread `i % threads`, no coordination
//!   beyond the platform's own locks) at every shard count × thread
//!   width {1, 4}. The mutating ops commute (each uploads a
//!   uniquely-named artifact), so the final export checksum must equal
//!   the serial replay's byte-for-byte (`racing_state_identical`) — the
//!   linearizability check the modeled timeline cannot provide.
//! * **Cache striping bench** — a seeded access schedule over the real
//!   [`CompiledArtifactCache`] at 1 vs 16 stripes: real lookups drive
//!   hit/miss outcomes (and assert hit artifacts are identical across
//!   stripe counts), while throughput is modeled on the logical
//!   timeline with the stripe lock as the contended resource at 4
//!   workers — misses pay the artifact's modeled compile cost, hits a
//!   constant lookup cost.
//!
//! The whole sweep runs twice and must be byte-for-byte reproducible.
//! Set `EDGELAB_QUICK=1` for a smoke run with a smaller population.

use ei_bench::{quick_mode, ResultsWriter};
use ei_core::impulse::ImpulseDesign;
use ei_data::synth::KwsGenerator;
use ei_dsp::{DspConfig, MfccConfig};
use ei_faults::{Clock, VirtualClock};
use ei_nn::presets;
use ei_nn::train::TrainConfig;
use ei_obs::Obs;
use ei_par::{ParPool, Parallelism};
use ei_platform::{Api, JobScheduler, ProjectId, SessionId, UserId};
use ei_serve::{
    content_hash, ArtifactKey, CompiledArtifact, CompiledArtifactCache, InferenceSpec, Server,
    ServerConfig,
};
use ei_shard::{fnv1a_u64, ShardKey, SplitMix64};
use ei_stream::SessionConfig;
use ei_trace::json::Json;
use ei_trace::Tracer;
use std::sync::Arc;

/// Shard counts swept (the x-axis of the scaling curve).
const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];

/// Modeled worker widths (the `EI_THREADS` axis) — also the real thread
/// counts the racing replay runs at.
const THREADS: [usize; 2] = [1, 4];

/// Arrival-schedule seed.
const SEED: u64 = 0xE15_CA1E;

/// Mean inter-arrival gap (µs) outside bursts.
const BASE_GAP_US: f64 = 1_000.0;

/// Mean inter-arrival gap (µs) inside a burst (5x the base rate).
const BURST_GAP_US: f64 = 200.0;

/// Events per burst-phase block; every fourth block is a burst.
const BLOCK: usize = 250;

/// Modeled service cost per op (µs): classify, estimate, job, stream.
const SERVICE_US: [u64; 4] = [3_000, 5_000, 8_000, 2_000];

/// Cache-stripe counts compared by the cache striping bench.
const CACHE_SHARD_CONFIGS: [usize; 2] = [1, 16];

/// Modeled workers racing for cache stripes in the cache bench.
const CACHE_WORKERS: usize = 4;

/// Modeled cost (µs) of a cache *hit* — the lock-and-lookup path.
const CACHE_HIT_US: u64 = 50;

/// Per-stripe capacity used by the cache bench (entries per stripe).
const CACHE_BENCH_CAPACITY: usize = 8;

/// Distinct tenants hammering the cache in the cache bench — chosen to
/// overflow one 8-entry stripe (forcing LRU churn at 1 stripe) while
/// fitting comfortably at 16 stripes.
const CACHE_TENANTS: usize = 12;

/// One scheduled arrival.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Arrival time on the logical timeline (µs).
    at_us: u64,
    /// 0 = classify, 1 = estimate, 2 = job-submit, 3 = stream-push.
    op: usize,
    /// Index into the tenant population (hot set for serving ops).
    tenant: usize,
    /// Raw project key the op contends on (filled after setup).
    key: u64,
}

/// Scale knobs, shrunk under `EDGELAB_QUICK=1`.
struct Scale {
    tenants: usize,
    events: usize,
    hot: usize,
    streams: usize,
    cache_accesses: usize,
}

fn scale() -> Scale {
    if quick_mode() {
        Scale { tenants: 5_000, events: 1_500, hot: 16, streams: 4, cache_accesses: 600 }
    } else {
        Scale { tenants: 100_000, events: 20_000, hot: 32, streams: 8, cache_accesses: 2_400 }
    }
}

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

/// One shared tiny KWS model for the hot set (window 1000, MFCC).
fn model_json() -> String {
    let design = ImpulseDesign::new(
        "scale-kws",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("bench design is valid");
    let spec = presets::dense_mlp(design.feature_dims().expect("valid design"), 2, 8);
    let config = TrainConfig {
        epochs: 2,
        batch_size: 8,
        learning_rate: 0.01,
        seed: 13,
        ..TrainConfig::default()
    };
    design
        .train(&spec, &generator().dataset(4, 13), &config)
        .expect("bench model trains")
        .to_json()
        .expect("serializes")
}

/// The seeded Poisson+bursty arrival schedule (tenant keys unfilled).
fn schedule(scale: &Scale) -> Vec<Event> {
    let mut rng = SplitMix64::new(SEED);
    let mut t_us = 0u64;
    (0..scale.events)
        .map(|i| {
            let burst = (i / BLOCK) % 4 == 3;
            let mean = if burst { BURST_GAP_US } else { BASE_GAP_US };
            // exponential inter-arrival; 1-u keeps the argument in (0, 1]
            let gap = (-(1.0 - rng.next_f64()).ln() * mean).round().max(1.0) as u64;
            t_us += gap;
            let op = match rng.next_u64() % 100 {
                0..=34 => 0,  // classify
                35..=54 => 1, // estimate
                55..=79 => 2, // job-submit
                _ => 3,       // stream-push
            };
            let tenant = if op == 2 {
                (rng.next_u64() % scale.tenants as u64) as usize
            } else if op == 3 {
                (rng.next_u64() % scale.streams as u64) as usize
            } else {
                (rng.next_u64() % scale.hot as u64) as usize
            };
            Event { at_us: t_us, op, tenant, key: 0 }
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted series.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// `hits / lookups` of one counter snapshot (0 when the stripe was idle).
fn hit_rate(stats: &ei_serve::CacheStats) -> f64 {
    let lookups = stats.hits + stats.misses;
    if lookups == 0 {
        0.0
    } else {
        stats.hits as f64 / lookups as f64
    }
}

/// What one real replay at a fixed shard count produced.
struct Replay {
    /// FNV-1a checksum of the final `export_json` bytes.
    state_checksum: u64,
    /// `max/mean` occupancy across the project shards.
    occupancy_skew: f64,
    /// Merged artifact-cache hit rate across every stripe.
    cache_hit_rate: f64,
    /// Per-stripe hit rates, in stripe-index order.
    cache_shard_hit_rates: Vec<f64>,
    /// Ops whose admission was refused (must be 0 — the harness sizes
    /// quotas and queues so rejection never hides a scaling effect).
    rejected: u64,
}

/// A fully provisioned platform under test: real sharded store, serving
/// layer (admission + cache stripes = store shards), sharded scheduler,
/// synthetic population with the hot set modeled and streaming. Both the
/// serial and the racing replay drive one of these, so any divergence
/// between them is the replay's, not the setup's.
struct Harness {
    clock: Arc<VirtualClock>,
    obs: Arc<Obs>,
    api: Api,
    scheduler: JobScheduler,
    population: Vec<(ProjectId, UserId)>,
    sessions: Vec<SessionId>,
    signal: Vec<f32>,
    window: Vec<f32>,
    classify_spec: InferenceSpec,
    estimate_spec: InferenceSpec,
}

fn setup(shards: usize, scale: &Scale, model: &str) -> Harness {
    let clock = VirtualClock::shared();
    let obs = Obs::builder(clock.clone() as Arc<dyn Clock>).build();
    let api = Api::with_shards(shards);
    api.attach_obs(&obs);
    let pool = Arc::new(ParPool::new(Parallelism::new(2)));
    let server_config = ServerConfig {
        queue_capacity: 4_096,
        quota_capacity: 1 << 20,
        quota_refill_per_sec: 1e6,
        cache_capacity: 8,
        admission_shards: shards,
        cache_shards: shards,
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::new(
        server_config,
        clock.clone() as Arc<dyn Clock>,
        Arc::clone(&pool),
        Tracer::disabled(),
    ));
    api.attach_serving(server).expect("fresh api attaches serving");
    let scheduler = JobScheduler::with_sharded_pool(Arc::clone(&pool), shards);

    // population: every synthetic tenant is a real user + project
    let population: Vec<(ProjectId, UserId)> = (0..scale.tenants)
        .map(|i| {
            let user = api.create_user(&format!("u{i}"));
            let project = api.create_project(&format!("p{i}"), user).expect("user exists");
            (project, user)
        })
        .collect();
    // the hot set holds the real model; the first few also stream
    for &(project, user) in &population[..scale.hot] {
        api.upload_model(project, user, "m", model.to_string()).expect("hot tenant uploads");
    }
    let sessions: Vec<SessionId> = population[..scale.streams]
        .iter()
        .map(|&(project, user)| {
            api.stream_open(project, user, "m", SessionConfig::new("", 256))
                .expect("hot tenant streams")
        })
        .collect();
    let signal: Vec<f32> =
        (0..4).flat_map(|i| generator().generate(i % 2, 17 + i as u64)).collect();
    let window = signal[..1_000].to_vec();
    let classify_spec = InferenceSpec::new("m", ei_runtime_engine());
    let estimate_spec = classify_spec.clone().on_board("nano 33");
    Harness {
        clock,
        obs,
        api,
        scheduler,
        population,
        sessions,
        signal,
        window,
        classify_spec,
        estimate_spec,
    }
}

impl Harness {
    /// Drains outstanding jobs, closes every stream, stops the scheduler
    /// and returns the FNV-1a checksum of the final `export_json` bytes.
    fn finish(mut self, jobs: Vec<u64>) -> u64 {
        for id in jobs {
            self.scheduler.wait(id).expect("job-submit uploads succeed");
        }
        for (&session, &(_, user)) in self.sessions.iter().zip(&self.population) {
            self.api.stream_close(session, user).expect("session closes");
        }
        self.scheduler.shutdown();
        self.api.export_json().expect("state exports").as_str().shard_hash()
    }
}

/// Replays the schedule serially against a real sharded `Api`, filling
/// each event's contention key, and returns the final-state checksum plus
/// the skew/cache telemetry the consolidated `shard_report` exposes.
fn replay(events: &mut [Event], shards: usize, scale: &Scale, model: &str) -> Replay {
    let harness = setup(shards, scale, model);
    let api = &harness.api;
    let mut jobs = Vec::new();
    let mut pushed = vec![0usize; scale.streams];
    let mut rejected = 0u64;
    for (i, ev) in events.iter_mut().enumerate() {
        // open-loop arrivals drive the logical clock forward
        let at_ms = ev.at_us / 1_000;
        let now = harness.clock.now_ms();
        if at_ms > now {
            harness.clock.advance_ms(at_ms - now);
        }
        match ev.op {
            0 => {
                let (project, user) = harness.population[ev.tenant];
                ev.key = project.0;
                if api
                    .classify(project, user, &harness.classify_spec, harness.window.clone())
                    .is_err()
                {
                    rejected += 1;
                }
            }
            1 => {
                let (project, user) = harness.population[ev.tenant];
                ev.key = project.0;
                api.estimate(project, user, &harness.estimate_spec).expect("estimate runs");
            }
            2 => {
                let (project, user) = harness.population[ev.tenant];
                ev.key = project.0;
                let api2 = api.clone();
                let name = format!("job-{i}");
                let payload = format!("{{\"job\":{i}}}");
                let id = harness
                    .scheduler
                    .submit_keyed(project.0, 1, move || {
                        api2.upload_model(project, user, &name, payload.clone())
                            .map_err(|e| e.to_string())?;
                        Ok(name.clone())
                    })
                    .expect("scheduler accepts");
                jobs.push(id);
            }
            _ => {
                let (project, user) = harness.population[ev.tenant];
                ev.key = project.0;
                let off = (pushed[ev.tenant] * 250) % (harness.signal.len() - 250);
                pushed[ev.tenant] += 1;
                api.stream_push(harness.sessions[ev.tenant], user, &harness.signal[off..off + 250])
                    .expect("stream accepts");
            }
        }
    }

    // shard telemetry flowed into the obs registry during the replay
    let prom = harness.obs.prometheus();
    assert!(
        prom.contains("platform_shard_occupancy"),
        "shard occupancy gauges must reach the obs registry"
    );

    // the consolidated report carries skew + striped cache counters
    let report = api.shard_report();
    let occupancy_skew = report.skew;
    let cache = report.cache.expect("serving layer attached");
    let cache_shard_hit_rates: Vec<f64> = report.cache_shards.iter().map(hit_rate).collect();
    assert_eq!(cache_shard_hit_rates.len(), shards, "one counter set per cache stripe");
    let cache_hit_rate = hit_rate(&cache);

    let state_checksum = harness.finish(jobs);
    Replay { state_checksum, occupancy_skew, cache_hit_rate, cache_shard_hit_rates, rejected }
}

/// Replays the schedule from `threads` real OS threads (event `i` runs on
/// thread `i % threads`), coordinated only by the platform's own locks,
/// and returns the final-state checksum. Serving/stream errors are
/// tolerated (admission under a frozen clock is timing-dependent and none
/// of those ops mutate exported state); the state-mutating job uploads
/// must all succeed. The returned checksum must equal the serial one: the
/// mutating ops commute, so any divergence is a lost or duplicated update
/// inside the sharded store.
fn racing_replay(
    events: &[Event],
    shards: usize,
    threads: usize,
    scale: &Scale,
    model: &str,
) -> u64 {
    let harness = setup(shards, scale, model);
    let mut jobs: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let harness = &harness;
                scope.spawn(move || {
                    let api = &harness.api;
                    let mut jobs = Vec::new();
                    let mut pushed = vec![0usize; scale.streams];
                    for (i, ev) in events.iter().enumerate().filter(|(i, _)| i % threads == t) {
                        let (project, user) = harness.population[ev.tenant];
                        match ev.op {
                            0 => {
                                let _ = api.classify(
                                    project,
                                    user,
                                    &harness.classify_spec,
                                    harness.window.clone(),
                                );
                            }
                            1 => {
                                let _ = api.estimate(project, user, &harness.estimate_spec);
                            }
                            2 => {
                                let api2 = api.clone();
                                let name = format!("job-{i}");
                                let payload = format!("{{\"job\":{i}}}");
                                let id = harness
                                    .scheduler
                                    .submit_keyed(project.0, 1, move || {
                                        api2.upload_model(project, user, &name, payload.clone())
                                            .map_err(|e| e.to_string())?;
                                        Ok(name.clone())
                                    })
                                    .expect("scheduler accepts");
                                jobs.push(id);
                            }
                            _ => {
                                let off = (pushed[ev.tenant] * 250) % (harness.signal.len() - 250);
                                pushed[ev.tenant] += 1;
                                let _ = api.stream_push(
                                    harness.sessions[ev.tenant],
                                    user,
                                    &harness.signal[off..off + 250],
                                );
                            }
                        }
                    }
                    jobs
                })
            })
            .collect();
        for handle in handles {
            jobs.extend(handle.join().expect("racing thread completes"));
        }
    });
    harness.finish(jobs)
}

/// The engine the hot-set model serves with.
fn ei_runtime_engine() -> ei_runtime::EngineKind {
    ei_runtime::EngineKind::EonCompiled
}

/// Discrete-event queueing model of the replay: ops execute FIFO by
/// arrival, each needing its project's shard lock and one of `workers`
/// pool workers; completion = max(arrival, shard free, worker free) +
/// service. Returns (p50, p95, p99) sojourn µs and throughput (ops/s
/// over the makespan).
fn simulate(events: &[Event], shards: usize, workers: usize) -> (u64, u64, u64, f64) {
    let mut shard_free = vec![0u64; shards];
    let mut worker_free = vec![0u64; workers];
    let mut sojourn: Vec<u64> = Vec::with_capacity(events.len());
    let mut end = 0u64;
    for ev in events {
        let shard = (fnv1a_u64(ev.key) % shards as u64) as usize;
        let worker = (0..workers).min_by_key(|&w| worker_free[w]).expect("workers >= 1");
        let start = ev.at_us.max(shard_free[shard]).max(worker_free[worker]);
        let done = start + SERVICE_US[ev.op];
        shard_free[shard] = done;
        worker_free[worker] = done;
        sojourn.push(done - ev.at_us);
        end = end.max(done);
    }
    sojourn.sort_unstable();
    let span_s = (end - events[0].at_us) as f64 / 1e6;
    let throughput = events.len() as f64 / span_s;
    (percentile(&sojourn, 50), percentile(&sojourn, 95), percentile(&sojourn, 99), throughput)
}

/// Cache striping bench: one seeded tenant/arrival schedule replayed
/// against a real [`CompiledArtifactCache`] at each stripe count in
/// [`CACHE_SHARD_CONFIGS`]. Lookups are real (hit/miss counters and the
/// returned artifacts come from the cache under test; artifacts must be
/// identical across stripe counts), throughput is modeled: each access
/// needs its tenant's stripe lock and one of [`CACHE_WORKERS`] workers,
/// paying the artifact's modeled compile cost on a miss and
/// [`CACHE_HIT_US`] on a hit. Returns the 16-vs-1-stripe speedup.
fn cache_bench(results: &mut ResultsWriter, scale: &Scale, model: &str, print: bool) -> f64 {
    let content = content_hash(model);
    // seeded accesses: tenant drawn uniformly, exponential inter-arrival
    let mut rng = SplitMix64::new(SEED ^ 0xCAC4E);
    let mut t_us = 0u64;
    let accesses: Vec<(usize, u64)> = (0..scale.cache_accesses)
        .map(|_| {
            let gap = (-(1.0 - rng.next_f64()).ln() * 200.0).round().max(1.0) as u64;
            t_us += gap;
            ((rng.next_u64() % CACHE_TENANTS as u64) as usize, t_us)
        })
        .collect();
    // per-tenant artifact fingerprints from the first config, checked by
    // the second: a striped hit must hand back the same compiled bytes
    let mut reference: Vec<Option<(u64, usize, usize)>> = vec![None; CACHE_TENANTS];
    let mut throughputs = Vec::new();
    for &stripes in &CACHE_SHARD_CONFIGS {
        let cache =
            CompiledArtifactCache::with_shards(CACHE_BENCH_CAPACITY, stripes, Tracer::disabled());
        let mut stripe_free = vec![0u64; stripes];
        let mut worker_free = [0u64; CACHE_WORKERS];
        let mut end = 0u64;
        for &(tenant, at_us) in &accesses {
            let tenant_name = format!("cache-t{tenant}");
            // every tenant compiles the model for its own board, so keys
            // are distinct and LRU churn is real at one stripe
            let key = ArtifactKey {
                content_hash: content,
                board: format!("board-{tenant}"),
                engine: ei_runtime_engine(),
                quantized: false,
            };
            let (artifact, hit) = cache
                .get_or_insert_with(&tenant_name, &key, || {
                    CompiledArtifact::compile(key.clone(), model)
                })
                .expect("bench model compiles");
            assert_eq!(artifact.key(), &key, "cache must return the requested artifact");
            let fingerprint = (
                artifact.compile_cost_ms(),
                artifact.plan().arena_bytes,
                artifact.memory().ram_total(),
            );
            match &reference[tenant] {
                None => reference[tenant] = Some(fingerprint),
                Some(prev) => assert_eq!(
                    prev, &fingerprint,
                    "hit artifacts must be identical across stripe counts"
                ),
            }
            let stripe = cache.shard_of(&tenant_name);
            let worker = (0..CACHE_WORKERS).min_by_key(|&w| worker_free[w]).expect("workers");
            let start = at_us.max(stripe_free[stripe]).max(worker_free[worker]);
            let cost = if hit { CACHE_HIT_US } else { artifact.compile_cost_ms() * 1_000 };
            let done = start + cost;
            stripe_free[stripe] = done;
            worker_free[worker] = done;
            end = end.max(done);
        }
        let stats = cache.stats();
        let shard_stats = cache.shard_stats();
        assert_eq!(shard_stats.len(), stripes);
        let span_s = (end - accesses[0].1) as f64 / 1e6;
        let throughput = accesses.len() as f64 / span_s;
        throughputs.push(throughput);
        if print {
            println!(
                "cache   {stripes:>3} stripes {:>10.1} ops/s  hit rate {:.3}  evictions {}",
                throughput,
                hit_rate(&stats),
                stats.evictions
            );
        }
        results.push(
            results
                .stamp()
                .field("cache_bench", Json::Bool(true))
                .field("cache_shards", Json::Uint(stripes as u64))
                .field("cache_workers", Json::Uint(CACHE_WORKERS as u64))
                .field("cache_tenants", Json::Uint(CACHE_TENANTS as u64))
                .field("cache_accesses", Json::Uint(accesses.len() as u64))
                .field("cache_hit_rate", Json::Float(hit_rate(&stats)))
                .field(
                    "cache_shard_hit_rates",
                    Json::Array(shard_stats.iter().map(|s| Json::Float(hit_rate(s))).collect()),
                )
                .field("cache_evictions", Json::Uint(stats.evictions))
                .field("cache_throughput_ops_per_s", Json::Float(throughput)),
        );
    }
    throughputs[1] / throughputs[0]
}

/// Runs the full sweep once and returns the populated writer.
fn run_sweep(scale: &Scale, model: &str, print: bool) -> ResultsWriter {
    let mut results = ResultsWriter::new("platform_scale");
    if print {
        println!(
            "{:<7} {:>8} {:>10} {:>10} {:>10} {:>12} {:>6} {:>6} {:>9} {:>7}",
            "shards",
            "threads",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "ops/s",
            "skew",
            "state",
            "cache hit",
            "racing"
        );
    }
    let mut reference_checksum = None;
    let mut by_threads: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len()];
    for &shards in &SHARD_COUNTS {
        let mut events = schedule(scale);
        let replayed = replay(&mut events, shards, scale, model);
        assert_eq!(replayed.rejected, 0, "harness sizing must avoid admission rejections");
        let reference = *reference_checksum.get_or_insert(replayed.state_checksum);
        let identical = replayed.state_checksum == reference;
        for (t, &threads) in THREADS.iter().enumerate() {
            let (p50, p95, p99, throughput) = simulate(&events, shards, threads);
            by_threads[t].push(throughput);
            // the racing replay re-runs the same schedule from real
            // threads and must land on the serial checksum
            let racing_checksum = racing_replay(&events, shards, threads, scale, model);
            let racing_identical = racing_checksum == replayed.state_checksum;
            assert!(
                racing_identical,
                "racing replay diverged from serial at {shards} shards x {threads} threads"
            );
            if print {
                println!(
                    "{shards:<7} {threads:>8} {:>10.1} {:>10.1} {:>10.1} {throughput:>12.1} \
                     {:>6.2} {identical:>6} {:>9.3} {racing_identical:>7}",
                    p50 as f64 / 1e3,
                    p95 as f64 / 1e3,
                    p99 as f64 / 1e3,
                    replayed.occupancy_skew,
                    replayed.cache_hit_rate,
                );
            }
            results.push(
                results
                    .stamp()
                    .field("shards", Json::Uint(shards as u64))
                    .field("threads", Json::Uint(threads as u64))
                    .field("tenants", Json::Uint(scale.tenants as u64))
                    .field("ops", Json::Uint(events.len() as u64))
                    .field("p50_ms", Json::Float(p50 as f64 / 1e3))
                    .field("p95_ms", Json::Float(p95 as f64 / 1e3))
                    .field("p99_ms", Json::Float(p99 as f64 / 1e3))
                    .field("throughput_ops_per_s", Json::Float(throughput))
                    .field("occupancy_skew", Json::Float(replayed.occupancy_skew))
                    .field("cache_hit_rate", Json::Float(replayed.cache_hit_rate))
                    .field(
                        "cache_shard_hit_rates",
                        Json::Array(
                            replayed
                                .cache_shard_hit_rates
                                .iter()
                                .map(|&r| Json::Float(r))
                                .collect(),
                        ),
                    )
                    .field("state_checksum", Json::Str(format!("{:016x}", replayed.state_checksum)))
                    .field("state_identical", Json::Bool(identical))
                    .field("racing_state_checksum", Json::Str(format!("{racing_checksum:016x}")))
                    .field("racing_state_identical", Json::Bool(racing_identical)),
            );
        }
    }
    // throughput must scale monotonically with shard count at every width
    for (t, series) in by_threads.iter().enumerate() {
        for pair in series.windows(2) {
            assert!(
                pair[1] >= pair[0] * 0.999,
                "throughput must not regress as shards grow (threads {}): {series:?}",
                THREADS[t]
            );
        }
    }
    let cache_speedup = cache_bench(&mut results, scale, model, print);
    assert!(
        cache_speedup >= 1.5,
        "16-stripe cache must beat 1 stripe by >= 1.5x at {CACHE_WORKERS} workers, \
         got {cache_speedup:.2}x"
    );
    let wide = &by_threads[THREADS.len() - 1];
    let speedup = wide[2] / wide[0]; // 16 shards vs 1 shard at 4 workers
    results.push(
        results
            .stamp()
            .field("summary", Json::Bool(true))
            .field("monotone_throughput", Json::Bool(true))
            .field("speedup_16_over_1_at_4_threads", Json::Float(speedup))
            .field("cache_speedup_16_over_1_at_4_threads", Json::Float(cache_speedup))
            .field("state_identical", Json::Bool(true))
            .field("racing_state_identical", Json::Bool(true)),
    );
    results
}

fn main() {
    let scale = scale();
    let model = model_json();
    let first = run_sweep(&scale, &model, true);
    let second = run_sweep(&scale, &model, false);
    assert_eq!(
        first.to_jsonl(),
        second.to_jsonl(),
        "platform-scale sweep must be byte-for-byte reproducible"
    );
    first.write_and_report();
}
