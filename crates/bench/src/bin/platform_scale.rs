//! Platform-scale bench: a deterministic open-loop load harness over the
//! sharded [`ei_platform::Api`], writing latency percentiles, saturation
//! throughput, per-shard occupancy skew and cross-shard-count state
//! equality to `results/platform_scale.json`.
//!
//! The harness generates one seeded arrival schedule — a Poisson process
//! whose rate bursts 5x every fourth block (open-loop: arrivals never wait
//! for completions) — over a population of 10^5 synthetic tenants, each a
//! real project in the sharded store. Every arrival is one platform op:
//!
//! * `classify` / `estimate` — served through the attached serving layer
//!   (admission shards = store shards) against a Zipf-style hot set of
//!   tenants holding a real trained model;
//! * `job-submit` — a keyed job on the sharded [`JobScheduler`] that
//!   uploads a uniquely-named artifact to a tenant drawn uniformly from
//!   the *whole* population (the long tail);
//! * `stream-push` — a chunk into one of the always-open continuous
//!   inference sessions, pinned to its project's shard.
//!
//! The schedule replays against a real `Api` at shard counts {1, 4, 16,
//! 64}; ops execute in arrival order and mutate real state, and the final
//! `export_json` checksum must be identical at every shard count
//! (`state_identical`). Latency and throughput are *modeled* on the
//! logical timeline by a discrete-event queueing simulation — completion
//! = max(arrival, shard-lock free, worker free) + per-op service cost —
//! at worker widths {1, 4} (the `EI_THREADS` axis; modeled, so the bench
//! is honest on a single-core host, the same idiom as the serving
//! layer's modeled service times). The arrival rate deliberately exceeds
//! single-shard capacity, so throughput reads as saturation capacity:
//! flat across shard counts at 1 worker, scaling with shard count at 4.
//!
//! The whole sweep runs twice and must be byte-for-byte reproducible.
//! Set `EDGELAB_QUICK=1` for a smoke run with a smaller population.

use ei_bench::{quick_mode, ResultsWriter};
use ei_core::impulse::ImpulseDesign;
use ei_data::synth::KwsGenerator;
use ei_dsp::{DspConfig, MfccConfig};
use ei_faults::{Clock, VirtualClock};
use ei_nn::presets;
use ei_nn::train::TrainConfig;
use ei_obs::Obs;
use ei_par::{ParPool, Parallelism};
use ei_platform::{Api, JobScheduler, ProjectId, UserId};
use ei_serve::{InferenceSpec, Server, ServerConfig};
use ei_shard::{fnv1a_u64, ShardKey, SplitMix64};
use ei_stream::SessionConfig;
use ei_trace::json::Json;
use ei_trace::Tracer;
use std::sync::Arc;

/// Shard counts swept (the x-axis of the scaling curve).
const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];

/// Modeled worker widths (the `EI_THREADS` axis).
const THREADS: [usize; 2] = [1, 4];

/// Arrival-schedule seed.
const SEED: u64 = 0xE15_CA1E;

/// Mean inter-arrival gap (µs) outside bursts.
const BASE_GAP_US: f64 = 1_000.0;

/// Mean inter-arrival gap (µs) inside a burst (5x the base rate).
const BURST_GAP_US: f64 = 200.0;

/// Events per burst-phase block; every fourth block is a burst.
const BLOCK: usize = 250;

/// Modeled service cost per op (µs): classify, estimate, job, stream.
const SERVICE_US: [u64; 4] = [3_000, 5_000, 8_000, 2_000];

/// One scheduled arrival.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Arrival time on the logical timeline (µs).
    at_us: u64,
    /// 0 = classify, 1 = estimate, 2 = job-submit, 3 = stream-push.
    op: usize,
    /// Index into the tenant population (hot set for serving ops).
    tenant: usize,
    /// Raw project key the op contends on (filled after setup).
    key: u64,
}

/// Scale knobs, shrunk under `EDGELAB_QUICK=1`.
struct Scale {
    tenants: usize,
    events: usize,
    hot: usize,
    streams: usize,
}

fn scale() -> Scale {
    if quick_mode() {
        Scale { tenants: 5_000, events: 1_500, hot: 16, streams: 4 }
    } else {
        Scale { tenants: 100_000, events: 20_000, hot: 32, streams: 8 }
    }
}

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

/// One shared tiny KWS model for the hot set (window 1000, MFCC).
fn model_json() -> String {
    let design = ImpulseDesign::new(
        "scale-kws",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("bench design is valid");
    let spec = presets::dense_mlp(design.feature_dims().expect("valid design"), 2, 8);
    let config = TrainConfig {
        epochs: 2,
        batch_size: 8,
        learning_rate: 0.01,
        seed: 13,
        ..TrainConfig::default()
    };
    design
        .train(&spec, &generator().dataset(4, 13), &config)
        .expect("bench model trains")
        .to_json()
        .expect("serializes")
}

/// The seeded Poisson+bursty arrival schedule (tenant keys unfilled).
fn schedule(scale: &Scale) -> Vec<Event> {
    let mut rng = SplitMix64::new(SEED);
    let mut t_us = 0u64;
    (0..scale.events)
        .map(|i| {
            let burst = (i / BLOCK) % 4 == 3;
            let mean = if burst { BURST_GAP_US } else { BASE_GAP_US };
            // exponential inter-arrival; 1-u keeps the argument in (0, 1]
            let gap = (-(1.0 - rng.next_f64()).ln() * mean).round().max(1.0) as u64;
            t_us += gap;
            let op = match rng.next_u64() % 100 {
                0..=34 => 0,  // classify
                35..=54 => 1, // estimate
                55..=79 => 2, // job-submit
                _ => 3,       // stream-push
            };
            let tenant = if op == 2 {
                (rng.next_u64() % scale.tenants as u64) as usize
            } else if op == 3 {
                (rng.next_u64() % scale.streams as u64) as usize
            } else {
                (rng.next_u64() % scale.hot as u64) as usize
            };
            Event { at_us: t_us, op, tenant, key: 0 }
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted series.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// What one real replay at a fixed shard count produced.
struct Replay {
    /// FNV-1a checksum of the final `export_json` bytes.
    state_checksum: u64,
    /// `max/mean` occupancy across the project shards.
    occupancy_skew: f64,
    /// Ops whose admission was refused (must be 0 — the harness sizes
    /// quotas and queues so rejection never hides a scaling effect).
    rejected: u64,
}

/// Replays the schedule against a real sharded `Api`, filling each
/// event's contention key, and returns the final-state checksum.
fn replay(events: &mut [Event], shards: usize, scale: &Scale, model: &str) -> Replay {
    let clock = VirtualClock::shared();
    let obs = Obs::builder(clock.clone() as Arc<dyn Clock>).build();
    let api = Api::with_shards(shards);
    api.attach_obs(&obs);
    let pool = Arc::new(ParPool::new(Parallelism::new(2)));
    let server_config = ServerConfig {
        queue_capacity: 4_096,
        quota_capacity: 1 << 20,
        quota_refill_per_sec: 1e6,
        cache_capacity: 8,
        admission_shards: shards,
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::new(
        server_config,
        clock.clone() as Arc<dyn Clock>,
        Arc::clone(&pool),
        Tracer::disabled(),
    ));
    api.attach_serving(server).expect("fresh api attaches serving");
    let mut scheduler = JobScheduler::with_sharded_pool(Arc::clone(&pool), shards);

    // population: every synthetic tenant is a real user + project
    let population: Vec<(ProjectId, UserId)> = (0..scale.tenants)
        .map(|i| {
            let user = api.create_user(&format!("u{i}"));
            let project = api.create_project(&format!("p{i}"), user).expect("user exists");
            (project, user)
        })
        .collect();
    // the hot set holds the real model; the first few also stream
    for &(project, user) in &population[..scale.hot] {
        api.upload_model(project, user, "m", model.to_string()).expect("hot tenant uploads");
    }
    let sessions: Vec<u64> = population[..scale.streams]
        .iter()
        .map(|&(project, user)| {
            api.stream_open(project, user, "m", SessionConfig::new("", 256))
                .expect("hot tenant streams")
        })
        .collect();
    let signal: Vec<f32> =
        (0..4).flat_map(|i| generator().generate(i % 2, 17 + i as u64)).collect();
    let window = signal[..1_000].to_vec();
    let classify_spec = InferenceSpec::new("m", ei_runtime_engine());
    let estimate_spec = classify_spec.clone().on_board("nano 33");

    let mut jobs = Vec::new();
    let mut pushed = vec![0usize; scale.streams];
    let mut rejected = 0u64;
    for (i, ev) in events.iter_mut().enumerate() {
        // open-loop arrivals drive the logical clock forward
        let at_ms = ev.at_us / 1_000;
        let now = clock.now_ms();
        if at_ms > now {
            clock.advance_ms(at_ms - now);
        }
        match ev.op {
            0 => {
                let (project, user) = population[ev.tenant];
                ev.key = project.0;
                if api.classify(project, user, &classify_spec, window.clone()).is_err() {
                    rejected += 1;
                }
            }
            1 => {
                let (project, user) = population[ev.tenant];
                ev.key = project.0;
                api.estimate(project, user, &estimate_spec).expect("estimate runs");
            }
            2 => {
                let (project, user) = population[ev.tenant];
                ev.key = project.0;
                let api2 = api.clone();
                let name = format!("job-{i}");
                let payload = format!("{{\"job\":{i}}}");
                let id = scheduler
                    .submit_keyed(project.0, 1, move || {
                        api2.upload_model(project, user, &name, payload.clone())
                            .map_err(|e| e.to_string())?;
                        Ok(name.clone())
                    })
                    .expect("scheduler accepts");
                jobs.push(id);
            }
            _ => {
                let (project, user) = population[ev.tenant];
                ev.key = project.0;
                let off = (pushed[ev.tenant] * 250) % (signal.len() - 250);
                pushed[ev.tenant] += 1;
                api.stream_push(sessions[ev.tenant], user, &signal[off..off + 250])
                    .expect("stream accepts");
            }
        }
    }
    for id in jobs {
        scheduler.wait(id).expect("job-submit uploads succeed");
    }
    for (&session, &(_, user)) in sessions.iter().zip(&population) {
        api.stream_close(session, user).expect("session closes");
    }
    scheduler.shutdown();

    // shard telemetry flowed into the obs registry during the replay
    let prom = obs.prometheus();
    assert!(
        prom.contains("platform_shard_occupancy"),
        "shard occupancy gauges must reach the obs registry"
    );

    let export = api.export_json().expect("state exports");
    Replay {
        state_checksum: export.as_str().shard_hash(),
        occupancy_skew: api.occupancy_skew(),
        rejected,
    }
}

/// The engine the hot-set model serves with.
fn ei_runtime_engine() -> ei_runtime::EngineKind {
    ei_runtime::EngineKind::EonCompiled
}

/// Discrete-event queueing model of the replay: ops execute FIFO by
/// arrival, each needing its project's shard lock and one of `workers`
/// pool workers; completion = max(arrival, shard free, worker free) +
/// service. Returns (p50, p95, p99) sojourn µs and throughput (ops/s
/// over the makespan).
fn simulate(events: &[Event], shards: usize, workers: usize) -> (u64, u64, u64, f64) {
    let mut shard_free = vec![0u64; shards];
    let mut worker_free = vec![0u64; workers];
    let mut sojourn: Vec<u64> = Vec::with_capacity(events.len());
    let mut end = 0u64;
    for ev in events {
        let shard = (fnv1a_u64(ev.key) % shards as u64) as usize;
        let worker = (0..workers).min_by_key(|&w| worker_free[w]).expect("workers >= 1");
        let start = ev.at_us.max(shard_free[shard]).max(worker_free[worker]);
        let done = start + SERVICE_US[ev.op];
        shard_free[shard] = done;
        worker_free[worker] = done;
        sojourn.push(done - ev.at_us);
        end = end.max(done);
    }
    sojourn.sort_unstable();
    let span_s = (end - events[0].at_us) as f64 / 1e6;
    let throughput = events.len() as f64 / span_s;
    (percentile(&sojourn, 50), percentile(&sojourn, 95), percentile(&sojourn, 99), throughput)
}

/// Runs the full sweep once and returns the populated writer.
fn run_sweep(scale: &Scale, model: &str, print: bool) -> ResultsWriter {
    let mut results = ResultsWriter::new("platform_scale");
    if print {
        println!(
            "{:<7} {:>8} {:>10} {:>10} {:>10} {:>12} {:>6} {:>6}",
            "shards", "threads", "p50 ms", "p95 ms", "p99 ms", "ops/s", "skew", "state"
        );
    }
    let mut reference_checksum = None;
    let mut by_threads: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len()];
    for &shards in &SHARD_COUNTS {
        let mut events = schedule(scale);
        let replayed = replay(&mut events, shards, scale, model);
        assert_eq!(replayed.rejected, 0, "harness sizing must avoid admission rejections");
        let reference = *reference_checksum.get_or_insert(replayed.state_checksum);
        let identical = replayed.state_checksum == reference;
        for (t, &threads) in THREADS.iter().enumerate() {
            let (p50, p95, p99, throughput) = simulate(&events, shards, threads);
            by_threads[t].push(throughput);
            if print {
                println!(
                    "{shards:<7} {threads:>8} {:>10.1} {:>10.1} {:>10.1} {throughput:>12.1} \
                     {:>6.2} {identical:>6}",
                    p50 as f64 / 1e3,
                    p95 as f64 / 1e3,
                    p99 as f64 / 1e3,
                    replayed.occupancy_skew,
                );
            }
            results.push(
                results
                    .stamp()
                    .field("shards", Json::Uint(shards as u64))
                    .field("threads", Json::Uint(threads as u64))
                    .field("tenants", Json::Uint(scale.tenants as u64))
                    .field("ops", Json::Uint(events.len() as u64))
                    .field("p50_ms", Json::Float(p50 as f64 / 1e3))
                    .field("p95_ms", Json::Float(p95 as f64 / 1e3))
                    .field("p99_ms", Json::Float(p99 as f64 / 1e3))
                    .field("throughput_ops_per_s", Json::Float(throughput))
                    .field("occupancy_skew", Json::Float(replayed.occupancy_skew))
                    .field("state_checksum", Json::Str(format!("{:016x}", replayed.state_checksum)))
                    .field("state_identical", Json::Bool(identical)),
            );
        }
    }
    // throughput must scale monotonically with shard count at every width
    for (t, series) in by_threads.iter().enumerate() {
        for pair in series.windows(2) {
            assert!(
                pair[1] >= pair[0] * 0.999,
                "throughput must not regress as shards grow (threads {}): {series:?}",
                THREADS[t]
            );
        }
    }
    let wide = &by_threads[THREADS.len() - 1];
    let speedup = wide[2] / wide[0]; // 16 shards vs 1 shard at 4 workers
    results.push(
        results
            .stamp()
            .field("summary", Json::Bool(true))
            .field("monotone_throughput", Json::Bool(true))
            .field("speedup_16_over_1_at_4_threads", Json::Float(speedup))
            .field("state_identical", Json::Bool(true)),
    );
    results
}

fn main() {
    let scale = scale();
    let model = model_json();
    let first = run_sweep(&scale, &model, true);
    let second = run_sweep(&scale, &model, false);
    assert_eq!(
        first.to_jsonl(),
        second.to_jsonl(),
        "platform-scale sweep must be byte-for-byte reproducible"
    );
    first.write_and_report();
}
