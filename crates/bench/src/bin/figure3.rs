//! Regenerates paper Figure 3: the EON Tuner result view — one card per
//! configuration with accuracy and stacked latency / RAM / flash bars
//! against the selected target's constraints.

use ei_bench::{bar, kb, quick_mode, Task};
use ei_data::synth::KwsGenerator;
use ei_device::{Board, Profiler};
use ei_nn::train::TrainConfig;
use ei_runtime::EngineKind;
use ei_tuner::{EonTuner, SearchSpace, TunerConfig};

fn main() {
    let quick = quick_mode();
    let board = Board::nano33_ble_sense();
    let dataset = KwsGenerator::default().dataset(if quick { 6 } else { 14 }, 3);
    let tuner = EonTuner::new(
        SearchSpace::kws_table3(16_000),
        Profiler::new(board.clone()),
        Task::KeywordSpotting.window(),
        TunerConfig {
            trials: if quick { 3 } else { 6 },
            train: TrainConfig {
                epochs: if quick { 1 } else { 3 },
                batch_size: 16,
                learning_rate: 0.005,
                ..TrainConfig::default()
            },
            quantize: false,
            engine: EngineKind::TflmInterpreter,
            max_latency_ms: None,
            seed: 21,
        },
    );
    eprintln!("running EON Tuner for the Fig. 3 view...");
    let report = tuner.run(&dataset).expect("tuner runs");

    println!(
        "Figure 3. EON Tuner result view — target: {} ({} MHz, {} kB RAM, {} MB flash)",
        board.name,
        board.clock_hz / 1_000_000,
        board.ram_bytes / 1024,
        board.flash_bytes / (1024 * 1024),
    );
    println!();
    let max_ms = report.trials.iter().map(|t| t.total_ms()).fold(1.0, f64::max);
    for (i, t) in report.trials.iter().enumerate() {
        println!("#{:<2} {}  +  {}", i + 1, t.dsp_name, t.model_name);
        println!("    accuracy  {:>5.1}%", t.accuracy * 100.0);
        println!(
            "    latency   [{}] {:>6.0} ms  (DSP {:.0} / NN {:.0})",
            bar(t.total_ms(), max_ms, 24),
            t.total_ms(),
            t.dsp_ms,
            t.nn_ms
        );
        println!(
            "    ram       [{}] {:>6} kB of {} kB",
            bar(t.total_ram() as f64, board.ram_bytes as f64, 24),
            kb(t.total_ram()),
            board.ram_bytes / 1024
        );
        println!(
            "    flash     [{}] {:>6} kB of {} kB",
            bar(t.flash as f64, board.flash_bytes as f64, 24),
            kb(t.flash),
            board.flash_bytes / 1024
        );
        println!("    fits      {}", if t.fits { "yes" } else { "NO" });
        println!();
    }
    if let Some(best) = report.best_fitting() {
        println!(
            "selected configuration: {} + {} ({:.1}% @ {:.0} ms)",
            best.dsp_name,
            best.model_name,
            best.accuracy * 100.0,
            best.total_ms()
        );
    }
}
