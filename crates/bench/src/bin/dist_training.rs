//! Distributed-training determinism bench: sweeps worker count ×
//! injected crash rate and writes `results/dist_training.json`.
//!
//! Every cell trains the same model on the same data through the
//! `ei-dist` parameter-server cluster, under a seeded [`DistFaultPlan`]
//! that crashes, stalls, or panics workers mid-epoch. The cluster runs
//! on a [`VirtualClock`], so stall/crash detection is instantaneous in
//! wall time while the heartbeat protocol observes genuine deadline
//! overruns. The row's headline claim — `weights_identical: true` — is
//! **asserted**, not just recorded: the final weight checksum of every
//! cell must equal the no-fault serial-SGD reference, at any worker
//! count and any crash rate. A cell that converges to different bits
//! aborts the bench.
//!
//! `EI_DIST_FAULT_SEED` selects the fault script (default 42), so CI can
//! replay the sweep under multiple scripts. Set `EDGELAB_QUICK=1` for a
//! shorter run.

use ei_bench::{quick_mode, ResultsWriter};
use ei_dist::{train_serial_reference, weight_checksum, DistConfig, DistFaultPlan, DistTrainer};
use ei_faults::VirtualClock;
use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
use ei_nn::train::TrainConfig;
use ei_nn::Sequential;
use ei_trace::json::Json;

const WORKERS: [usize; 3] = [1, 2, 4];
const CRASH_RATES: [f64; 3] = [0.0, 0.15, 0.3];

/// Two interleaved Gaussian-ish blobs, deterministic, 8-D.
fn blobs(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut state = 0x5eed_1234u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let center = if class == 0 { 1.0 } else { -1.0 };
        inputs.push(
            (0..8).map(|d| center * if d % 2 == 0 { 1.0 } else { -1.0 } + 0.4 * next()).collect(),
        );
        labels.push(class);
    }
    (inputs, labels)
}

fn spec() -> ModelSpec {
    ModelSpec::new(Dims::new(1, 8, 1))
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense { units: 16, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

fn main() {
    let fault_seed: u64 =
        std::env::var("EI_DIST_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let epochs = if quick_mode() { 4 } else { 10 };
    let (inputs, labels) = blobs(96);
    let train = TrainConfig {
        epochs,
        batch_size: 8,
        learning_rate: 0.01,
        validation_split: 0.0,
        seed: 42,
        ..TrainConfig::default()
    };
    let base = DistConfig::new(1).with_partitions(8).with_timeout_ms(50);
    // steps per epoch = ceil(samples/partitions/batch) — the fault
    // planner aims inside this range
    let steps_hint = (inputs.len() / base.partitions).div_ceil(train.batch_size);

    // the oracle: no cluster, no faults, one thread, same fold schedule
    let mut reference = Sequential::build(&spec(), train.seed).expect("reference model builds");
    let ref_loss = train_serial_reference(&mut reference, &train, &base, &inputs, &labels)
        .expect("serial reference trains");
    let ref_checksum = weight_checksum(&reference);
    eprintln!(
        "serial reference: {} epochs, final loss {:.4}, checksum {ref_checksum:016x}",
        epochs,
        ref_loss.last().copied().unwrap_or(f32::NAN)
    );

    let mut writer = ResultsWriter::new("dist_training");
    let mut total_crashes = 0u64;
    for workers in WORKERS {
        for crash_rate in CRASH_RATES {
            let faults = DistFaultPlan::seeded(fault_seed, workers, epochs, steps_hint, crash_rate);
            let config = DistConfig::new(workers).with_partitions(8).with_timeout_ms(50);
            let trainer = DistTrainer::new(config, train.clone())
                .with_clock(VirtualClock::shared())
                .with_faults(faults.fresh());
            let mut model = Sequential::build(&spec(), train.seed).expect("model builds");
            let report = trainer.train(&mut model, &inputs, &labels).expect("cluster converges");
            let identical = report.weight_checksum == ref_checksum;
            assert!(
                identical,
                "workers={workers} crash_rate={crash_rate}: checksum {:016x} != reference {ref_checksum:016x}",
                report.weight_checksum
            );
            assert_eq!(weight_checksum(&model), ref_checksum, "in-place model diverged");
            total_crashes += report.crashes_detected;
            eprintln!(
                "workers={workers} crash_rate={crash_rate:>4}: {} crashes, {} partitions moved, {} epoch retries, loss {:.4}, identical={identical}",
                report.crashes_detected,
                report.partitions_rescheduled,
                report.epoch_retries,
                report.train_loss.last().copied().unwrap_or(f32::NAN),
            );
            let row = writer
                .stamp()
                .field("workers", Json::Uint(workers as u64))
                .field("crash_rate", Json::Float(crash_rate))
                .field("fault_seed", Json::Uint(fault_seed))
                .field("epochs", Json::Uint(report.epochs as u64))
                .field("faults_scripted", Json::Uint(faults.len() as u64))
                .field("crashes_detected", Json::Uint(report.crashes_detected))
                .field("partitions_rescheduled", Json::Uint(report.partitions_rescheduled))
                .field("epoch_retries", Json::Uint(report.epoch_retries))
                .field("workers_surviving", Json::Uint(report.workers_surviving as u64))
                .field(
                    "final_loss",
                    Json::Float(f64::from(report.train_loss.last().copied().unwrap_or(f32::NAN))),
                )
                .field("weight_checksum", Json::Str(format!("{:016x}", report.weight_checksum)))
                .field("reference_checksum", Json::Str(format!("{ref_checksum:016x}")))
                .field("weights_identical", Json::Bool(identical));
            writer.push(row);
        }
    }
    eprintln!("sweep done: {total_crashes} injected faults detected and recovered across the grid");
    writer.write_and_report();
}
