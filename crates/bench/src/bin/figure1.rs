//! Regenerates paper Figure 1: the ML-workflow stages, the ecosystem
//! challenge each answers, and the platform feature implementing it.

use ei_core::workflow::workflow_map;

fn main() {
    println!("Figure 1. The challenges associated with the ML workflow and the");
    println!("platform features that solve them.");
    println!();
    println!("{:<16} {:<20} {:<58} Module", "Stage", "Challenge", "Feature");
    println!("{}", "-".repeat(120));
    for entry in workflow_map() {
        println!(
            "{:<16} {:<20} {:<58} {}",
            format!("{:?}", entry.stage),
            format!("{:?}", entry.challenge),
            entry.feature,
            entry.module
        );
    }
}
