//! Regenerates paper Table 4: memory estimation (RAM/flash in kB) and
//! holdout accuracy for the three tasks under TFLM-vs-EON × float-vs-int8.
//!
//! Models are trained briefly on the synthetic datasets so the accuracy
//! column is real; memory numbers come from the engine reports.

use ei_bench::{kb, quick_mode, ResultsWriter, Task};
use ei_data::Split;
use ei_runtime::{EonProgram, InferenceEngine, Interpreter, ModelArtifact};
use ei_trace::json::Json;

fn engine_memory(artifact: &ModelArtifact, eon: bool) -> (usize, usize) {
    if eon {
        let engine = EonProgram::compile(artifact.clone()).expect("compiles");
        let m = engine.memory();
        (m.ram_total(), m.flash_total())
    } else {
        let engine = Interpreter::new(artifact.clone()).expect("builds");
        let m = engine.memory();
        (m.ram_total(), m.flash_total())
    }
}

fn main() {
    let quick = quick_mode();
    println!("Table 4. Memory estimation (kilobytes; accuracy % on the holdout set).");
    println!();
    println!(
        "{:<16} | {:>8} {:>9} {:>6} | {:>8} {:>9} {:>6} | {:>8} {:>9} {:>6}",
        "", "KWS RAM", "Flash", "Acc.", "VWW RAM", "Flash", "Acc.", "IC RAM", "Flash", "Acc."
    );

    // per task: train, quantize, evaluate both dtypes
    struct TaskResult {
        dsp_ram: usize,
        float_artifact: ModelArtifact,
        int8_artifact: ModelArtifact,
        float_acc: f32,
        int8_acc: f32,
    }
    let mut results = Vec::new();
    for task in Task::all() {
        let (per_class, epochs) = match (task, quick) {
            (_, true) => (6, 1),
            (Task::KeywordSpotting, _) => (24, 15),
            (Task::VisualWakeWords, _) => (40, 50),
            (Task::ImageClassification, _) => (12, 5),
        };
        eprintln!("training {} ({per_class}/class, {epochs} epochs)...", task.name());
        let trained = task.train(per_class, epochs, 42);
        let dataset = task.dataset(per_class, 42);
        let float_artifact = trained.float_artifact();
        let int8_artifact = trained.int8_artifact().expect("quantizes");
        let float_acc = trained
            .evaluate(&float_artifact, &dataset, Split::Testing)
            .map(|e| e.accuracy)
            .unwrap_or(f32::NAN);
        let int8_acc = trained
            .evaluate(&int8_artifact, &dataset, Split::Testing)
            .map(|e| e.accuracy)
            .unwrap_or(f32::NAN);
        results.push(TaskResult {
            dsp_ram: task.dsp_cost().scratch_bytes,
            float_artifact,
            int8_artifact,
            float_acc,
            int8_acc,
        });
    }

    // preprocessing row
    print!("{:<16}", "Preprocessing");
    for r in &results {
        print!(" | {:>8} {:>9} {:>6}", kb(r.dsp_ram), "-", "-");
    }
    println!();

    // four engine/dtype rows
    let rows: [(&str, bool, bool); 4] = [
        ("FP32 (TFLM)", false, false),
        ("FP32 (EON)", false, true),
        ("Int8 (TFLM)", true, false),
        ("Int8 (EON)", true, true),
    ];
    let mut json_rows = ResultsWriter::new("table4");
    for (label, int8, eon) in rows {
        print!("{label:<16}");
        for (task, r) in Task::all().iter().zip(&results) {
            let artifact = if int8 { &r.int8_artifact } else { &r.float_artifact };
            let acc = if int8 { r.int8_acc } else { r.float_acc };
            let (ram, flash) = engine_memory(artifact, eon);
            json_rows.push(
                json_rows
                    .stamp()
                    .field("task", Json::Str(task.name().to_string()))
                    .field("engine", Json::Str(if eon { "EON" } else { "TFLM" }.into()))
                    .field("dtype", Json::Str(if int8 { "int8" } else { "f32" }.into()))
                    .field("ram_bytes", Json::Uint(ram as u64))
                    .field("flash_bytes", Json::Uint(flash as u64))
                    .field("accuracy", Json::Float(f64::from(acc))),
            );
            print!(" | {:>8} {:>9} {:>5.1}%", kb(ram), kb(flash), acc * 100.0);
        }
        println!();
    }

    println!();
    println!("EON savings vs TFLM (same dtype):");
    for (task, r) in Task::all().iter().zip(&results) {
        for (dtype, artifact) in [("FP32", &r.float_artifact), ("Int8", &r.int8_artifact)] {
            let (tr, tf) = engine_memory(artifact, false);
            let (er, ef) = engine_memory(artifact, true);
            println!(
                "  {:<28} {dtype}: RAM -{:>2.0}%  flash -{:>2.0}%",
                task.name(),
                100.0 * (tr - er) as f64 / tr as f64,
                100.0 * (tf - ef) as f64 / tf as f64,
            );
        }
    }

    json_rows.write_and_report();
}
