//! Parallel scaling of the `ei-par` pool across the pipeline's two
//! sweep-shaped workloads, written as machine-readable rows to
//! `results/parallel_scaling.json`:
//!
//! 1. **Tuner sweep, cpu** — a real [`EonTuner::run`] over the small
//!    search space at 1/2/4 threads, recording wall-clock speedup and
//!    checking the [`ei_tuner::TunerReport`] stays byte-identical to the
//!    serial run (the determinism guarantee that makes `EI_THREADS` a
//!    pure wall-clock knob);
//! 2. **Tuner sweep, modeled_service** — the paper's tuner evaluates
//!    candidates as cloud build+train jobs, so per-candidate latency is
//!    service time, not local arithmetic; each trial holds a pool thread
//!    for `service_ms`, which is what the pool actually overlaps in the
//!    platform deployment (and the only shape that can speed up on a
//!    single-core host);
//! 3. **DSP sweep, cpu** — dataset-wide feature extraction through
//!    [`ei_dsp::parallel::process_windows`].
//!
//! Set `EDGELAB_QUICK=1` for a smoke run with shrunk workloads.

use ei_bench::{ms, quick_mode, ResultsWriter};
use ei_data::synth::KwsGenerator;
use ei_data::Dataset;
use ei_device::{Board, Profiler};
use ei_dsp::blocks::MfeBlock;
use ei_dsp::parallel::process_windows;
use ei_dsp::{DspConfig, MfccConfig, MfeConfig};
use ei_nn::train::TrainConfig;
use ei_par::{ParPool, Parallelism};
use ei_trace::json::Json;
use ei_tuner::{EonTuner, ModelChoice, SearchSpace, TunerConfig};
use std::sync::Arc;
use std::time::Instant;

/// Thread counts swept by every workload (1 is the serial baseline).
const THREADS: [usize; 3] = [1, 2, 4];

fn space() -> SearchSpace {
    SearchSpace {
        dsp: vec![
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
            DspConfig::Mfe(MfeConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_filters: 12,
                sample_rate_hz: 4_000,
                low_hz: 0.0,
                high_hz: 0.0,
            }),
        ],
        models: vec![
            ModelChoice::DenseMlp { hidden: 16 },
            ModelChoice::Conv1dStack { depth: 2, base_filters: 8 },
        ],
    }
}

fn dataset() -> Dataset {
    KwsGenerator {
        classes: vec!["on".into(), "off".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
    .dataset(12, 3)
}

fn tuner(epochs: usize) -> EonTuner {
    EonTuner::new(
        space(),
        Profiler::new(Board::nano33_ble_sense()),
        1_000,
        TunerConfig {
            trials: 3,
            train: TrainConfig { epochs, learning_rate: 0.01, ..TrainConfig::default() },
            ..TunerConfig::default()
        },
    )
}

fn main() {
    let mut writer = ResultsWriter::new("parallel_scaling");
    let host_threads = Parallelism::available().threads();
    println!("parallel scaling (host threads: {host_threads})");
    println!("{:<10} {:<16} {:>8} {:>10} {:>8}", "workload", "mode", "threads", "wall ms", "x");

    tuner_cpu(&mut writer, host_threads);
    tuner_modeled_service(&mut writer, host_threads);
    dsp_cpu(&mut writer, host_threads);

    writer.write_and_report();
}

/// Pushes one row; `extra` appends workload-specific fields.
#[allow(clippy::too_many_arguments)] // one call site, flat row fields
fn row(
    writer: &mut ResultsWriter,
    host_threads: usize,
    workload: &str,
    mode: &str,
    threads: usize,
    wall_ms: f64,
    serial_ms: f64,
    extra: impl FnOnce(ei_trace::json::JsonObject) -> ei_trace::json::JsonObject,
) {
    let speedup = if wall_ms > 0.0 { serial_ms / wall_ms } else { 0.0 };
    println!(
        "{workload:<10} {mode:<16} {threads:>8} {:>10} {:>8}",
        ms(wall_ms),
        format!("{speedup:.2}")
    );
    let r = writer
        .stamp()
        .field("workload", Json::Str(workload.to_string()))
        .field("mode", Json::Str(mode.to_string()))
        .field("threads", Json::Uint(threads as u64))
        .field("host_threads", Json::Uint(host_threads as u64))
        .field("wall_ms", Json::Float(wall_ms))
        .field("speedup_vs_serial", Json::Float(speedup));
    writer.push(extra(r));
}

/// Real tuner sweeps: wall clock plus the byte-identical report check.
fn tuner_cpu(writer: &mut ResultsWriter, host_threads: usize) {
    let epochs = if quick_mode() { 2 } else { 8 };
    let data = dataset();
    let mut serial_ms = 0.0;
    let mut serial_report = String::new();
    for threads in THREADS {
        let pool = Arc::new(ParPool::new(Parallelism::new(threads)));
        let t0 = Instant::now();
        let report = tuner(epochs).with_pool(pool).run(&data).expect("tuner runs");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let json = report.to_json();
        if threads == 1 {
            serial_ms = wall;
            serial_report = json.clone();
        }
        let identical = json == serial_report;
        row(writer, host_threads, "tuner", "cpu", threads, wall, serial_ms, |r| {
            r.field("report_identical", Json::Bool(identical))
        });
        assert!(identical, "parallel tuner report diverged from serial at {threads} threads");
    }
}

/// Candidate evaluation as a cloud service call: each trial occupies a
/// pool thread for `service_ms` of latency, the shape the platform's
/// build+train jobs actually have.
fn tuner_modeled_service(writer: &mut ResultsWriter, host_threads: usize) {
    let service_ms: u64 = if quick_mode() { 20 } else { 100 };
    let trials: Vec<usize> = (0..8).collect();
    let mut serial_ms = 0.0;
    for threads in THREADS {
        let pool = ParPool::new(Parallelism::new(threads));
        let t0 = Instant::now();
        let done = pool.par_map(&trials, |_| {
            std::thread::sleep(std::time::Duration::from_millis(service_ms));
            1u32
        });
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(done.len(), trials.len());
        if threads == 1 {
            serial_ms = wall;
        }
        row(writer, host_threads, "tuner", "modeled_service", threads, wall, serial_ms, |r| {
            r.field("service_ms", Json::Uint(service_ms))
        });
    }
}

/// Dataset-wide MFE extraction over the pool.
fn dsp_cpu(writer: &mut ResultsWriter, host_threads: usize) {
    let windows_n = if quick_mode() { 16 } else { 96 };
    let block = MfeBlock::new(MfeConfig {
        frame_s: 0.032,
        stride_s: 0.016,
        n_filters: 12,
        sample_rate_hz: 4_000,
        low_hz: 0.0,
        high_hz: 0.0,
    })
    .expect("valid config");
    let windows: Vec<Vec<f32>> = (0..windows_n)
        .map(|w| (0..1_000).map(|i| ((w * 31 + i) as f32 * 0.01).sin()).collect())
        .collect();
    let mut serial_ms = 0.0;
    let mut serial_features: Vec<Vec<f32>> = Vec::new();
    for threads in THREADS {
        let pool = ParPool::new(Parallelism::new(threads));
        let t0 = Instant::now();
        let features = process_windows(&pool, &block, 1_000, &windows).expect("windows are valid");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            serial_ms = wall;
            serial_features = features.clone();
        }
        assert_eq!(features, serial_features, "parallel features diverged at {threads} threads");
        row(writer, host_threads, "dsp", "cpu", threads, wall, serial_ms, |r| {
            r.field("windows", Json::Uint(windows_n as u64))
        });
    }
}
