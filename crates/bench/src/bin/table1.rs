//! Regenerates paper Table 1: the embedded platforms used for evaluation.

use ei_device::Board;

fn main() {
    println!("Table 1. Embedded platforms used for evaluation.");
    println!();
    println!("{:<24} {:<16} {:>9} {:>8} {:>8}", "Platform", "Processor", "Clock", "Flash", "RAM");
    for board in Board::paper_boards() {
        let ram = if board.ram_bytes >= 1024 * 1024 {
            format!("{} MB", board.ram_bytes / (1024 * 1024))
        } else {
            format!("{} kB", board.ram_bytes / 1024)
        };
        println!(
            "{:<24} {:<16} {:>6} MHz {:>5} MB {:>8}",
            board.name,
            board.processor,
            board.clock_hz / 1_000_000,
            board.flash_bytes / (1024 * 1024),
            ram,
        );
    }
}
