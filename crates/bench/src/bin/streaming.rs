//! Streaming-session bench: sustained multi-tenant live streams through
//! [`ei_stream::StreamSession`] + [`ei_serve::Server`], writing per-tenant
//! window staleness percentiles, drop rates and incremental-DSP reuse to
//! `results/streaming.json`.
//!
//! Three load scenarios sweep the gap between ingest rate and inference
//! capacity:
//!
//! * `nominal` — inference keeps up; every window classifies, staleness is
//!   one dispatch.
//! * `bursty` — polls are four pushes apart and service is slower, so
//!   short backlogs form and drain.
//! * `overloaded` — service costs dwarf the ingest rate; the per-session
//!   backpressure bound sheds the oldest windows, trading drop rate for a
//!   staleness ceiling.
//!
//! Each scenario runs the identical trace on an explicit 1-thread and
//! 4-thread pool; the runs are asserted byte-identical (determinism is the
//! repo-wide contract, see DESIGN.md), and the whole sweep is run twice to
//! assert the file is byte-for-byte reproducible. Every session keeps its
//! bitwise batch-recompute oracle on, so the bench also proves
//! `features_identical` under load.
//!
//! Set `EDGELAB_QUICK=1` for a smoke run with shorter streams.

use ei_bench::{quick_mode, ResultsWriter};
use ei_core::impulse::ImpulseDesign;
use ei_data::synth::KwsGenerator;
use ei_dsp::{DspConfig, MfccConfig};
use ei_faults::{Clock, VirtualClock};
use ei_nn::presets;
use ei_nn::train::TrainConfig;
use ei_par::{ParPool, Parallelism};
use ei_serve::{ModelSource, Server, ServerConfig};
use ei_stream::{SessionConfig, SessionStats, StreamSession, WindowVerdict};
use ei_trace::json::Json;
use ei_trace::Tracer;
use std::sync::Arc;

/// One load scenario: how often sessions poll relative to pushes, and how
/// expensive the modeled inference is.
struct Scenario {
    name: &'static str,
    /// Pushes between polls (1 = poll every chunk).
    polls_every: usize,
    /// Modeled per-request service cost (logical ms).
    per_item_ms: u64,
    /// Admission queue bound shared by all sessions.
    queue_capacity: usize,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario { name: "nominal", polls_every: 1, per_item_ms: 1, queue_capacity: 64 },
    Scenario { name: "bursty", polls_every: 4, per_item_ms: 5, queue_capacity: 16 },
    Scenario { name: "overloaded", polls_every: 8, per_item_ms: 20, queue_capacity: 4 },
];

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];
const CHUNK: usize = 500;

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

/// One shared KWS model (window 1000, MFCC frames of 128 every 64).
fn model() -> ModelSource {
    let design = ImpulseDesign::new(
        "stream-kws",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("bench design is valid");
    let spec = presets::dense_mlp(design.feature_dims().expect("valid design"), 2, 8);
    let config = TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.01,
        seed: 11,
        ..TrainConfig::default()
    };
    let trained =
        design.train(&spec, &generator().dataset(4, 11), &config).expect("bench model trains");
    ModelSource::new("stream-kws", trained.to_json().expect("serializes"))
}

/// Nearest-rank percentile of an ascending-sorted series.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Per-tenant outcome of one scenario run.
struct TenantRun {
    tenant: String,
    staleness: Vec<u64>,
    stats: SessionStats,
}

/// Replays one scenario on an explicit pool width; fully deterministic.
fn run_scenario(scenario: &Scenario, model: &ModelSource, threads: usize) -> Vec<TenantRun> {
    let clock = VirtualClock::shared();
    let pool = Arc::new(ParPool::new(Parallelism::new(threads)));
    let config = ServerConfig {
        queue_capacity: scenario.queue_capacity,
        per_item_ms: scenario.per_item_ms,
        quota_capacity: 4_096,
        quota_refill_per_sec: 4_096.0,
        ..ServerConfig::default()
    };
    let server =
        Arc::new(Server::new(config, clock.clone() as Arc<dyn Clock>, pool, Tracer::disabled()));

    let clips = if quick_mode() { 4 } else { 16 };
    let gen = generator();
    let mut sessions: Vec<StreamSession> = TENANTS
        .iter()
        .map(|tenant| {
            StreamSession::open(server.clone(), model.clone(), SessionConfig::new(tenant, 256))
                .expect("bench session opens")
        })
        .collect();
    // one distinct deterministic signal per tenant
    let signals: Vec<Vec<f32>> = (0..sessions.len())
        .map(|t| {
            (0..clips).flat_map(|i| gen.generate((t + i) % 2, (t * 1_000 + i) as u64)).collect()
        })
        .collect();

    let mut staleness: Vec<Vec<u64>> = vec![Vec::new(); sessions.len()];
    let chunks = signals[0].len() / CHUNK;
    for step in 0..chunks {
        for (t, session) in sessions.iter_mut().enumerate() {
            let chunk = &signals[t][step * CHUNK..(step + 1) * CHUNK];
            session.push(chunk).expect("ingest never fails");
            if (step + 1) % scenario.polls_every == 0 {
                record(&mut staleness[t], session.poll());
            }
        }
    }
    sessions
        .into_iter()
        .zip(staleness)
        .map(|(mut session, mut staleness)| {
            let tenant = session.tenant().to_string();
            // drain what is still in flight before closing
            record(&mut staleness, session.poll());
            let stats = session.close();
            TenantRun { tenant, staleness, stats }
        })
        .collect()
}

fn record(staleness: &mut Vec<u64>, verdicts: Vec<WindowVerdict>) {
    staleness.extend(verdicts.iter().map(|v| v.staleness_ms));
}

/// Runs every scenario at both pool widths and returns the canonical
/// writer (built from the 1-thread run, asserted equal to the 4-thread
/// run).
fn run_sweep(model: &ModelSource, print: bool) -> ResultsWriter {
    let mut results = ResultsWriter::new("streaming");
    if print {
        println!(
            "{:<12} {:<8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
            "scenario", "tenant", "windows", "p50 ms", "p95 ms", "p99 ms", "drop rate", "reuse"
        );
    }
    for scenario in &SCENARIOS {
        let serial = run_scenario(scenario, model, 1);
        let wide = run_scenario(scenario, model, 4);
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.stats, b.stats, "{}: stats must not depend on pool width", scenario.name);
            assert_eq!(
                a.staleness, b.staleness,
                "{}: staleness must not depend on pool width",
                scenario.name
            );
        }
        for run in serial {
            let mut sorted = run.staleness.clone();
            sorted.sort_unstable();
            let (p50, p95, p99) =
                (percentile(&sorted, 50), percentile(&sorted, 95), percentile(&sorted, 99));
            let stats = run.stats;
            assert!(stats.features_identical(), "incremental DSP must match batch bitwise");
            let drop_rate = stats.drops_total() as f64 / stats.windows_emitted.max(1) as f64;
            // frames shared across overlapping windows: >1 means the
            // incremental extractor did asymptotically less FFT work
            let reuse = stats.frames_used as f64 / stats.frames_computed.max(1) as f64;
            if print {
                println!(
                    "{:<12} {:<8} {:>8} {p50:>8} {p95:>8} {p99:>8} {drop_rate:>9.2} {reuse:>7.2}",
                    scenario.name, run.tenant, stats.windows_classified,
                );
            }
            results.push(
                results
                    .stamp()
                    .field("scenario", Json::Str(scenario.name.into()))
                    .field("tenant", Json::Str(run.tenant))
                    .field("windows_emitted", Json::Uint(stats.windows_emitted))
                    .field("windows_classified", Json::Uint(stats.windows_classified))
                    .field("drops_backpressure", Json::Uint(stats.drops_backpressure))
                    .field("drops_quota", Json::Uint(stats.drops_quota))
                    .field("drops_deadline", Json::Uint(stats.drops_deadline))
                    .field("drop_rate", Json::Float(drop_rate))
                    .field("staleness_p50_ms", Json::Uint(p50))
                    .field("staleness_p95_ms", Json::Uint(p95))
                    .field("staleness_p99_ms", Json::Uint(p99))
                    .field("frames_computed", Json::Uint(stats.frames_computed))
                    .field("frames_used", Json::Uint(stats.frames_used))
                    .field("dsp_reuse", Json::Float(reuse))
                    .field("oracle_windows", Json::Uint(stats.oracle_windows))
                    .field("features_identical", Json::Bool(stats.features_identical())),
            );
        }
    }
    results.push(
        results
            .stamp()
            .field("summary", Json::Bool(true))
            .field("features_identical", Json::Bool(true))
            .field("pools_identical", Json::Bool(true))
            .field("tenants", Json::Uint(TENANTS.len() as u64))
            .field("scenarios", Json::Uint(SCENARIOS.len() as u64)),
    );
    results
}

fn main() {
    let model = model();
    let first = run_sweep(&model, true);
    let second = run_sweep(&model, false);
    assert_eq!(
        first.to_jsonl(),
        second.to_jsonl(),
        "streaming sweep must be byte-for-byte reproducible under the virtual clock"
    );
    first.write_and_report();
}
