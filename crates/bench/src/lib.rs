//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§5). Each table/figure has a binary under `src/bin/`:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — evaluation boards |
//! | `table2` | Table 2 — end-to-end latency, 3 tasks × 3 boards × 2 dtypes |
//! | `table3` | Table 3 — EON Tuner exploration for keyword spotting |
//! | `table4` | Table 4 — RAM/flash/accuracy, TFLM vs EON × float vs int8 |
//! | `table5` | Table 5 — MLOps platform feature matrix |
//! | `figure1` | Fig. 1 — workflow stages ↔ challenges |
//! | `figure3` | Fig. 3 — tuner result cards with stacked resource bars |
//! | `ablations` | §5.3-adjacent design ablations (overhead decomposition, fusion, resolver, planner) |
//!
//! Set `EDGELAB_QUICK=1` to shrink workloads (fewer samples/epochs) for
//! smoke-testing the harness.
//!
//! Besides the prose `results/*.txt` the binaries print, each can emit
//! machine-readable rows through [`ResultsWriter`] into `results/*.json`
//! (JSON Lines, one object per row, every row stamped with
//! [`RESULTS_SCHEMA_VERSION`]) so the perf trajectory can be tracked
//! across PRs.

use ei_core::impulse::{ImpulseDesign, TrainedImpulse};
use ei_data::synth::{CifarGenerator, KwsGenerator, VwwGenerator};
use ei_data::Dataset;
use ei_dsp::blocks::PixelNorm;
use ei_dsp::{DspConfig, DspCost, ImageConfig, MfccConfig};
use ei_nn::presets;
use ei_nn::spec::ModelSpec;
use ei_nn::train::TrainConfig;
use ei_nn::Sequential;
use ei_runtime::ModelArtifact;
use ei_trace::json::{Json, JsonObject};

/// `true` when `EDGELAB_QUICK=1` (smaller datasets and fewer epochs).
pub fn quick_mode() -> bool {
    std::env::var("EDGELAB_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// One of the paper's three evaluation tasks (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Keyword spotting: 1 s @ 16 kHz → MFCC → DS-CNN.
    KeywordSpotting,
    /// Visual wake words: 96×96×1 → MobileNetV1-0.25.
    VisualWakeWords,
    /// Image classification: 32×32×3 → small CNN.
    ImageClassification,
}

impl Task {
    /// All tasks in Table 2 order.
    pub fn all() -> [Task; 3] {
        [Task::KeywordSpotting, Task::VisualWakeWords, Task::ImageClassification]
    }

    /// Display name with the paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Task::KeywordSpotting => "Keyword Spotting (KWS)",
            Task::VisualWakeWords => "Visual Wake Words (VWW)",
            Task::ImageClassification => "Image Classification (IC)",
        }
    }

    /// Raw window size in samples/pixels.
    pub fn window(self) -> usize {
        match self {
            Task::KeywordSpotting => 16_000,
            Task::VisualWakeWords => 96 * 96,
            Task::ImageClassification => 32 * 32 * 3,
        }
    }

    /// The task's DSP configuration.
    pub fn dsp(self) -> DspConfig {
        match self {
            Task::KeywordSpotting => DspConfig::Mfcc(MfccConfig {
                frame_s: 0.02,
                stride_s: 0.01,
                n_coefficients: 10,
                n_filters: 40,
                sample_rate_hz: 16_000,
            }),
            Task::VisualWakeWords => DspConfig::Image(ImageConfig {
                in_width: 96,
                in_height: 96,
                in_channels: 1,
                out_width: 96,
                out_height: 96,
                out_channels: 1,
                norm: PixelNorm::MinusOneToOne,
            }),
            Task::ImageClassification => DspConfig::Image(ImageConfig {
                in_width: 32,
                in_height: 32,
                in_channels: 3,
                out_width: 32,
                out_height: 32,
                out_channels: 3,
                norm: PixelNorm::ZeroToOne,
            }),
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            Task::KeywordSpotting => 4,
            Task::VisualWakeWords => 2,
            Task::ImageClassification => 10,
        }
    }

    /// The impulse design (window + DSP).
    ///
    /// # Panics
    ///
    /// Panics only on internal configuration bugs.
    pub fn design(self) -> ImpulseDesign {
        ImpulseDesign::new(self.name(), self.window(), self.dsp())
            .expect("task designs are valid by construction")
    }

    /// The paper's model for this task.
    pub fn model_spec(self) -> ModelSpec {
        let dims = self.design().feature_dims().expect("valid design");
        match self {
            Task::KeywordSpotting => presets::ds_cnn(dims, self.classes(), 64),
            Task::VisualWakeWords => presets::mobilenet_v1(dims, self.classes(), 0.25),
            Task::ImageClassification => presets::cifar_cnn(dims, self.classes()),
        }
    }

    /// Synthetic dataset for this task.
    pub fn dataset(self, per_class: usize, seed: u64) -> Dataset {
        match self {
            Task::KeywordSpotting => KwsGenerator::default().dataset(per_class, seed),
            Task::VisualWakeWords => VwwGenerator::default().dataset(per_class, seed),
            Task::ImageClassification => CifarGenerator::default().dataset(per_class, seed),
        }
    }

    /// The DSP cost of one window.
    ///
    /// # Panics
    ///
    /// Panics only on internal configuration bugs.
    pub fn dsp_cost(self) -> DspCost {
        let design = self.design();
        let block = design.dsp_block().expect("valid dsp");
        block.cost(self.window()).expect("window fits")
    }

    /// Builds untrained float + int8 artifacts (weights don't affect the
    /// latency/memory numbers of Tables 1–3).
    ///
    /// # Panics
    ///
    /// Panics only on internal configuration bugs.
    pub fn untrained_artifacts(self) -> (ModelArtifact, ModelArtifact) {
        let spec = self.model_spec();
        let model = Sequential::build(&spec, 42).expect("preset builds");
        let dims = self.design().feature_dims().expect("valid design");
        let probe = vec![vec![0.05f32; dims.len()], vec![-0.05f32; dims.len()]];
        let qmodel = ei_quant::quantize_model(&model, &probe).expect("quantizable");
        (ModelArtifact::Float(model), ModelArtifact::Int8(qmodel))
    }

    /// A learning rate known to train the task's (deep) preset stably.
    pub fn learning_rate(self) -> f32 {
        match self {
            // MobileNetV1 is 27 layers without batch norm: it needs a
            // conservative rate to train stably
            Task::VisualWakeWords => 0.0005,
            _ => 0.005,
        }
    }

    /// Trains the task's model on synthetic data (used where accuracy is
    /// reported, i.e. Table 4).
    ///
    /// # Panics
    ///
    /// Panics only on internal pipeline bugs.
    pub fn train(self, per_class: usize, epochs: usize, seed: u64) -> TrainedImpulse {
        let dataset = self.dataset(per_class, seed);
        let design = self.design();
        let spec = self.model_spec();
        let config = TrainConfig {
            epochs,
            batch_size: 16,
            learning_rate: self.learning_rate(),
            seed,
            ..TrainConfig::default()
        };
        design.train(&spec, &dataset, &config).expect("training succeeds on synthetic data")
    }
}

/// Schema version stamped into every machine-readable results row.
///
/// Bump it whenever a bench changes the meaning or set of its row fields,
/// so downstream trajectory tooling can tell comparable rows apart.
pub const RESULTS_SCHEMA_VERSION: u64 = 1;

/// Collects machine-readable benchmark rows and writes them as JSON Lines
/// to `results/<bench>.json`, alongside the prose table the binary prints.
///
/// Rows are built on the deterministic [`ei_trace::json`] writer: start
/// each one with [`ResultsWriter::stamp`] (which prefixes the
/// `schema_version` and `bench` fields), extend it with
/// [`JsonObject::field`], and [`ResultsWriter::push`] it.
#[derive(Debug, Clone)]
pub struct ResultsWriter {
    bench: String,
    rows: Vec<JsonObject>,
}

impl ResultsWriter {
    /// A writer for one bench binary (e.g. `"table2"`).
    pub fn new(bench: &str) -> ResultsWriter {
        ResultsWriter { bench: bench.to_string(), rows: Vec::new() }
    }

    /// Starts a row pre-stamped with `schema_version` and `bench`.
    pub fn stamp(&self) -> JsonObject {
        JsonObject::new()
            .field("schema_version", Json::Uint(RESULTS_SCHEMA_VERSION))
            .field("bench", Json::Str(self.bench.clone()))
    }

    /// Appends a finished row.
    pub fn push(&mut self, row: JsonObject) {
        self.rows.push(row);
    }

    /// Number of rows collected so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows as JSON Lines (one compact object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the rows to `results/<bench>.json` (creating `results/` if
    /// needed) and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.bench));
        std::fs::write(&path, self.to_jsonl())?;
        Ok(path)
    }

    /// [`ResultsWriter::write`] plus the standard stderr report every bench
    /// binary prints — one shared exit path instead of a per-binary `match`.
    pub fn write_and_report(&self) {
        match self.write() {
            Ok(path) => eprintln!("wrote {} json rows to {}", self.len(), path.display()),
            Err(e) => eprintln!("could not write results json: {e}"),
        }
    }
}

/// Formats a byte count as `xx.x` kB (Table 4 unit).
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats milliseconds with two decimals (Table 2 unit).
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders a proportional ASCII bar of `value` against `max` (Fig. 3).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 { 0 } else { ((value / max) * width as f64).round() as usize };
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_build_artifacts() {
        for task in Task::all() {
            let (float_a, int8_a) = task.untrained_artifacts();
            assert_eq!(float_a.input_len(), int8_a.input_len());
            assert!(float_a.weight_bytes() > int8_a.weight_bytes());
            assert!(task.dsp_cost().flops > 0);
        }
    }

    #[test]
    fn kws_feature_shape_matches_dscnn_input() {
        let design = Task::KeywordSpotting.design();
        let dims = design.feature_dims().unwrap();
        assert_eq!((dims.w, dims.c), (10, 1));
        assert_eq!(dims.h, 99);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(1024), "1.0");
        assert_eq!(ms(1.239), "1.24");
        assert_eq!(bar(5.0, 10.0, 10), "#####.....");
        assert_eq!(bar(0.0, 0.0, 4), "....");
        assert_eq!(bar(20.0, 10.0, 4), "####");
    }

    #[test]
    fn results_rows_are_stamped_and_deterministic() {
        let mut w = ResultsWriter::new("demo");
        assert!(w.is_empty());
        w.push(w.stamp().field("task", Json::Str("kws".into())).field("ms", Json::Float(1.5)));
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.to_jsonl(),
            "{\"schema_version\":1,\"bench\":\"demo\",\"task\":\"kws\",\"ms\":1.5}\n"
        );
    }

    #[test]
    fn quick_mode_reads_env() {
        // do not mutate the environment; just exercise the code path
        let _ = quick_mode();
    }
}
