//! Operator fusion: fold `BatchNorm` into the preceding convolution.
//!
//! Fusing removes the normalization op entirely — the classic inference
//! optimization the paper lists under "operator fusion" (§4.5): with
//! `k = γ / sqrt(σ² + ε)`, the preceding layer's weights become `W·k`
//! (per output channel) and its bias `(b − μ)·k + β`.

use crate::{QuantError, Result};
use ei_nn::model::Layer;
use ei_nn::spec::{LayerSpec, ModelSpec};
use ei_nn::Sequential;

/// Must match the epsilon the `BatchNorm` forward pass uses in `ei-nn`.
const BN_EPS: f32 = 1e-3;

/// Whether a layer's weights end in an output-channel axis that `BatchNorm`
/// scales (i.e. fusion applies).
fn is_fusable(spec: &LayerSpec) -> bool {
    matches!(
        spec,
        LayerSpec::Dense { .. }
            | LayerSpec::Conv1d { .. }
            | LayerSpec::Conv2d { .. }
            | LayerSpec::Conv2dRect { .. }
            | LayerSpec::DepthwiseConv2d { .. }
    )
}

/// Folds every `BatchNorm` whose predecessor is a convolution or dense
/// layer, returning the fused model and the number of ops removed.
///
/// # Errors
///
/// Returns [`QuantError::UnsupportedLayer`] for a `BatchNorm` with no
/// fusable predecessor (e.g. first layer or after pooling) — such graphs
/// must keep the op and cannot take the fused fast path.
pub fn fold_batch_norm(model: &Sequential) -> Result<(Sequential, usize)> {
    let mut new_layers: Vec<Layer> = Vec::with_capacity(model.layers().len());
    let mut fused = 0usize;
    for layer in model.layers() {
        if layer.spec == LayerSpec::BatchNorm {
            let prev = new_layers.last_mut().filter(|p| is_fusable(&p.spec)).ok_or_else(|| {
                QuantError::UnsupportedLayer("batch_norm without a fusable predecessor".into())
            })?;
            let params = layer
                .weights
                .as_ref()
                .ok_or_else(|| QuantError::UnsupportedLayer("batch_norm missing params".into()))?
                .as_f32()?;
            let c = layer.input.c;
            let (gamma, rest) = params.split_at(c);
            let (beta, rest) = rest.split_at(c);
            let (mean, var) = rest.split_at(c);
            let k: Vec<f32> = gamma.iter().zip(var).map(|(g, v)| g / (v + BN_EPS).sqrt()).collect();
            // output channel is the fastest axis of every fusable weight layout
            if let Some(w) = prev.weights.as_mut() {
                let data = w.as_f32_mut()?;
                for (i, value) in data.iter_mut().enumerate() {
                    *value *= k[i % c];
                }
            }
            if let Some(b) = prev.bias.as_mut() {
                let data = b.as_f32_mut()?;
                for (co, value) in data.iter_mut().enumerate() {
                    *value = (*value - mean[co]) * k[co] + beta[co];
                }
            }
            fused += 1;
        } else {
            new_layers.push(layer.clone());
        }
    }
    let mut spec = ModelSpec::new(model.spec().input).named(&model.spec().name);
    for l in &new_layers {
        spec = spec.layer(l.spec.clone());
    }
    let fused_model = Sequential::from_parts(spec, new_layers)?;
    Ok((fused_model, fused))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec, Padding};

    fn bn_model() -> Sequential {
        let spec = ModelSpec::new(Dims::new(4, 4, 1))
            .layer(LayerSpec::Conv2d {
                filters: 3,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::None,
            })
            .layer(LayerSpec::BatchNorm)
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None });
        Sequential::build(&spec, 5).unwrap()
    }

    #[test]
    fn identity_bn_fusion_preserves_outputs() {
        let model = bn_model();
        let (fused, n) = fold_batch_norm(&model).unwrap();
        assert_eq!(n, 1);
        assert_eq!(fused.layers().len(), model.layers().len() - 1);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.2).collect();
        let a = model.forward(&input).unwrap();
        let b = fused.forward(&input).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn nontrivial_bn_fusion_preserves_outputs() {
        let mut model = bn_model();
        // give the BN layer non-identity parameters
        {
            let bn = &mut model.layers_mut()[1];
            let params = bn.weights.as_mut().unwrap().as_f32_mut().unwrap();
            let c = 3;
            for ch in 0..c {
                params[ch] = 1.5 + ch as f32 * 0.3; // gamma
                params[c + ch] = -0.2 * ch as f32; // beta
                params[2 * c + ch] = 0.1 * ch as f32; // mean
                params[3 * c + ch] = 0.5 + 0.25 * ch as f32; // var
            }
        }
        let (fused, _) = fold_batch_norm(&model).unwrap();
        let input: Vec<f32> = (0..16).map(|i| ((i * 3) % 7) as f32 * 0.1 - 0.3).collect();
        let a = model.forward(&input).unwrap();
        let b = fused.forward(&input).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn bn_without_predecessor_rejected() {
        let spec = ModelSpec::new(Dims::new(2, 2, 1)).layer(LayerSpec::BatchNorm);
        let model = Sequential::build(&spec, 0).unwrap();
        assert!(matches!(fold_batch_norm(&model), Err(QuantError::UnsupportedLayer(_))));
    }

    #[test]
    fn model_without_bn_unchanged() {
        let spec = ModelSpec::new(Dims::new(1, 4, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None });
        let model = Sequential::build(&spec, 0).unwrap();
        let (fused, n) = fold_batch_norm(&model).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fused.layers().len(), 2);
    }

    #[test]
    fn fusion_reduces_mac_count() {
        let model = bn_model();
        let (fused, _) = fold_batch_norm(&model).unwrap();
        assert!(fused.macs() < model.macs());
    }
}
