//! Affine quantization parameters and fixed-point requantization.
//!
//! The int8 scheme follows the convention TFLite Micro ships (Jacob et al.
//! 2017, cited in paper §4.5): `real = scale * (q - zero_point)` with
//! * asymmetric per-tensor activations (`zero_point` free),
//! * symmetric per-channel weights (`zero_point = 0`),
//! * int32 biases at scale `s_input * s_weight`,
//! * requantization by a fixed-point multiplier, since embedded targets
//!   must not depend on floating point in the inner loop.

/// Per-tensor affine quantization: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Step size between adjacent quantized values.
    pub scale: f32,
    /// The int8 value representing real 0.0.
    pub zero_point: i32,
}

impl QuantParams {
    /// Derives parameters covering `[min, max]` over the int8 range.
    ///
    /// The range is widened to always include 0.0 (required so zero padding
    /// is exactly representable) and degenerate ranges get a unit scale.
    pub fn from_range(min: f32, max: f32) -> QuantParams {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = (max - min).max(1e-6);
        let scale = span / 255.0;
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters for `[-a, a]` with `zero_point == 0`.
    pub fn symmetric(abs_max: f32) -> QuantParams {
        QuantParams { scale: abs_max.max(1e-6) / 127.0, zero_point: 0 }
    }

    /// Quantizes one real value to int8 with round-to-nearest.
    pub fn quantize(&self, real: f32) -> i8 {
        let q = (real / self.scale).round() as i32 + self.zero_point;
        q.clamp(-128, 127) as i8
    }

    /// Recovers the real value of one int8 code.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }

    /// Quantizes a slice.
    pub fn quantize_slice(&self, reals: &[f32]) -> Vec<i8> {
        reals.iter().map(|&r| self.quantize(r)).collect()
    }

    /// Dequantizes a slice.
    pub fn dequantize_slice(&self, qs: &[i8]) -> Vec<f32> {
        qs.iter().map(|&q| self.dequantize(q)).collect()
    }
}

impl Default for QuantParams {
    /// Covers `[-1, 1]`.
    fn default() -> Self {
        QuantParams::from_range(-1.0, 1.0)
    }
}

/// Per-channel symmetric weight quantization: one scale per output channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelQuant {
    /// Scale per output channel (`zero_point` is 0 for all).
    pub scales: Vec<f32>,
}

impl ChannelQuant {
    /// Derives per-channel scales from weight data laid out with the output
    /// channel as the *fastest* axis (the layout `ei-nn` uses: `[..., out_c]`).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `weights.len()` is a multiple of `out_channels`.
    pub fn from_weights(weights: &[f32], out_channels: usize) -> ChannelQuant {
        debug_assert_eq!(weights.len() % out_channels.max(1), 0);
        let mut abs_max = vec![0.0f32; out_channels];
        for chunk in weights.chunks(out_channels) {
            for (m, &w) in abs_max.iter_mut().zip(chunk) {
                *m = m.max(w.abs());
            }
        }
        ChannelQuant { scales: abs_max.iter().map(|&m| m.max(1e-6) / 127.0).collect() }
    }

    /// Quantizes weights (output-channel-fastest layout) to int8.
    pub fn quantize(&self, weights: &[f32]) -> Vec<i8> {
        let n = self.scales.len();
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| ((w / self.scales[i % n]).round()).clamp(-127.0, 127.0) as i8)
            .collect()
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// `true` when no channels are present.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }
}

/// A fixed-point multiplier `m * 2^-31 * 2^shift` approximating a positive
/// real multiplier, as used for on-device requantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMultiplier {
    /// Mantissa in `[2^30, 2^31)` (or 0 for a zero multiplier).
    pub mantissa: i32,
    /// Left shift (negative = right shift) applied after the mantissa.
    pub shift: i32,
}

impl FixedMultiplier {
    /// Encodes a real multiplier (must be finite and non-negative).
    pub fn from_real(real: f32) -> FixedMultiplier {
        if real <= 0.0 || !real.is_finite() {
            return FixedMultiplier { mantissa: 0, shift: 0 };
        }
        let mut shift = 0i32;
        let mut m = real as f64;
        while m < 0.5 {
            m *= 2.0;
            shift -= 1;
        }
        while m >= 1.0 {
            m /= 2.0;
            shift += 1;
        }
        let mut mantissa = (m * (1i64 << 31) as f64).round() as i64;
        if mantissa == (1i64 << 31) {
            mantissa /= 2;
            shift += 1;
        }
        FixedMultiplier { mantissa: mantissa as i32, shift }
    }

    /// Applies the multiplier to an int32 accumulator with round-to-nearest,
    /// reproducing `(acc as f64 * real).round()` in pure integer math.
    pub fn apply(&self, acc: i32) -> i32 {
        if self.mantissa == 0 {
            return 0;
        }
        // acc * mantissa as i64, rounding doubling-high-mul then shift
        let prod = acc as i64 * self.mantissa as i64;
        let total_shift = 31 - self.shift;
        if total_shift <= 0 {
            return (prod << (-total_shift)).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
        let round = 1i64 << (total_shift - 1);
        let adjusted = if prod >= 0 { prod + round } else { prod + round - 1 };
        (adjusted >> total_shift).clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_includes_zero() {
        let q = QuantParams::from_range(2.0, 6.0);
        // min widened to 0, so 0 must map exactly
        assert_eq!(q.dequantize(q.quantize(0.0)), 0.0);
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let q = QuantParams::from_range(-3.0, 5.0);
        for i in 0..100 {
            let v = -3.0 + 8.0 * i as f32 / 99.0;
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            assert!(err <= q.scale / 2.0 + 1e-6, "err {err} at {v}");
        }
    }

    #[test]
    fn saturation_at_extremes() {
        let q = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -128);
    }

    #[test]
    fn symmetric_zero_point_is_zero() {
        let q = QuantParams::symmetric(2.54);
        assert_eq!(q.zero_point, 0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(2.54), 127);
    }

    #[test]
    fn degenerate_range_still_works() {
        let q = QuantParams::from_range(0.0, 0.0);
        assert!(q.scale > 0.0);
        let _ = q.quantize(0.0);
    }

    #[test]
    fn channel_quant_separates_channels() {
        // 2 output channels: channel 0 weights tiny, channel 1 large
        let weights = [0.01f32, 10.0, -0.02, 5.0, 0.015, -10.0];
        let cq = ChannelQuant::from_weights(&weights, 2);
        assert!(cq.scales[0] < cq.scales[1] / 100.0);
        let q = cq.quantize(&weights);
        // tiny channel still gets full resolution
        assert!(q[0].abs() > 50, "channel 0 uses the int8 range: {}", q[0]);
        assert_eq!(q[5], -127);
    }

    #[test]
    fn fixed_multiplier_matches_float() {
        for real in [0.0003f32, 0.02, 0.37, 0.99, 1.7] {
            let fm = FixedMultiplier::from_real(real);
            for acc in [-100_000i32, -123, 0, 777, 250_000] {
                let want = (acc as f64 * real as f64).round() as i64;
                let got = fm.apply(acc) as i64;
                assert!((want - got).abs() <= 1, "real {real} acc {acc}: want {want} got {got}");
            }
        }
    }

    #[test]
    fn fixed_multiplier_zero_and_negative() {
        assert_eq!(FixedMultiplier::from_real(0.0).apply(1000), 0);
        assert_eq!(FixedMultiplier::from_real(-1.0).apply(1000), 0);
    }

    proptest! {
        #[test]
        fn prop_quantize_dequantize_error(min in -10.0f32..0.0, span in 0.1f32..20.0, v in 0.0f32..1.0) {
            let max = min + span;
            let q = QuantParams::from_range(min, max);
            let value = min + span * v;
            let err = (q.dequantize(q.quantize(value)) - value).abs();
            prop_assert!(err <= q.scale * 0.5 + 1e-6);
        }

        #[test]
        fn prop_fixed_multiplier_close(real in 1e-4f32..4.0, acc in -1_000_000i32..1_000_000) {
            let fm = FixedMultiplier::from_real(real);
            let want = (acc as f64 * real as f64).round();
            let got = fm.apply(acc) as f64;
            // within 1 LSB plus tiny relative error
            prop_assert!((want - got).abs() <= 1.0 + want.abs() * 1e-6);
        }
    }
}
