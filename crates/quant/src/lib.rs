#![warn(missing_docs)]

//! Post-training quantization and operator fusion for `edgelab`.
//!
//! Edge Impulse compresses models with "fully int-8 weight and activation
//! quantization and operator fusion" (paper §4.5). This crate implements
//! both from scratch:
//!
//! * [`qparams`] — affine quantization parameters (scale + zero point),
//!   per-tensor and per-channel, plus the fixed-point requantization
//!   multiplier embedded targets use instead of floating-point math;
//! * [`calibrate`] — activation-range calibration over representative data;
//! * [`fusion`] — graph transforms: fold `BatchNorm` into the preceding
//!   convolution (the classic conv+BN fusion);
//! * [`qmodel`] — a fully int8 model: symmetric per-channel int8 weights,
//!   int32 biases, int8 activations with fixed-point requantization, and
//!   integer kernels for every layer type.
//!
//! # Example
//!
//! ```
//! use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
//! use ei_nn::Sequential;
//! use ei_quant::quantize_model;
//!
//! # fn main() -> Result<(), ei_quant::QuantError> {
//! let spec = ModelSpec::new(Dims::new(1, 4, 1))
//!     .layer(LayerSpec::Flatten)
//!     .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
//!     .layer(LayerSpec::Softmax);
//! let model = Sequential::build(&spec, 1).map_err(ei_quant::QuantError::from)?;
//! let calib = vec![vec![0.1, -0.5, 0.8, 0.3]];
//! let qmodel = quantize_model(&model, &calib)?;
//! let out = qmodel.forward(&[0.1, -0.5, 0.8, 0.3])?;
//! assert_eq!(out.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod calibrate;
pub mod error;
pub mod fusion;
pub mod qmodel;
pub mod qparams;

pub use error::QuantError;
pub use qmodel::{quantize_model, QuantizedModel};
pub use qparams::{ChannelQuant, QuantParams};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QuantError>;
