//! Fully int8 quantized models with integer inference kernels.
//!
//! Weights are symmetric per-channel int8, biases int32 at scale
//! `s_in * s_w`, activations asymmetric per-tensor int8, and every
//! requantization uses the fixed-point multiplier from
//! [`crate::qparams::FixedMultiplier`] — the same scheme TFLite Micro
//! executes on Cortex-M targets (paper §4.5).

use crate::calibrate::calibrate;
use crate::fusion::fold_batch_norm;
use crate::qparams::{ChannelQuant, FixedMultiplier, QuantParams};
use crate::{QuantError, Result};
use ei_nn::layers::conv::{Conv1dGeom, Conv2dGeom};
use ei_nn::layers::im2col::{depthwise_weight_col, im2col_1d, im2col_2d, im2col_dw_channel};
use ei_nn::spec::{Activation, Dims, LayerSpec};
use ei_nn::Sequential;
use ei_tensor::gemm::gemm_i8_fused;

/// One quantized layer.
#[derive(Debug, Clone)]
pub struct QLayer {
    /// The architecture op this layer executes.
    pub spec: LayerSpec,
    /// Input activation dimensions.
    pub input: Dims,
    /// Output activation dimensions.
    pub output: Dims,
    /// int8 weights (output-channel-fastest layout), if parameterized.
    pub weights: Option<Vec<i8>>,
    /// Per-channel weight quantization, if parameterized.
    pub w_quant: Option<ChannelQuant>,
    /// int32 biases at scale `s_in * s_w[ch]`.
    pub bias: Option<Vec<i32>>,
    /// Input activation quantization.
    pub in_q: QuantParams,
    /// Output activation quantization.
    pub out_q: QuantParams,
    /// Per-output-channel requantization multipliers (`s_in*s_w/s_out`).
    pub multipliers: Option<Vec<FixedMultiplier>>,
}

impl QLayer {
    /// Bytes of flash this layer's parameters occupy when deployed.
    pub fn weight_bytes(&self) -> usize {
        self.weights.as_ref().map_or(0, Vec::len) + self.bias.as_ref().map_or(0, |b| b.len() * 4)
    }
}

/// A fully int8 model produced by [`quantize_model`].
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    layers: Vec<QLayer>,
    input_q: QuantParams,
    output_q: QuantParams,
    input_dims: Dims,
    output_dims: Dims,
    name: String,
}

impl QuantizedModel {
    /// Quantized layers.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Input quantization parameters.
    pub fn input_qparams(&self) -> QuantParams {
        self.input_q
    }

    /// Output quantization parameters.
    pub fn output_qparams(&self) -> QuantParams {
        self.output_q
    }

    /// Input dimensions.
    pub fn input_dims(&self) -> Dims {
        self.input_dims
    }

    /// Output dimensions.
    pub fn output_dims(&self) -> Dims {
        self.output_dims
    }

    /// Architecture name carried over from the float model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total parameter bytes (int8 weights + int32 biases).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(QLayer::weight_bytes).sum()
    }

    /// Largest single activation in elements (1 byte each when quantized).
    pub fn peak_activation_elems(&self) -> usize {
        let mut peak = self.input_dims.len();
        for l in &self.layers {
            peak = peak.max(l.output.len());
        }
        peak
    }

    /// Runs inference on real-valued input, returning real-valued output.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InputLengthMismatch`] for wrongly sized input.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>> {
        let q_in = self.input_q.quantize_slice(input);
        let q_out = self.forward_quantized(&q_in)?;
        Ok(self.output_q.dequantize_slice(&q_out))
    }

    /// Runs the integer path, returning every intermediate activation as
    /// raw int8 codes — one vector per layer boundary, starting with the
    /// quantized input. This is the byte-level view an arena-backed
    /// executor stores.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InputLengthMismatch`] for wrongly sized input.
    pub fn trace_raw(&self, input: &[f32]) -> Result<Vec<Vec<i8>>> {
        let mut act = self.input_q.quantize_slice(input);
        let mut out = vec![act.clone()];
        for layer in &self.layers {
            act = run_qlayer(layer, &act)?;
            out.push(act.clone());
        }
        Ok(out)
    }

    /// Runs the integer path, returning every intermediate activation as
    /// dequantized reals — one vector per layer boundary, starting with the
    /// (requantized) input. Useful for debugging where quantization error
    /// accumulates.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InputLengthMismatch`] for wrongly sized input.
    pub fn trace(&self, input: &[f32]) -> Result<Vec<Vec<f32>>> {
        let mut act = self.input_q.quantize_slice(input);
        let mut out = vec![self.input_q.dequantize_slice(&act)];
        for layer in &self.layers {
            act = run_qlayer(layer, &act)?;
            out.push(layer.out_q.dequantize_slice(&act));
        }
        Ok(out)
    }

    /// Runs the pure-integer inference path.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InputLengthMismatch`] for wrongly sized input.
    pub fn forward_quantized(&self, input: &[i8]) -> Result<Vec<i8>> {
        if input.len() != self.input_dims.len() {
            return Err(QuantError::InputLengthMismatch {
                expected: self.input_dims.len(),
                actual: input.len(),
            });
        }
        let mut act = input.to_vec();
        for layer in &self.layers {
            act = run_qlayer(layer, &act)?;
        }
        Ok(act)
    }
}

/// Quantizes a trained float model to fully int8.
///
/// `BatchNorm` layers are folded into their predecessors first; activation
/// ranges come from running `calibration` through the float model.
///
/// # Errors
///
/// Fails on an empty calibration set, wrongly sized calibration samples, or
/// a `BatchNorm` with no fusable predecessor.
pub fn quantize_model(model: &Sequential, calibration: &[Vec<f32>]) -> Result<QuantizedModel> {
    let (fused, _) = fold_batch_norm(model)?;
    let ranges = calibrate(&fused, calibration)?;
    let mut layers = Vec::with_capacity(fused.layers().len());
    // pooling and shape ops operate directly on int8 codes, so (as in
    // TFLM) their output must share the input's quantization parameters;
    // track the propagated parameters along the chain
    let mut cur_q = ranges.qparams(0);
    for (i, layer) in fused.layers().iter().enumerate() {
        let in_q = cur_q;
        let passthrough = matches!(
            layer.spec,
            LayerSpec::MaxPool { .. }
                | LayerSpec::AvgPool { .. }
                | LayerSpec::GlobalAvgPool
                | LayerSpec::Reshape { .. }
                | LayerSpec::Flatten
                | LayerSpec::Dropout { .. }
        );
        let out_q = if passthrough { in_q } else { ranges.qparams(i + 1) };
        cur_q = out_q;
        let (weights, w_quant, bias, multipliers) = match (&layer.weights, &layer.bias) {
            (Some(w), bias) => {
                let out_c = out_channels(&layer.spec, layer.output);
                let wf = w.as_f32()?;
                let cq = ChannelQuant::from_weights(wf, out_c);
                let qw = cq.quantize(wf);
                let qb = bias.as_ref().map(|b| {
                    b.as_f32()
                        .expect("bias is f32")
                        .iter()
                        .enumerate()
                        .map(|(ch, &v)| (v / (in_q.scale * cq.scales[ch % out_c])).round() as i32)
                        .collect::<Vec<i32>>()
                });
                let mults = cq
                    .scales
                    .iter()
                    .map(|&sw| FixedMultiplier::from_real(in_q.scale * sw / out_q.scale))
                    .collect();
                (Some(qw), Some(cq), qb, Some(mults))
            }
            _ => (None, None, None, None),
        };
        layers.push(QLayer {
            spec: layer.spec.clone(),
            input: layer.input,
            output: layer.output,
            weights,
            w_quant,
            bias,
            in_q,
            out_q,
            multipliers,
        });
    }
    Ok(QuantizedModel {
        input_q: ranges.qparams(0),
        output_q: cur_q,
        input_dims: fused.input_dims(),
        output_dims: fused.output_dims(),
        name: fused.spec().name.clone(),
        layers,
    })
}

/// Output-channel count used for per-channel weight quantization.
fn out_channels(spec: &LayerSpec, output: Dims) -> usize {
    match spec {
        LayerSpec::Dense { units, .. } => *units,
        _ => output.c,
    }
}

/// Requantizes an int32 accumulator to the output int8 domain, applying the
/// layer's activation via integer clamping where possible.
fn requantize(acc: i32, mult: FixedMultiplier, out_q: QuantParams, act: Activation) -> i8 {
    let v = mult.apply(acc) + out_q.zero_point;
    let (lo, hi) = activation_bounds(act, out_q);
    v.clamp(lo, hi) as i8
}

/// int8 clamping bounds implementing ReLU-family activations.
fn activation_bounds(act: Activation, out_q: QuantParams) -> (i32, i32) {
    match act {
        Activation::Relu => (out_q.zero_point.max(-128), 127),
        Activation::Relu6 => {
            let six = (6.0 / out_q.scale).round() as i32 + out_q.zero_point;
            (out_q.zero_point.max(-128), six.min(127))
        }
        _ => (-128, 127),
    }
}

/// Executes one quantized layer.
fn run_qlayer(layer: &QLayer, input: &[i8]) -> Result<Vec<i8>> {
    let act = match &layer.spec {
        LayerSpec::Dense { activation, .. }
        | LayerSpec::Conv1d { activation, .. }
        | LayerSpec::Conv2d { activation, .. }
        | LayerSpec::Conv2dRect { activation, .. }
        | LayerSpec::DepthwiseConv2d { activation, .. } => *activation,
        _ => Activation::None,
    };
    // sigmoid/tanh have no integer fast path: fall back to float for them
    let float_act = matches!(act, Activation::Sigmoid | Activation::Tanh);
    match &layer.spec {
        LayerSpec::Dense { units, .. } => {
            let w = layer.weights.as_ref().expect("dense has weights");
            let b = layer.bias.as_ref().expect("dense has bias");
            let mults = layer.multipliers.as_ref().expect("dense has multipliers");
            let in_zp = layer.in_q.zero_point;
            let mut out = vec![0i8; *units];
            gemm_i8_fused(
                1,
                input.len(),
                *units,
                input,
                in_zp,
                w,
                b,
                |j, acc| finish(acc, j, mults, layer, act, float_act),
                &mut out,
            );
            Ok(out)
        }
        LayerSpec::Conv1d { filters, kernel, stride, padding, .. } => {
            let g = Conv1dGeom {
                in_w: layer.input.w,
                in_c: layer.input.c,
                out_c: *filters,
                kernel: *kernel,
                stride: *stride,
                padding: *padding,
            };
            let (ow, _) = g.output();
            let w = layer.weights.as_ref().expect("conv1d has weights");
            let b = layer.bias.as_ref().expect("conv1d has bias");
            let mults = layer.multipliers.as_ref().expect("conv1d has multipliers");
            let in_zp = layer.in_q.zero_point;
            // padding taps hold the zero-point code, so `(x - zp) * w == 0`
            // exactly where the naive kernel's bounds check skipped
            let patches = im2col_1d(input, g, in_zp as i8);
            let mut out = vec![0i8; ow * g.out_c];
            gemm_i8_fused(
                ow,
                g.kernel * g.in_c,
                g.out_c,
                &patches,
                in_zp,
                w,
                b,
                |co, acc| finish(acc, co, mults, layer, act, float_act),
                &mut out,
            );
            Ok(out)
        }
        LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => {
            let g = Conv2dGeom {
                in_h: layer.input.h,
                in_w: layer.input.w,
                in_c: layer.input.c,
                out_c: *filters,
                kernel_h: *kernel,
                kernel_w: *kernel,
                stride: *stride,
                padding: *padding,
            };
            run_conv2d_like(layer, input, g, act, float_act, false)
        }
        LayerSpec::Conv2dRect { filters, kernel_h, kernel_w, stride, padding, .. } => {
            let g = Conv2dGeom {
                in_h: layer.input.h,
                in_w: layer.input.w,
                in_c: layer.input.c,
                out_c: *filters,
                kernel_h: *kernel_h,
                kernel_w: *kernel_w,
                stride: *stride,
                padding: *padding,
            };
            run_conv2d_like(layer, input, g, act, float_act, false)
        }
        LayerSpec::DepthwiseConv2d { kernel, stride, padding, .. } => {
            let g = Conv2dGeom {
                in_h: layer.input.h,
                in_w: layer.input.w,
                in_c: layer.input.c,
                out_c: layer.input.c,
                kernel_h: *kernel,
                kernel_w: *kernel,
                stride: *stride,
                padding: *padding,
            };
            run_conv2d_like(layer, input, g, act, float_act, true)
        }
        LayerSpec::MaxPool { size } => Ok(maxpool_q(input, layer.input, *size)),
        LayerSpec::AvgPool { size } => Ok(avgpool_q(input, layer.input, *size)),
        LayerSpec::GlobalAvgPool => {
            let n = (layer.input.h * layer.input.w) as i32;
            let c = layer.input.c;
            let mut sums = vec![0i32; c];
            for pix in input.chunks(c) {
                for (s, &v) in sums.iter_mut().zip(pix) {
                    *s += v as i32;
                }
            }
            Ok(sums
                .iter()
                .map(|&s| {
                    let rounded = if s >= 0 { (s + n / 2) / n } else { (s - n / 2) / n };
                    rounded.clamp(-128, 127) as i8
                })
                .collect())
        }
        LayerSpec::Reshape { .. } | LayerSpec::Flatten | LayerSpec::Dropout { .. } => {
            Ok(input.to_vec())
        }
        LayerSpec::BatchNorm => Err(QuantError::UnsupportedLayer(
            "batch_norm must be folded before quantized execution".into(),
        )),
        LayerSpec::Softmax => {
            // no integer softmax: dequantize, soft-max in float, requantize
            let reals = layer.in_q.dequantize_slice(input);
            let probs = ei_tensor::ops::softmax(&reals);
            Ok(layer.out_q.quantize_slice(&probs))
        }
    }
}

/// Shared conv2d / depthwise integer kernel: im2col followed by the fused
/// GEMM, whose epilogue requantizes (and clamps ReLU bounds) straight out
/// of the register accumulators.
fn run_conv2d_like(
    layer: &QLayer,
    input: &[i8],
    g: Conv2dGeom,
    act: Activation,
    float_act: bool,
    depthwise: bool,
) -> Result<Vec<i8>> {
    let (oh, ow, _, _) = g.output();
    let w = layer.weights.as_ref().expect("conv has weights");
    let b = layer.bias.as_ref().expect("conv has bias");
    let mults = layer.multipliers.as_ref().expect("conv has multipliers");
    let in_zp = layer.in_q.zero_point;
    let m = oh * ow;
    let mut out = vec![0i8; m * g.out_c];
    if depthwise {
        // one single-channel GEMV per channel, written back interleaved;
        // weights are stored `(kh, kw, c)` so each channel's column is a
        // stride-`c` gather
        let window = g.kernel_h * g.kernel_w;
        let mut col = vec![0i8; m];
        for ch in 0..g.in_c {
            let patches = im2col_dw_channel(input, g, ch, in_zp as i8);
            let w_ch = depthwise_weight_col(w, g, ch);
            gemm_i8_fused(
                m,
                window,
                1,
                &patches,
                in_zp,
                &w_ch,
                &b[ch..ch + 1],
                |_, acc| finish(acc, ch, mults, layer, act, float_act),
                &mut col,
            );
            for (pix, &v) in col.iter().enumerate() {
                out[pix * g.in_c + ch] = v;
            }
        }
    } else {
        let patches = im2col_2d(input, g, in_zp as i8);
        gemm_i8_fused(
            m,
            g.kernel_h * g.kernel_w * g.in_c,
            g.out_c,
            &patches,
            in_zp,
            w,
            b,
            |co, acc| finish(acc, co, mults, layer, act, float_act),
            &mut out,
        );
    }
    Ok(out)
}

/// Requantizes an accumulator; for sigmoid/tanh falls back to float.
fn finish(
    acc: i32,
    ch: usize,
    mults: &[FixedMultiplier],
    layer: &QLayer,
    act: Activation,
    float_act: bool,
) -> i8 {
    if float_act {
        let cq = layer.w_quant.as_ref().expect("parameterized layer");
        let real = acc as f32 * layer.in_q.scale * cq.scales[ch % cq.len()];
        layer.out_q.quantize(act.apply(real))
    } else {
        requantize(acc, mults[ch % mults.len()], layer.out_q, act)
    }
}

/// int8 max pooling (shares geometry rules with the float path).
fn maxpool_q(input: &[i8], dims: Dims, size: usize) -> Vec<i8> {
    let (h, w, c) = if dims.h == 1 { (dims.w, 1, dims.c) } else { (dims.h, dims.w, dims.c) };
    if dims.h == 1 {
        // 1-D: pool over steps
        let ow = h / size;
        let mut out = vec![i8::MIN; ow * c];
        for ox in 0..ow {
            for k in 0..size {
                let base = (ox * size + k) * c;
                for ch in 0..c {
                    out[ox * c + ch] = out[ox * c + ch].max(input[base + ch]);
                }
            }
        }
        return out;
    }
    let (oh, ow) = (h / size, w / size);
    let mut out = vec![i8::MIN; oh * ow * c];
    for oy in 0..oh {
        for ox in 0..ow {
            let obase = (oy * ow + ox) * c;
            for ky in 0..size {
                for kx in 0..size {
                    let ibase = ((oy * size + ky) * w + ox * size + kx) * c;
                    for ch in 0..c {
                        out[obase + ch] = out[obase + ch].max(input[ibase + ch]);
                    }
                }
            }
        }
    }
    out
}

/// int8 average pooling with rounded integer division.
fn avgpool_q(input: &[i8], dims: Dims, size: usize) -> Vec<i8> {
    let div = |s: i32, n: i32| -> i8 {
        let r = if s >= 0 { (s + n / 2) / n } else { (s - n / 2) / n };
        r.clamp(-128, 127) as i8
    };
    if dims.h == 1 {
        let ow = dims.w / size;
        let c = dims.c;
        let mut out = vec![0i8; ow * c];
        for ox in 0..ow {
            for ch in 0..c {
                let mut s = 0i32;
                for k in 0..size {
                    s += input[(ox * size + k) * c + ch] as i32;
                }
                out[ox * c + ch] = div(s, size as i32);
            }
        }
        return out;
    }
    let (oh, ow) = (dims.h / size, dims.w / size);
    let c = dims.c;
    let n = (size * size) as i32;
    let mut out = vec![0i8; oh * ow * c];
    for oy in 0..oh {
        for ox in 0..ow {
            for ch in 0..c {
                let mut s = 0i32;
                for ky in 0..size {
                    for kx in 0..size {
                        s += input[((oy * size + ky) * dims.w + ox * size + kx) * c + ch] as i32;
                    }
                }
                out[(oy * ow + ox) * c + ch] = div(s, n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec, Padding};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    fn dense_model() -> Sequential {
        let spec = ModelSpec::new(Dims::new(1, 8, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 16, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 4, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        Sequential::build(&spec, 3).unwrap()
    }

    #[test]
    fn quantized_dense_tracks_float() {
        let model = dense_model();
        let calib = random_inputs(32, 8, 1);
        let qmodel = quantize_model(&model, &calib).unwrap();
        let mut max_err = 0.0f32;
        for x in random_inputs(16, 8, 2) {
            let f = model.forward(&x).unwrap();
            let q = qmodel.forward(&x).unwrap();
            for (a, b) in f.iter().zip(&q) {
                max_err = max_err.max((a - b).abs());
            }
        }
        assert!(max_err < 0.1, "softmax outputs diverged by {max_err}");
    }

    #[test]
    fn quantized_argmax_agrees_with_float() {
        let model = dense_model();
        let calib = random_inputs(32, 8, 1);
        let qmodel = quantize_model(&model, &calib).unwrap();
        let mut agree = 0;
        let probes = random_inputs(50, 8, 7);
        for x in &probes {
            let f = model.forward(x).unwrap();
            let q = qmodel.forward(x).unwrap();
            if ei_tensor::ops::argmax(&f) == ei_tensor::ops::argmax(&q) {
                agree += 1;
            }
        }
        assert!(agree >= 45, "only {agree}/50 argmax agreements");
    }

    #[test]
    fn quantized_conv_model_tracks_float() {
        let spec = ModelSpec::new(Dims::new(8, 8, 1))
            .layer(LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::MaxPool { size: 2 })
            .layer(LayerSpec::DepthwiseConv2d {
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu6,
            })
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        let model = Sequential::build(&spec, 9).unwrap();
        let calib = random_inputs(16, 64, 4);
        let qmodel = quantize_model(&model, &calib).unwrap();
        for x in random_inputs(8, 64, 5) {
            let f = model.forward(&x).unwrap();
            let q = qmodel.forward(&x).unwrap();
            for (a, b) in f.iter().zip(&q) {
                assert!((a - b).abs() < 0.15, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn conv1d_and_pools_quantize() {
        let spec = ModelSpec::new(Dims::new(1, 16, 2))
            .layer(LayerSpec::Conv1d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::AvgPool { size: 2 })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        let model = Sequential::build(&spec, 2).unwrap();
        let calib = random_inputs(16, 32, 6);
        let qmodel = quantize_model(&model, &calib).unwrap();
        for x in random_inputs(4, 32, 8) {
            let f = model.forward(&x).unwrap();
            let q = qmodel.forward(&x).unwrap();
            assert_eq!(ei_tensor::ops::argmax(&f), ei_tensor::ops::argmax(&q), "f {f:?} q {q:?}");
        }
    }

    #[test]
    fn weight_bytes_quarter_of_float() {
        let model = dense_model();
        let calib = random_inputs(8, 8, 1);
        let qmodel = quantize_model(&model, &calib).unwrap();
        let float_bytes = model.param_count() * 4;
        let q_bytes = qmodel.weight_bytes();
        // int8 weights + int32 biases: a bit over 1/4 of float
        assert!(q_bytes < float_bytes / 3, "{q_bytes} vs {float_bytes}");
    }

    #[test]
    fn batchnorm_folded_automatically() {
        let spec = ModelSpec::new(Dims::new(4, 4, 1))
            .layer(LayerSpec::Conv2d {
                filters: 2,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::None,
            })
            .layer(LayerSpec::BatchNorm)
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Softmax);
        let model = Sequential::build(&spec, 1).unwrap();
        let qmodel = quantize_model(&model, &random_inputs(8, 16, 3)).unwrap();
        assert!(
            qmodel.layers().iter().all(|l| l.spec != LayerSpec::BatchNorm),
            "batchnorm must be folded away"
        );
    }

    #[test]
    fn forward_validates_input_len() {
        let model = dense_model();
        let qmodel = quantize_model(&model, &random_inputs(4, 8, 1)).unwrap();
        assert!(qmodel.forward(&[0.0; 3]).is_err());
    }

    #[test]
    fn relu_bounds_clamp_in_integer_domain() {
        let q = QuantParams::from_range(-2.0, 2.0);
        let (lo, hi) = activation_bounds(Activation::Relu, q);
        assert_eq!(lo, q.zero_point);
        assert_eq!(hi, 127);
        let (lo6, hi6) = activation_bounds(Activation::Relu6, q);
        assert_eq!(lo6, q.zero_point);
        assert!(hi6 <= 127);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_quantized_close_to_float(seed in 0u64..500) {
            let spec = ModelSpec::new(Dims::new(1, 6, 1))
                .layer(LayerSpec::Flatten)
                .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
                .layer(LayerSpec::Dense { units: 3, activation: Activation::None });
            let model = Sequential::build(&spec, seed).unwrap();
            let calib = random_inputs(24, 6, seed);
            let qmodel = quantize_model(&model, &calib).unwrap();
            // probe with calibration samples: inside the calibrated range the
            // int8 grid bounds the error; out-of-range inputs may clip
            for x in calib.iter().take(6) {
                let f = model.forward(x).unwrap();
                let q = qmodel.forward(x).unwrap();
                for (a, b) in f.iter().zip(&q) {
                    prop_assert!((a - b).abs() < 0.25, "float {a} vs quant {b}");
                }
            }
        }
    }
}
