//! Activation-range calibration over representative data.

use crate::qparams::QuantParams;
use crate::{QuantError, Result};
use ei_nn::Sequential;

/// Observed activation ranges: index 0 is the model input, index `i + 1`
/// the output of layer `i`.
#[derive(Debug, Clone)]
pub struct ActivationRanges {
    ranges: Vec<(f32, f32)>,
}

impl ActivationRanges {
    /// Number of tracked activation boundaries (layers + 1).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when nothing was tracked.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// `(min, max)` observed at boundary `i`.
    pub fn range(&self, i: usize) -> (f32, f32) {
        self.ranges[i]
    }

    /// Quantization parameters for boundary `i`.
    pub fn qparams(&self, i: usize) -> QuantParams {
        let (min, max) = self.ranges[i];
        QuantParams::from_range(min, max)
    }
}

/// Runs `calibration` samples through the float model, recording min/max of
/// every activation boundary.
///
/// # Errors
///
/// Returns [`QuantError::InvalidCalibration`] for an empty calibration set
/// and propagates forward-pass failures (wrong input size).
pub fn calibrate(model: &Sequential, calibration: &[Vec<f32>]) -> Result<ActivationRanges> {
    if calibration.is_empty() {
        return Err(QuantError::InvalidCalibration("calibration set is empty".into()));
    }
    let n_bounds = model.layers().len() + 1;
    let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); n_bounds];
    for sample in calibration {
        let cache = model.forward_cached(sample, false, None)?;
        for (r, act) in ranges.iter_mut().zip(&cache.activations) {
            for &v in act {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
    }
    // guard against NaN-producing degenerate boundaries
    for r in &mut ranges {
        if !r.0.is_finite() || !r.1.is_finite() {
            *r = (-1.0, 1.0);
        }
    }
    Ok(ActivationRanges { ranges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};

    fn model() -> Sequential {
        let spec = ModelSpec::new(Dims::new(1, 3, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 4, activation: Activation::Relu })
            .layer(LayerSpec::Softmax);
        Sequential::build(&spec, 1).unwrap()
    }

    #[test]
    fn rejects_empty_calibration() {
        assert!(calibrate(&model(), &[]).is_err());
    }

    #[test]
    fn tracks_input_range() {
        let m = model();
        let ranges = calibrate(&m, &[vec![-2.0, 0.0, 3.0], vec![1.0, -5.0, 0.5]]).unwrap();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges.range(0), (-5.0, 3.0));
    }

    #[test]
    fn relu_output_nonnegative() {
        let m = model();
        let ranges = calibrate(&m, &[vec![1.0, -1.0, 2.0]]).unwrap();
        let (lo, _) = ranges.range(2);
        assert!(lo >= 0.0, "relu output min must be >= 0, got {lo}");
    }

    #[test]
    fn softmax_output_within_unit_interval() {
        let m = model();
        let ranges = calibrate(&m, &[vec![1.0, -1.0, 2.0]]).unwrap();
        let (lo, hi) = ranges.range(3);
        assert!(lo >= 0.0 && hi <= 1.0);
        let q = ranges.qparams(3);
        assert!(q.scale <= 1.0 / 255.0 + 1e-6);
    }

    #[test]
    fn wrong_input_size_propagates() {
        assert!(calibrate(&model(), &[vec![1.0]]).is_err());
    }
}
