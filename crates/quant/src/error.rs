//! Error type for quantization and fusion passes.

use std::fmt;

/// Errors produced while quantizing, fusing, or running quantized models.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// Calibration data was missing or inconsistent.
    InvalidCalibration(String),
    /// A layer type cannot be quantized (or must be fused away first).
    UnsupportedLayer(String),
    /// The input to a quantized forward pass had the wrong length.
    InputLengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// An upstream model error.
    Model(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidCalibration(msg) => write!(f, "invalid calibration: {msg}"),
            QuantError::UnsupportedLayer(msg) => write!(f, "unsupported layer: {msg}"),
            QuantError::InputLengthMismatch { expected, actual } => {
                write!(f, "input length mismatch: expected {expected}, got {actual}")
            }
            QuantError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {}

impl From<ei_nn::NnError> for QuantError {
    fn from(e: ei_nn::NnError) -> Self {
        QuantError::Model(e.to_string())
    }
}

impl From<ei_tensor::TensorError> for QuantError {
    fn from(e: ei_tensor::TensorError) -> Self {
        QuantError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QuantError = ei_nn::NnError::InvalidTrainingData("x".into()).into();
        assert!(matches!(e, QuantError::Model(_)));
        assert!(!e.to_string().is_empty());
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<QuantError>();
    }
}
