#![warn(missing_docs)]

//! Always-on production telemetry for the MLOps platform.
//!
//! `ei-trace` (PR 2) built the *per-run* substrate: spans, events and a
//! metrics registry behind one subscriber, aimed at offline export. This
//! crate is the *fleet-scale* layer the ROADMAP's north star (heavy
//! traffic from millions of tenants) demands — telemetry that is always
//! on, cardinality-bounded, and cheap enough to leave enabled:
//!
//! * [`registry`] — [`ObsRegistry`], a striped per-shard metric table
//!   with one label dimension (the tenant) and a hard per-metric label
//!   cardinality cap: overflow folds into a single `__other__` series,
//!   so tenants can't allocate unbounded series. Shards merge on scrape.
//! * [`slo`] — declarative latency/error-rate objectives evaluated as
//!   multi-window burn rates on the injected [`ei_faults::Clock`],
//!   firing typed `slo.breach` events.
//! * [`recorder`] — [`FlightRecorder`], a fixed-size per-shard ring of
//!   recent trace records that cuts a causal JSONL capture (the whole
//!   request tree, via the `trace` id every span now carries) whenever
//!   an SLO breach, deadline-exceeded, dead-letter or worker crash
//!   fires.
//! * [`Obs`] — the facade wiring all three to one [`Tracer`]: serving
//!   calls [`Obs::record_request`] per completed request; breaches flow
//!   through the tracer, trip the recorder, and land in [`Obs::dumps`].
//!
//! Everything is deterministic under an [`ei_faults::VirtualClock`]:
//! same record stream in, byte-identical dumps and expositions out, at
//! any `EI_THREADS`.
//!
//! ```
//! use ei_faults::{Clock, VirtualClock};
//! use ei_obs::{Obs, SloSpec};
//! use std::sync::Arc;
//!
//! let clock = VirtualClock::shared();
//! let obs = Obs::builder(clock.clone())
//!     .slo(SloSpec::latency("serve-p99", 100.0, 0.9).with_min_samples(4))
//!     .build();
//! for i in 0..8 {
//!     clock.advance_ms(10);
//!     // A storm of slow requests burns the 10% error budget…
//!     obs.record_request("alpha", 500.0, true);
//! }
//! // …and the breach left a flight-recorder capture behind.
//! assert_eq!(obs.dumps().len(), 1);
//! assert!(obs.prometheus().contains("tenant=\"alpha\""));
//! ```

pub mod recorder;
pub mod registry;
pub mod slo;

pub use recorder::{FlightDump, FlightRecorder, DEFAULT_TRIGGERS};
pub use registry::{ObsRegistry, SeriesValue, OTHER_LABEL};
pub use slo::{BurnWindow, SloBreach, SloKind, SloMonitor, SloSpec};

use ei_faults::Clock;
use ei_trace::{Subscriber, Tracer};
use std::sync::{Arc, Mutex, MutexGuard};

/// Latency histogram bounds used by [`Obs::record_request`] (logical
/// ms; same decade ladder the serving layer uses).
pub const LATENCY_BOUNDS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Builder for [`Obs`]; see [`Obs::builder`].
pub struct ObsBuilder {
    clock: Arc<dyn Clock>,
    shards: usize,
    ring_capacity: usize,
    label_cap: usize,
    slos: Vec<SloSpec>,
    triggers: Option<Vec<String>>,
    tee: Option<Arc<dyn Subscriber>>,
}

impl ObsBuilder {
    /// Sets the stripe count for the metric registry and recorder rings.
    pub fn shards(mut self, n: usize) -> ObsBuilder {
        self.shards = n;
        self
    }

    /// Sets the flight-recorder retention (total records across shards).
    pub fn ring_capacity(mut self, n: usize) -> ObsBuilder {
        self.ring_capacity = n;
        self
    }

    /// Sets the per-metric label cardinality cap.
    pub fn label_cap(mut self, n: usize) -> ObsBuilder {
        self.label_cap = n;
        self
    }

    /// Adds one SLO to monitor.
    pub fn slo(mut self, spec: SloSpec) -> ObsBuilder {
        self.slos.push(spec);
        self
    }

    /// Replaces the flight-recorder trigger event names.
    pub fn triggers<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> ObsBuilder {
        self.triggers = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Tees the full record stream to a downstream subscriber (e.g. a
    /// [`ei_trace::CollectingSubscriber`] in tests).
    pub fn tee(mut self, tee: Arc<dyn Subscriber>) -> ObsBuilder {
        self.tee = Some(tee);
        self
    }

    /// Builds the [`Obs`] hub.
    pub fn build(self) -> Arc<Obs> {
        let mut recorder = FlightRecorder::new(self.shards, self.ring_capacity);
        if let Some(triggers) = self.triggers {
            recorder = recorder.with_triggers(triggers);
        }
        if let Some(tee) = self.tee {
            recorder = recorder.with_tee(tee);
        }
        let recorder = Arc::new(recorder);
        let tracer = Tracer::new(Arc::<FlightRecorder>::clone(&recorder) as _, self.clock.clone());
        Arc::new(Obs {
            tracer,
            clock: self.clock,
            recorder,
            registry: ObsRegistry::new(self.shards, self.label_cap),
            monitors: Mutex::new(self.slos.into_iter().map(SloMonitor::new).collect()),
        })
    }
}

/// The telemetry hub: one tracer (backed by the flight recorder), one
/// sharded registry, and the SLO monitors, all on one injected clock.
pub struct Obs {
    tracer: Tracer,
    clock: Arc<dyn Clock>,
    recorder: Arc<FlightRecorder>,
    registry: ObsRegistry,
    monitors: Mutex<Vec<SloMonitor>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("recorder", &self.recorder).finish()
    }
}

impl Obs {
    /// Starts building an [`Obs`] hub on `clock`. Defaults: 8 shards, a
    /// 4096-record ring, 64 labels per metric, no SLOs, default
    /// triggers.
    pub fn builder(clock: Arc<dyn Clock>) -> ObsBuilder {
        ObsBuilder {
            clock,
            shards: 8,
            ring_capacity: 4096,
            label_cap: 64,
            slos: Vec::new(),
            triggers: None,
            tee: None,
        }
    }

    /// An [`Obs`] hub with all defaults.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Obs> {
        Obs::builder(clock).build()
    }

    /// The tracer instrumented layers should record through: its
    /// subscriber is the flight recorder (plus any tee).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The sharded always-on metric registry.
    pub fn registry(&self) -> &ObsRegistry {
        &self.registry
    }

    /// The flight recorder behind the tracer.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The injected clock every monitor and burn-rate window reads.
    /// Layers that make time-based decisions off this hub's telemetry
    /// (e.g. a rebalance policy polling occupancy gauges) should read
    /// the same clock so their windows line up with the monitors'.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Folds one completed request into the registry and every matching
    /// SLO monitor; fires `slo.breach` (tripping the recorder) on
    /// breach. Call this from the serving completion path.
    pub fn record_request(&self, tenant: &str, latency_ms: f64, ok: bool) {
        self.registry.observe("serve.latency_ms", tenant, latency_ms, &LATENCY_BOUNDS);
        self.registry.add(if ok { "serve.ok" } else { "serve.err" }, tenant, 1);
        let now_ms = self.clock.now_ms();
        let mut breaches = Vec::new();
        {
            let mut monitors = lock(&self.monitors);
            for monitor in monitors.iter_mut().filter(|m| m.watches(tenant)) {
                if let Some(breach) = monitor.record(now_ms, latency_ms, ok) {
                    breaches.push(breach);
                }
            }
        }
        // Emit outside the monitor lock: the recorder's capture path may
        // be arbitrarily heavy and must not serialize other recorders.
        for breach in breaches {
            self.tracer.event(
                "slo.breach",
                vec![
                    ("slo", breach.name.clone().into()),
                    ("tenant", breach.tenant.clone().unwrap_or_else(|| tenant.to_string()).into()),
                    ("samples", (breach.samples as u64).into()),
                    ("burn_rate", breach.burn_rates.first().copied().unwrap_or(0.0).into()),
                ],
            );
        }
    }

    /// Clones of every flight-recorder capture so far.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.recorder.dumps()
    }

    /// The sharded registry *and* the tracer's own metric registry,
    /// rendered as one Prometheus-style exposition (labeled series
    /// first, then the tracer's unlabeled ones).
    pub fn prometheus(&self) -> String {
        let mut out = self.registry.to_prometheus();
        out.push_str(&self.tracer.prometheus());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_faults::VirtualClock;

    #[test]
    fn record_request_feeds_registry_and_monitors() {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone())
            .slo(SloSpec::latency("p99", 100.0, 0.9).with_min_samples(4).for_tenant("alpha"))
            .build();
        for _ in 0..4 {
            clock.advance_ms(5);
            obs.record_request("alpha", 400.0, true);
            obs.record_request("beta", 400.0, true); // unwatched tenant
        }
        assert_eq!(obs.registry().counter("serve.ok", "alpha"), Some(4));
        let dumps = obs.dumps();
        assert_eq!(dumps.len(), 1, "alpha's storm must breach exactly once");
        assert_eq!(dumps[0].trigger, "slo.breach");
        assert!(obs.prometheus().contains("serve_latency_ms_bucket{tenant=\"alpha\",le=\"1\"}"));
    }

    #[test]
    fn healthy_traffic_leaves_no_dumps() {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone())
            .slo(SloSpec::latency("p99", 100.0, 0.9).with_min_samples(4))
            .build();
        for _ in 0..50 {
            clock.advance_ms(5);
            obs.record_request("alpha", 3.0, true);
        }
        assert!(obs.dumps().is_empty());
        assert_eq!(obs.registry().counter("serve.ok", "alpha"), Some(50));
    }

    #[test]
    fn error_rate_slo_counts_failures() {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone())
            .slo(SloSpec::error_rate("avail", 0.5).with_min_samples(2).with_cooldown_ms(0))
            .build();
        clock.advance_ms(1);
        obs.record_request("t", 1.0, false);
        clock.advance_ms(1);
        obs.record_request("t", 1.0, false);
        assert_eq!(obs.registry().counter("serve.err", "t"), Some(2));
        assert!(!obs.dumps().is_empty());
    }
}
