//! Declarative SLOs evaluated as multi-window burn rates.
//!
//! An [`SloSpec`] states an objective ("99% of requests under 100 ms");
//! an [`SloMonitor`] folds request outcomes into per-window bad-event
//! fractions and converts them to **burn rates** — the fraction of the
//! error budget (`1 - target`) being spent, normalized so a burn rate of
//! `1.0` means "exactly on budget". A breach fires only when *every*
//! configured window exceeds its threshold (the classic multi-window
//! guard: the short window proves the problem is happening *now*, the
//! long window proves it is not a blip), and re-fires are separated by a
//! cooldown. All timing comes from caller-supplied logical milliseconds,
//! so monitors are deterministic under an [`ei_faults::VirtualClock`].

use std::collections::VecDeque;

/// One evaluation window of a multi-window burn-rate rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Window length in logical milliseconds.
    pub window_ms: u64,
    /// Minimum burn rate over the window for this window to vote
    /// "breach" (e.g. `14.4` = burning a 30-day budget in 2 days).
    pub burn_threshold: f64,
}

/// What counts as a "bad" request for an objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Bad = failed, or slower than `threshold_ms`.
    Latency {
        /// Latency objective threshold in logical milliseconds.
        threshold_ms: f64,
    },
    /// Bad = failed.
    ErrorRate,
}

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name, carried on the fired `slo.breach` event.
    pub name: String,
    /// Restrict the objective to one tenant (`None` = all traffic).
    pub tenant: Option<String>,
    /// What counts as bad.
    pub kind: SloKind,
    /// Success objective in `(0, 1)` (e.g. `0.99`); the error budget is
    /// `1 - target`.
    pub target: f64,
    /// Burn-rate windows; **all** must exceed their thresholds to fire.
    pub windows: Vec<BurnWindow>,
    /// Minimum logical ms between two firings of this objective.
    pub cooldown_ms: u64,
    /// Don't evaluate before this many samples are retained (avoids
    /// firing off a single bad request at startup).
    pub min_samples: usize,
}

impl SloSpec {
    /// A latency objective: `target` of requests under `threshold_ms`.
    /// Default windows: a 5 s window at burn ≥ 2 and a 60 s window at
    /// burn ≥ 1 (tight, bench-scale equivalents of the 1 h/6 h pages),
    /// 30 s cooldown, 10-sample floor.
    pub fn latency(name: &str, threshold_ms: f64, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            tenant: None,
            kind: SloKind::Latency { threshold_ms },
            target,
            windows: vec![
                BurnWindow { window_ms: 5_000, burn_threshold: 2.0 },
                BurnWindow { window_ms: 60_000, burn_threshold: 1.0 },
            ],
            cooldown_ms: 30_000,
            min_samples: 10,
        }
    }

    /// An availability objective: `target` of requests succeed.
    pub fn error_rate(name: &str, target: f64) -> SloSpec {
        SloSpec { kind: SloKind::ErrorRate, ..SloSpec::latency(name, 0.0, target) }
    }

    /// Scopes the objective to one tenant's traffic.
    pub fn for_tenant(mut self, tenant: &str) -> SloSpec {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// Replaces the burn-rate windows.
    pub fn with_windows(mut self, windows: Vec<BurnWindow>) -> SloSpec {
        self.windows = windows;
        self
    }

    /// Sets the re-fire cooldown.
    pub fn with_cooldown_ms(mut self, ms: u64) -> SloSpec {
        self.cooldown_ms = ms;
        self
    }

    /// Sets the minimum retained samples before evaluation.
    pub fn with_min_samples(mut self, n: usize) -> SloSpec {
        self.min_samples = n;
        self
    }
}

/// A fired breach: every window's burn rate exceeded its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SloBreach {
    /// The objective's name.
    pub name: String,
    /// The objective's tenant scope, if any.
    pub tenant: Option<String>,
    /// Logical ms at which the breach fired.
    pub at_ms: u64,
    /// Burn rate per window, in spec order.
    pub burn_rates: Vec<f64>,
    /// Samples retained at evaluation time.
    pub samples: usize,
}

/// Evaluates one [`SloSpec`] over a stream of request outcomes.
#[derive(Debug)]
pub struct SloMonitor {
    spec: SloSpec,
    /// (logical ms, was bad) per retained sample, oldest first.
    samples: VecDeque<(u64, bool)>,
    last_fired_ms: Option<u64>,
}

impl SloMonitor {
    /// A monitor with no history.
    pub fn new(spec: SloSpec) -> SloMonitor {
        SloMonitor { spec, samples: VecDeque::new(), last_fired_ms: None }
    }

    /// The objective under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// `true` when this monitor watches `tenant`'s traffic.
    pub fn watches(&self, tenant: &str) -> bool {
        self.spec.tenant.as_deref().is_none_or(|t| t == tenant)
    }

    /// The burn rate over the trailing `window_ms` at `now_ms`: bad
    /// fraction divided by the error budget (`0.0` with no samples).
    pub fn burn_rate(&self, now_ms: u64, window_ms: u64) -> f64 {
        let from = now_ms.saturating_sub(window_ms);
        let (mut bad, mut total) = (0u64, 0u64);
        for &(ts, is_bad) in self.samples.iter().rev() {
            if ts < from {
                break;
            }
            total += 1;
            bad += is_bad as u64;
        }
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.spec.target).max(f64::MIN_POSITIVE);
        (bad as f64 / total as f64) / budget
    }

    /// Folds one request outcome in and evaluates the objective.
    /// `now_ms` must be monotone non-decreasing (use the injected clock).
    pub fn record(&mut self, now_ms: u64, latency_ms: f64, ok: bool) -> Option<SloBreach> {
        let bad = match self.spec.kind {
            SloKind::Latency { threshold_ms } => !ok || latency_ms > threshold_ms,
            SloKind::ErrorRate => !ok,
        };
        self.samples.push_back((now_ms, bad));
        let horizon = self.spec.windows.iter().map(|w| w.window_ms).max().unwrap_or(0);
        let from = now_ms.saturating_sub(horizon);
        while self.samples.front().is_some_and(|&(ts, _)| ts < from) {
            self.samples.pop_front();
        }
        if self.samples.len() < self.spec.min_samples || self.spec.windows.is_empty() {
            return None;
        }
        if let Some(last) = self.last_fired_ms {
            if now_ms.saturating_sub(last) < self.spec.cooldown_ms {
                return None;
            }
        }
        let burn_rates: Vec<f64> =
            self.spec.windows.iter().map(|w| self.burn_rate(now_ms, w.window_ms)).collect();
        let all_burning =
            self.spec.windows.iter().zip(&burn_rates).all(|(w, &rate)| rate >= w.burn_threshold);
        if !all_burning {
            return None;
        }
        self.last_fired_ms = Some(now_ms);
        Some(SloBreach {
            name: self.spec.name.clone(),
            tenant: self.spec.tenant.clone(),
            at_ms: now_ms,
            burn_rates,
            samples: self.samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_spec() -> SloSpec {
        SloSpec::latency("lat", 100.0, 0.9)
            .with_windows(vec![
                BurnWindow { window_ms: 100, burn_threshold: 2.0 },
                BurnWindow { window_ms: 1_000, burn_threshold: 1.0 },
            ])
            .with_min_samples(4)
            .with_cooldown_ms(500)
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let mut m = SloMonitor::new(tight_spec());
        for t in 0..200u64 {
            assert_eq!(m.record(t * 10, 5.0, true), None);
        }
    }

    #[test]
    fn sustained_slow_traffic_fires_once_per_cooldown() {
        let mut m = SloMonitor::new(tight_spec());
        let mut fired = Vec::new();
        for t in 0..100u64 {
            if let Some(b) = m.record(t * 10, 500.0, true) {
                fired.push(b.at_ms);
            }
        }
        assert!(!fired.is_empty(), "all-bad traffic must breach");
        assert!(fired.windows(2).all(|w| w[1] - w[0] >= 500), "cooldown not honored: {fired:?}");
        // Burn rate of all-bad traffic against a 0.9 target is 10x.
        let rate = m.burn_rate(990, 1_000);
        assert!((rate - 10.0).abs() < 1e-9, "burn {rate}");
    }

    #[test]
    fn short_blip_does_not_fire_the_long_window() {
        let mut m = SloMonitor::new(tight_spec());
        // 96 good then 4 bad: short window burns hot, the 1 s window
        // sits at 4% bad = 0.4 burn < 1.0 → no fire.
        for t in 0..96u64 {
            assert_eq!(m.record(t * 10, 5.0, true), None);
        }
        for t in 96..100u64 {
            assert_eq!(m.record(t * 10, 500.0, true), None, "blip at t={t} must not fire");
        }
    }

    #[test]
    fn min_samples_gates_early_evaluation() {
        let mut m = SloMonitor::new(tight_spec());
        for t in 0..3u64 {
            assert_eq!(m.record(t, 999.0, false), None);
        }
        assert!(m.record(3, 999.0, false).is_some(), "4th bad sample reaches the floor");
    }

    #[test]
    fn error_rate_kind_ignores_latency() {
        let spec = SloSpec::error_rate("avail", 0.5)
            .with_windows(vec![BurnWindow { window_ms: 1_000, burn_threshold: 1.0 }])
            .with_min_samples(1)
            .with_cooldown_ms(0);
        let mut m = SloMonitor::new(spec);
        assert_eq!(m.record(0, 10_000.0, true), None, "slow-but-ok is fine for availability");
        assert!(m.record(1, 1.0, false).is_some());
    }

    #[test]
    fn tenant_scoping() {
        let m = SloMonitor::new(tight_spec().for_tenant("alpha"));
        assert!(m.watches("alpha"));
        assert!(!m.watches("beta"));
        let all = SloMonitor::new(tight_spec());
        assert!(all.watches("anyone"));
    }
}
