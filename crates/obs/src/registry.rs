//! The sharded, always-on metrics registry with bounded label cardinality.
//!
//! [`ObsRegistry`] is the production counterpart of the per-run
//! [`ei_trace::MetricsRegistry`]: series carry one label dimension
//! (typically the tenant), recording is striped over independently locked
//! shards so concurrent hot paths do not serialize on one mutex, and the
//! number of distinct labels per metric is capped — once a metric has
//! `label_cap` admitted labels, every new label folds into a single
//! `__other__` series, so a million tenants cannot allocate a million
//! series per metric.
//!
//! Shard choice is a pure function of the series key (FNV-1a of
//! `metric\0label`), so one key always lands in one shard and a merged
//! snapshot is the disjoint-union of shards — except `__other__`, whose
//! observations stay in the *original* label's shard (keeping the fold
//! single-lock) and are summed across shards on scrape.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The label value overflow series fold into once a metric's label
/// cardinality cap is reached.
pub const OTHER_LABEL: &str = "__other__";

/// One series key: metric name plus one label value (empty = unlabeled).
pub type SeriesKey = (String, String);

/// Aggregated state of one labeled series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last value set, with a registry-global stamp so merges across
    /// shards keep last-wins semantics.
    Gauge {
        /// The value.
        value: f64,
        /// Registry-global write stamp (higher wins on merge).
        stamp: u64,
    },
    /// Fixed-bucket histogram (same shape as
    /// [`ei_trace::MetricValue::Histogram`]).
    Histogram {
        /// Finite bucket upper bounds, ascending, sanitized at creation.
        bounds: Vec<f64>,
        /// Non-cumulative per-bucket counts (`bounds.len() + 1`; last is
        /// the implicit `+Inf` bucket).
        counts: Vec<u64>,
        /// Sum of accepted observations.
        sum: f64,
        /// Count of accepted observations.
        count: u64,
        /// NaN/±inf observations rejected rather than poisoning `sum`.
        dropped: u64,
    },
}

enum Slot {
    Series(SeriesValue),
    /// This label was folded: recordings redirect to the shard-local
    /// `(metric, "__other__")` series.
    Redirect,
}

type Shard = BTreeMap<SeriesKey, Slot>;

fn fnv1a(metric: &str, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in metric.bytes().chain(std::iter::once(0)).chain(label.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn sanitize_bounds(bounds: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare totally"));
    out.dedup();
    out
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A striped, label-aware metric aggregation table. See the module docs.
pub struct ObsRegistry {
    shards: Vec<Mutex<Shard>>,
    /// Max distinct labels admitted per metric before folding.
    label_cap: usize,
    /// metric → admitted labels (consulted only on first sight of a key).
    admitted: Mutex<BTreeMap<String, BTreeSet<String>>>,
    gauge_stamp: AtomicU64,
    folded: AtomicU64,
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRegistry")
            .field("shards", &self.shards.len())
            .field("label_cap", &self.label_cap)
            .finish()
    }
}

impl ObsRegistry {
    /// A registry striped over `shards` mutexes, folding each metric's
    /// labels past `label_cap` into [`OTHER_LABEL`].
    pub fn new(shards: usize, label_cap: usize) -> ObsRegistry {
        let shards = shards.max(1);
        ObsRegistry {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            label_cap: label_cap.max(1),
            admitted: Mutex::new(BTreeMap::new()),
            gauge_stamp: AtomicU64::new(0),
            folded: AtomicU64::new(0),
        }
    }

    fn shard(&self, metric: &str, label: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(metric, label) % self.shards.len() as u64) as usize]
    }

    /// Decides (and caches, as a shard slot) whether `label` is admitted
    /// for `metric`, then runs `update` on the resolved series slot.
    fn with_series(
        &self,
        metric: &str,
        label: &str,
        mut make: impl FnMut() -> SeriesValue,
        mut update: impl FnMut(&mut SeriesValue),
    ) {
        let key = (metric.to_string(), label.to_string());
        let shard = self.shard(metric, label);
        {
            let mut guard = lock(shard);
            match guard.get_mut(&key) {
                Some(Slot::Series(v)) => {
                    update(v);
                    return;
                }
                Some(Slot::Redirect) => {
                    let other = (metric.to_string(), OTHER_LABEL.to_string());
                    let slot = guard.entry(other).or_insert_with(|| Slot::Series(make()));
                    if let Slot::Series(v) = slot {
                        update(v);
                    }
                    self.folded.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                None => {}
            }
        }
        // First sight of this (metric, label): consult the admission map
        // outside the shard lock (strict lock order: shard, then neither).
        let admit = label == OTHER_LABEL || label.is_empty() || {
            let mut admitted = lock(&self.admitted);
            let labels = admitted.entry(metric.to_string()).or_default();
            labels.contains(label)
                || labels.len() < self.label_cap && {
                    labels.insert(label.to_string());
                    true
                }
        };
        let mut guard = lock(shard);
        if admit {
            let slot = guard.entry(key).or_insert_with(|| Slot::Series(make()));
            if let Slot::Series(v) = slot {
                update(v);
            }
        } else {
            guard.insert(key, Slot::Redirect);
            let other = (metric.to_string(), OTHER_LABEL.to_string());
            let slot = guard.entry(other).or_insert_with(|| Slot::Series(make()));
            if let Slot::Series(v) = slot {
                update(v);
            }
            self.folded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n` to the `(metric, label)` counter.
    pub fn add(&self, metric: &str, label: &str, n: u64) {
        self.with_series(
            metric,
            label,
            || SeriesValue::Counter(0),
            |v| {
                if let SeriesValue::Counter(total) = v {
                    *total += n;
                }
            },
        );
    }

    /// Sets the `(metric, label)` gauge (last write wins across shards).
    pub fn set_gauge(&self, metric: &str, label: &str, value: f64) {
        let stamp = self.gauge_stamp.fetch_add(1, Ordering::Relaxed);
        self.with_series(
            metric,
            label,
            || SeriesValue::Gauge { value: 0.0, stamp: 0 },
            |v| {
                if let SeriesValue::Gauge { value: cur, stamp: cur_stamp } = v {
                    if stamp >= *cur_stamp {
                        *cur = value;
                        *cur_stamp = stamp;
                    }
                }
            },
        );
    }

    /// Records one histogram observation for `(metric, label)`. Bounds
    /// are fixed (after sanitizing) by the series' first observation;
    /// non-finite observations count into `dropped` instead of `sum`.
    pub fn observe(&self, metric: &str, label: &str, v: f64, bounds: &[f64]) {
        self.with_series(
            metric,
            label,
            || {
                let bounds = sanitize_bounds(bounds);
                let counts = vec![0; bounds.len() + 1];
                SeriesValue::Histogram { bounds, counts, sum: 0.0, count: 0, dropped: 0 }
            },
            |slot| {
                if let SeriesValue::Histogram { bounds, counts, sum, count, dropped } = slot {
                    if !v.is_finite() {
                        *dropped += 1;
                        return;
                    }
                    let idx = bounds.iter().position(|b| v <= *b).unwrap_or(bounds.len());
                    counts[idx] += 1;
                    *sum += v;
                    *count += 1;
                }
            },
        );
    }

    /// Total recordings that were folded into [`OTHER_LABEL`] series.
    pub fn folded(&self) -> u64 {
        self.folded.load(Ordering::Relaxed)
    }

    /// A merged point-in-time copy of every series, sorted by
    /// `(metric, label)`. `__other__` partials recorded in different
    /// shards are summed (counters/histograms) or resolved by write
    /// stamp (gauges). Write stamps are erased from the merged view —
    /// they only order writes *during* the merge, and leaving them in
    /// would make two snapshots with identical gauge values compare
    /// unequal depending on thread interleaving.
    pub fn snapshot(&self) -> BTreeMap<SeriesKey, SeriesValue> {
        let mut out: BTreeMap<SeriesKey, SeriesValue> = BTreeMap::new();
        for shard in &self.shards {
            for (key, slot) in lock(shard).iter() {
                let Slot::Series(value) = slot else { continue };
                match out.entry(key.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        merge(e.get_mut(), value);
                    }
                }
            }
        }
        for value in out.values_mut() {
            if let SeriesValue::Gauge { stamp, .. } = value {
                *stamp = 0;
            }
        }
        out
    }

    /// The merged snapshot rendered as a Prometheus-style exposition with
    /// one `tenant` label dimension. Deterministic for a given snapshot.
    pub fn to_prometheus(&self) -> String {
        snapshot_to_prometheus(&self.snapshot())
    }

    /// The current counter total for `(metric, label)`, if any.
    pub fn counter(&self, metric: &str, label: &str) -> Option<u64> {
        match self.snapshot().get(&(metric.to_string(), label.to_string())) {
            Some(SeriesValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }
}

fn merge(into: &mut SeriesValue, from: &SeriesValue) {
    match (into, from) {
        (SeriesValue::Counter(a), SeriesValue::Counter(b)) => *a += b,
        (
            SeriesValue::Gauge { value, stamp },
            SeriesValue::Gauge { value: other_value, stamp: other_stamp },
        ) if other_stamp > stamp => {
            *value = *other_value;
            *stamp = *other_stamp;
        }
        (
            SeriesValue::Histogram { bounds, counts, sum, count, dropped },
            SeriesValue::Histogram {
                bounds: other_bounds,
                counts: other_counts,
                sum: other_sum,
                count: other_count,
                dropped: other_dropped,
            },
        ) => {
            if bounds == other_bounds {
                for (a, b) in counts.iter_mut().zip(other_counts) {
                    *a += b;
                }
                *sum += other_sum;
                *count += other_count;
            } else {
                // Mismatched bounds (first observations raced with
                // different bounds): keep the totals honest at least.
                *count += other_count;
                *sum += other_sum;
            }
            *dropped += other_dropped;
        }
        _ => {}
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

/// Renders a merged snapshot as Prometheus text with a `tenant` label.
pub fn snapshot_to_prometheus(snapshot: &BTreeMap<SeriesKey, SeriesValue>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut last_metric: Option<&str> = None;
    for ((metric, label), value) in snapshot {
        let name = sanitize(metric);
        if last_metric != Some(metric.as_str()) {
            let kind = match value {
                SeriesValue::Counter(_) => "counter",
                SeriesValue::Gauge { .. } => "gauge",
                SeriesValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_metric = Some(metric);
        }
        let tenant = |extra: &str| {
            if label.is_empty() && extra.is_empty() {
                String::new()
            } else if label.is_empty() {
                format!("{{{extra}}}")
            } else if extra.is_empty() {
                format!("{{tenant=\"{label}\"}}")
            } else {
                format!("{{tenant=\"{label}\",{extra}}}")
            }
        };
        match value {
            SeriesValue::Counter(total) => {
                let _ = writeln!(out, "{name}{} {total}", tenant(""));
            }
            SeriesValue::Gauge { value, .. } => {
                let _ = writeln!(out, "{name}{} {value}", tenant(""));
            }
            SeriesValue::Histogram { bounds, counts, sum, count, dropped } => {
                let mut cumulative = 0u64;
                for (bound, bucket) in bounds.iter().zip(counts) {
                    cumulative += bucket;
                    let le = format!("le=\"{bound}\"");
                    let _ = writeln!(out, "{name}_bucket{} {cumulative}", tenant(&le));
                }
                let _ = writeln!(out, "{name}_bucket{} {count}", tenant("le=\"+Inf\""));
                let _ = writeln!(out, "{name}_sum{} {sum}", tenant(""));
                let _ = writeln!(out, "{name}_count{} {count}", tenant(""));
                if *dropped > 0 {
                    let _ = writeln!(out, "{name}_dropped{} {dropped}", tenant(""));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let reg = ObsRegistry::new(8, 16);
        reg.add("serve.ok", "alpha", 2);
        reg.add("serve.ok", "alpha", 3);
        reg.add("serve.ok", "beta", 1);
        assert_eq!(reg.counter("serve.ok", "alpha"), Some(5));
        assert_eq!(reg.counter("serve.ok", "beta"), Some(1));
        assert_eq!(reg.folded(), 0);
    }

    #[test]
    fn labels_past_the_cap_fold_into_other() {
        let reg = ObsRegistry::new(4, 2);
        for tenant in ["a", "b", "c", "d", "c", "d"] {
            reg.add("serve.ok", tenant, 1);
        }
        assert_eq!(reg.counter("serve.ok", "a"), Some(1));
        assert_eq!(reg.counter("serve.ok", "b"), Some(1));
        assert_eq!(reg.counter("serve.ok", "c"), None);
        assert_eq!(reg.counter("serve.ok", OTHER_LABEL), Some(4));
        assert_eq!(reg.folded(), 4);
        // The cap is per metric: a different metric admits fresh labels.
        reg.add("serve.err", "zz", 1);
        assert_eq!(reg.counter("serve.err", "zz"), Some(1));
    }

    #[test]
    fn histograms_aggregate_and_reject_non_finite() {
        let reg = ObsRegistry::new(4, 8);
        let bounds = [1.0, 10.0];
        for v in [0.5, 5.0, 50.0, f64::NAN] {
            reg.observe("lat.ms", "alpha", v, &bounds);
        }
        match reg.snapshot().get(&("lat.ms".into(), "alpha".into())) {
            Some(SeriesValue::Histogram { counts, sum, count, dropped, .. }) => {
                assert_eq!(counts, &vec![1, 1, 1]);
                assert_eq!((*count, *dropped), (3, 1));
                assert!((sum - 55.5).abs() < 1e-9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn gauges_keep_the_latest_write_across_folds() {
        let reg = ObsRegistry::new(4, 1);
        reg.set_gauge("depth", "a", 1.0);
        reg.set_gauge("depth", "b", 2.0); // folds
        reg.set_gauge("depth", "c", 3.0); // folds
        let snap = reg.snapshot();
        match snap.get(&("depth".into(), OTHER_LABEL.into())) {
            Some(SeriesValue::Gauge { value, .. }) => assert_eq!(*value, 3.0),
            other => panic!("expected folded gauge, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_exposition_is_labeled_and_cumulative() {
        let reg = ObsRegistry::new(2, 8);
        reg.add("serve.ok", "alpha", 2);
        reg.observe("lat.ms", "alpha", 0.5, &[1.0, 10.0]);
        reg.observe("lat.ms", "alpha", 500.0, &[1.0, 10.0]);
        let text = reg.to_prometheus();
        let expected = "# TYPE lat_ms histogram\n\
                        lat_ms_bucket{tenant=\"alpha\",le=\"1\"} 1\n\
                        lat_ms_bucket{tenant=\"alpha\",le=\"10\"} 1\n\
                        lat_ms_bucket{tenant=\"alpha\",le=\"+Inf\"} 2\n\
                        lat_ms_sum{tenant=\"alpha\"} 500.5\n\
                        lat_ms_count{tenant=\"alpha\"} 2\n\
                        # TYPE serve_ok counter\n\
                        serve_ok{tenant=\"alpha\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn unlabeled_series_render_bare() {
        let reg = ObsRegistry::new(2, 8);
        reg.add("up", "", 1);
        assert_eq!(reg.to_prometheus(), "# TYPE up counter\nup 1\n");
    }

    #[test]
    fn snapshot_is_identical_regardless_of_shard_count() {
        let feed = |reg: &ObsRegistry| {
            for (i, tenant) in ["a", "b", "c", "d", "e"].iter().enumerate() {
                reg.add("ok", tenant, i as u64 + 1);
                reg.observe("ms", tenant, i as f64, &[1.0, 3.0]);
            }
        };
        let one = ObsRegistry::new(1, 16);
        let many = ObsRegistry::new(16, 16);
        feed(&one);
        feed(&many);
        assert_eq!(one.snapshot(), many.snapshot());
        assert_eq!(one.to_prometheus(), many.to_prometheus());
    }
}
