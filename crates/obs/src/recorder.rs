//! The flight recorder: a bounded ring of recent trace records that
//! dumps a causal JSONL capture when a fault-class event fires.
//!
//! [`FlightRecorder`] is an [`ei_trace::Subscriber`]: it retains the
//! last `capacity` records in fixed-size per-shard rings (shard =
//! `seq % shards`, so retention is a pure function of the record stream
//! and byte-identical wherever the stream is), and watches for trigger
//! events — `slo.breach`, `serve.deadline_exceeded`, `job.dead_letter`,
//! `dist.crash_detected` by default. When one fires, it cuts the
//! retained buffer down to the trigger's causal trace (every span with
//! the same `trace` id, their ends, and the events inside them) and
//! stores the capture as deterministic JSONL, ready to ship or diff.
//!
//! Always-on cost is one shard mutex lock and a ring push per record; a
//! downstream tee subscriber can still collect the full stream.

use ei_trace::export::record_to_json;
use ei_trace::record::RecordKind;
use ei_trace::{Subscriber, TraceRecord};
use std::collections::{BTreeSet, VecDeque};
use std::sync::{Mutex, MutexGuard};

/// Event names that trip the recorder out of the box.
pub const DEFAULT_TRIGGERS: [&str; 4] =
    ["slo.breach", "serve.deadline_exceeded", "job.dead_letter", "dist.crash_detected"];

/// One capture cut from the ring at trigger time.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The trigger event's name.
    pub trigger: String,
    /// The trigger event's sequence number.
    pub seq: u64,
    /// The trigger event's logical timestamp.
    pub ts_ms: u64,
    /// The causal trace id the capture was cut on (`None` when the
    /// trigger event was outside any span — the full ring is dumped).
    pub trace: Option<u64>,
    /// The capture: one JSON object per line, in `seq` order.
    pub jsonl: String,
}

struct Rings {
    shards: Vec<VecDeque<TraceRecord>>,
    per_shard: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// See the module docs.
pub struct FlightRecorder {
    rings: Mutex<Rings>,
    triggers: BTreeSet<String>,
    dumps: Mutex<Vec<FlightDump>>,
    max_dumps: usize,
    tee: Option<std::sync::Arc<dyn Subscriber>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("triggers", &self.triggers)
            .field("max_dumps", &self.max_dumps)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining ~`capacity` records across `shards` rings,
    /// tripped by [`DEFAULT_TRIGGERS`].
    pub fn new(shards: usize, capacity: usize) -> FlightRecorder {
        let shards = shards.max(1);
        FlightRecorder {
            rings: Mutex::new(Rings {
                shards: (0..shards).map(|_| VecDeque::new()).collect(),
                per_shard: capacity.div_ceil(shards).max(1),
            }),
            triggers: DEFAULT_TRIGGERS.iter().map(|s| s.to_string()).collect(),
            dumps: Mutex::new(Vec::new()),
            max_dumps: 32,
            tee: None,
        }
    }

    /// Replaces the trigger event-name set.
    pub fn with_triggers<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> FlightRecorder {
        self.triggers = names.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a downstream subscriber that still sees the full stream.
    pub fn with_tee(mut self, tee: std::sync::Arc<dyn Subscriber>) -> FlightRecorder {
        self.tee = Some(tee);
        self
    }

    /// Caps the number of retained dumps (oldest evicted first).
    pub fn with_max_dumps(mut self, n: usize) -> FlightRecorder {
        self.max_dumps = n.max(1);
        self
    }

    /// Clones of every capture taken so far, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        lock(&self.dumps).clone()
    }

    /// Takes the captures, leaving the recorder empty.
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        std::mem::take(&mut lock(&self.dumps))
    }

    /// Number of captures taken so far.
    pub fn dump_count(&self) -> usize {
        lock(&self.dumps).len()
    }

    /// Cuts the retained records down to `trigger`'s causal trace and
    /// stores the capture.
    fn capture(&self, trigger: &TraceRecord) {
        let retained: Vec<TraceRecord> = {
            let rings = lock(&self.rings);
            let mut all: Vec<TraceRecord> = rings.shards.iter().flatten().cloned().collect();
            all.sort_by_key(|r| r.seq);
            all
        };
        let trigger_span = match &trigger.kind {
            RecordKind::Event { span, .. } => *span,
            _ => None,
        };
        // Resolve the trigger's trace id from its span's start record.
        let trace = trigger_span.and_then(|span| {
            retained.iter().find_map(|r| match &r.kind {
                RecordKind::SpanStart { id, trace, .. } if *id == span => Some(*trace),
                _ => None,
            })
        });
        let selected: Vec<&TraceRecord> = match trace {
            Some(trace_id) => {
                // Spans of the trace (by `trace` on their starts), plus
                // their ends and the events inside them.
                let spans: BTreeSet<u64> = retained
                    .iter()
                    .filter_map(|r| match &r.kind {
                        RecordKind::SpanStart { id, trace, .. } if *trace == trace_id => Some(*id),
                        _ => None,
                    })
                    .collect();
                retained
                    .iter()
                    .filter(|r| match &r.kind {
                        RecordKind::SpanStart { trace, .. } => *trace == trace_id,
                        RecordKind::SpanEnd { id, .. } => spans.contains(id),
                        RecordKind::Event { span, .. } => span.is_some_and(|s| spans.contains(&s)),
                        RecordKind::Metric { .. } => false,
                    })
                    .collect()
            }
            // Span-less trigger (e.g. a global SLO breach): dump the
            // whole ring minus metric noise.
            None => {
                retained.iter().filter(|r| !matches!(r.kind, RecordKind::Metric { .. })).collect()
            }
        };
        let mut jsonl = String::new();
        for r in &selected {
            jsonl.push_str(&record_to_json(r));
            jsonl.push('\n');
        }
        let mut dumps = lock(&self.dumps);
        if dumps.len() >= self.max_dumps {
            dumps.remove(0);
        }
        dumps.push(FlightDump {
            trigger: trigger.name().to_string(),
            seq: trigger.seq,
            ts_ms: trigger.ts_ms,
            trace,
            jsonl,
        });
    }
}

impl Subscriber for FlightRecorder {
    fn record(&self, record: &TraceRecord) {
        if let Some(tee) = &self.tee {
            tee.record(record);
        }
        {
            let mut rings = lock(&self.rings);
            let per_shard = rings.per_shard;
            let idx = (record.seq % rings.shards.len() as u64) as usize;
            let ring = &mut rings.shards[idx];
            if ring.len() >= per_shard {
                ring.pop_front();
            }
            ring.push_back(record.clone());
        }
        if let RecordKind::Event { name, .. } = &record.kind {
            if self.triggers.contains(name) {
                self.capture(record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_faults::VirtualClock;
    use ei_trace::Tracer;
    use std::sync::Arc;

    fn traced(recorder: FlightRecorder) -> (Tracer, Arc<FlightRecorder>) {
        let recorder = Arc::new(recorder);
        let tracer =
            Tracer::new(Arc::<FlightRecorder>::clone(&recorder) as _, VirtualClock::shared());
        (tracer, recorder)
    }

    #[test]
    fn trigger_event_cuts_a_causal_capture() {
        let (tracer, recorder) = traced(FlightRecorder::new(4, 256));
        {
            let _noise = tracer.span("unrelated");
        }
        let request = tracer.span("serve.request");
        let batch = request.child("serve.batch");
        batch.event("serve.deadline_exceeded", vec![("tenant", "alpha".into())]);
        drop(batch);
        drop(request);
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.trigger, "serve.deadline_exceeded");
        assert_eq!(dump.trace, Some(2));
        assert!(dump.jsonl.contains(r#""name":"serve.request""#));
        assert!(dump.jsonl.contains(r#""name":"serve.batch""#));
        assert!(dump.jsonl.contains(r#""name":"serve.deadline_exceeded""#));
        assert!(!dump.jsonl.contains("unrelated"), "other traces must be cut out:\n{}", dump.jsonl);
        // Capture is taken at trigger time: the span ends land after it.
        assert!(!dump.jsonl.contains("span_end"));
    }

    #[test]
    fn span_less_trigger_dumps_the_full_ring_without_metrics() {
        let (tracer, recorder) = traced(FlightRecorder::new(2, 64));
        tracer.counter("noise").inc();
        tracer.event("warmup", vec![]);
        tracer.event("slo.breach", vec![("slo", "lat".into())]);
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trace, None);
        assert!(dumps[0].jsonl.contains("warmup"));
        assert!(dumps[0].jsonl.contains("slo.breach"));
        assert!(!dumps[0].jsonl.contains("noise"));
    }

    #[test]
    fn retention_is_bounded_and_seq_sharded() {
        let (tracer, recorder) = traced(FlightRecorder::new(4, 8));
        for i in 0..100 {
            tracer.event(&format!("e{i}"), vec![]);
        }
        tracer.event("job.dead_letter", vec![]);
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        let lines = dumps[0].jsonl.lines().count();
        assert!(lines <= 9, "ring must bound the capture, got {lines} lines");
        assert!(dumps[0].jsonl.contains("e99"), "newest records must be retained");
        assert!(!dumps[0].jsonl.contains(r#""e1""#), "oldest records must be evicted");
    }

    #[test]
    fn non_trigger_events_do_not_dump_and_tee_sees_everything() {
        let collector = Arc::new(ei_trace::CollectingSubscriber::new());
        let (tracer, recorder) = traced(FlightRecorder::new(2, 16).with_tee(Arc::<
            ei_trace::CollectingSubscriber,
        >::clone(
            &collector
        ) as _));
        tracer.event("benign", vec![]);
        let span = tracer.span("s");
        span.event("also.benign", vec![]);
        drop(span);
        assert_eq!(recorder.dump_count(), 0);
        assert_eq!(collector.len(), 4);
    }

    #[test]
    fn dumps_are_capped_and_takeable() {
        let (tracer, recorder) = traced(FlightRecorder::new(1, 16).with_max_dumps(2));
        for _ in 0..5 {
            tracer.event("slo.breach", vec![]);
        }
        assert_eq!(recorder.dump_count(), 2);
        let taken = recorder.take_dumps();
        assert_eq!(taken.len(), 2);
        assert_eq!(recorder.dump_count(), 0);
    }
}
