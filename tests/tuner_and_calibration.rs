//! Integration of the AutoML layers: the EON Tuner against a real dataset
//! and device constraints, and performance calibration against traces from
//! a real trained classifier.

use edgelab::calibration::stream::trace_from_classifier;
use edgelab::calibration::{calibrate, GaConfig};
use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, MfccConfig, MfeConfig};
use edgelab::nn::train::TrainConfig;
use edgelab::runtime::EngineKind;
use edgelab::tuner::{EonTuner, ModelChoice, SearchSpace, TunerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_space() -> SearchSpace {
    SearchSpace {
        dsp: vec![
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 20,
                sample_rate_hz: 8_000,
            }),
            DspConfig::Mfe(MfeConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_filters: 16,
                sample_rate_hz: 8_000,
                low_hz: 0.0,
                high_hz: 0.0,
            }),
        ],
        models: vec![
            ModelChoice::DenseMlp { hidden: 16 },
            ModelChoice::Conv1dStack { depth: 2, base_filters: 8 },
        ],
    }
}

#[test]
fn tuner_trials_respect_device_constraints() {
    let gen = KwsGenerator {
        classes: vec!["a".into(), "b".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.03,
    };
    let dataset = gen.dataset(10, 5);
    let tuner = EonTuner::new(
        small_space(),
        Profiler::new(Board::nano33_ble_sense()),
        2_000,
        TunerConfig {
            trials: 4,
            train: TrainConfig { epochs: 5, learning_rate: 0.01, ..TrainConfig::default() },
            quantize: false,
            engine: EngineKind::TflmInterpreter,
            max_latency_ms: None,
            seed: 1,
        },
    );
    let report = tuner.run(&dataset).unwrap();
    assert_eq!(report.trials.len(), 4);
    for t in &report.trials {
        assert!(t.fits, "every trained trial fits the target");
        assert!(t.accuracy.is_finite());
        assert!(t.flash > 0 && t.total_ram() > 0 && t.total_ms() > 0.0);
    }
    // the separable synthetic task must be learnable by the best trial
    assert!(report.trials[0].accuracy > 0.8, "best accuracy {}", report.trials[0].accuracy);
    // quantized estimates are smaller than float for the same space
    let q_tuner = EonTuner::new(
        small_space(),
        Profiler::new(Board::nano33_ble_sense()),
        2_000,
        TunerConfig { quantize: true, ..TunerConfig::default() },
    );
    let candidate = &small_space().candidates()[0];
    let float_est = tuner.estimate_candidate(candidate, 2).unwrap();
    let int8_est = q_tuner.estimate_candidate(candidate, 2).unwrap();
    assert!(int8_est.flash < float_est.flash);
    assert!(int8_est.nn_ms < float_est.nn_ms);
}

#[test]
fn calibration_on_a_real_classifier_reaches_good_operating_point() {
    // train a quick two-class spotter
    let gen = KwsGenerator {
        classes: vec!["go".into(), "noise".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.03,
    };
    let dataset = gen.dataset(12, 9);
    let design = ImpulseDesign::new(
        "cal",
        2_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 20,
            sample_rate_hz: 8_000,
        }),
    )
    .unwrap();
    let spec = edgelab::nn::presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
    let trained = design
        .train(
            &spec,
            &dataset,
            &TrainConfig { epochs: 10, learning_rate: 0.01, ..TrainConfig::default() },
        )
        .unwrap();

    // compose a stream: noise background + keywords at known offsets
    let mut rng = StdRng::seed_from_u64(3);
    let mut stream: Vec<f32> = (0..30_000).map(|_| rng.gen_range(-0.04f32..0.04)).collect();
    let mut truth = Vec::new();
    for k in 0..5 {
        let pos = 3_000 + k * 5_000;
        let clip = gen.generate(0, 400 + k as u64);
        for (i, &v) in clip.iter().enumerate() {
            stream[pos + i] += v;
        }
        truth.push(pos);
    }
    let trace = trace_from_classifier(&stream, &truth, 2_000, 500, |w| {
        trained.classify(w).map(|c| c.probabilities[0]).unwrap_or(0.0)
    });
    assert_eq!(trace.truth.len(), 5);

    // the GA must find a configuration detecting most events cleanly
    let suggestions =
        calibrate(&[trace], &GaConfig { population: 16, generations: 10, ..GaConfig::default() });
    assert!(!suggestions.is_empty());
    let best = suggestions
        .iter()
        .min_by(|a, b| {
            let ca = a.metrics.far_per_1k + a.metrics.frr * 100.0;
            let cb = b.metrics.far_per_1k + b.metrics.frr * 100.0;
            ca.partial_cmp(&cb).unwrap()
        })
        .unwrap();
    assert!(best.metrics.frr <= 0.4, "frr {}", best.metrics.frr);
    assert!(best.metrics.far_per_1k <= 60.0, "far {}", best.metrics.far_per_1k);
}
