//! Serving integration: the multi-tenant inference front-end end to end —
//! artifact-cache correctness, admission control under overload, deadline
//! propagation through the fault layer, and the platform API path.
//!
//! `scripts/check.sh` runs this suite under both `EI_THREADS=1` and `4`:
//! the server charges all service time to the injected clock, so results
//! and latencies must not depend on the pool width.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::faults::{Clock, VirtualClock};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::par::{ParPool, Parallelism};
use edgelab::platform::{Api, PlatformError};
use edgelab::runtime::EngineKind;
use edgelab::serve::{
    ArtifactKey, CompiledArtifact, CompiledArtifactCache, InferenceRequest, InferenceSpec,
    ModelSource, Outcome, Rejected, Server, ServerConfig,
};
use edgelab::trace::Tracer;
use std::sync::Arc;

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["go".into(), "stop".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

fn design() -> ImpulseDesign {
    ImpulseDesign::new(
        "serve-kws",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("valid design")
}

/// Trains a small model and returns its registry JSON.
fn model_json(hidden: usize, seed: u64) -> String {
    let d = design();
    let spec = presets::dense_mlp(d.feature_dims().expect("valid design"), 2, hidden);
    let config = TrainConfig {
        epochs: 6,
        batch_size: 8,
        learning_rate: 0.01,
        seed,
        ..TrainConfig::default()
    };
    d.train(&spec, &generator().dataset(6, seed), &config)
        .expect("training succeeds")
        .to_json()
        .expect("serializes")
}

fn server(config: ServerConfig) -> (Arc<VirtualClock>, Server) {
    let clock = VirtualClock::shared();
    let pool = Arc::new(ParPool::new(Parallelism::from_env()));
    let srv = Server::new(config, clock.clone() as Arc<dyn Clock>, pool, Tracer::disabled());
    (clock, srv)
}

fn request(
    tenant: &str,
    model: &ModelSource,
    engine: EngineKind,
    window: Vec<f32>,
) -> InferenceRequest {
    InferenceRequest {
        tenant: tenant.to_string(),
        model: model.clone(),
        board: String::new(),
        engine,
        quantized: false,
        window,
        deadline_ms: 0,
        precomputed: false,
    }
}

/// Tentpole: a cache hit is indistinguishable from a cold compile except
/// in latency — byte-identical classification and memory plan, at least
/// 5x faster because the compile cost is skipped.
#[test]
fn cache_hit_is_byte_identical_to_cold_compile_and_5x_faster() {
    let json = model_json(16, 7);
    let model = ModelSource::new("kws", json.clone());
    let clip = generator().generate(0, 42);

    // an independent cold compile is the ground truth
    let key = ArtifactKey {
        content_hash: model.content_hash,
        board: String::new(),
        engine: EngineKind::EonCompiled,
        quantized: false,
    };
    let ground_truth = CompiledArtifact::compile(key.clone(), &json).expect("compiles");

    let (_clock, srv) = server(ServerConfig::default());
    let t = srv.submit(request("a", &model, EngineKind::EonCompiled, clip.clone())).unwrap();
    let cold = srv.resolve(t).expect("completed");
    let t = srv.submit(request("a", &model, EngineKind::EonCompiled, clip.clone())).unwrap();
    let hit = srv.resolve(t).expect("completed");

    assert!(!cold.cache_hit && hit.cache_hit);
    assert_eq!(cold.outcome, hit.outcome, "hit must be byte-identical to cold compile");
    let Outcome::Classified(served) = &hit.outcome else { panic!("classified: {hit:?}") };
    assert_eq!(
        served,
        &ground_truth.classify(&clip).expect("runs"),
        "served result must match an independent cold compile byte for byte"
    );
    assert!(
        cold.latency_ms >= 5 * hit.latency_ms.max(1),
        "cold {} ms vs hit {} ms must be >= 5x",
        cold.latency_ms,
        hit.latency_ms
    );

    // the memoized memory plan is the one a fresh compile produces
    let cache = CompiledArtifactCache::new(4, Tracer::disabled());
    let (first, was_hit) = cache
        .get_or_insert_with("a", &key, || CompiledArtifact::compile(key.clone(), &json))
        .unwrap();
    assert!(!was_hit);
    let (second, was_hit) =
        cache.get_or_insert_with("a", &key, || panic!("hit path must not rebuild")).unwrap();
    assert!(was_hit);
    assert_eq!(first.plan(), ground_truth.plan());
    assert_eq!(second.plan(), first.plan(), "hit serves the identical plan");
}

/// Tentpole: content-hash keying — re-uploading changed bytes under the
/// same model name never serves the stale artifact, even at capacity 1.
#[test]
fn one_entry_cache_never_serves_stale_model_after_reupload() {
    let old_json = model_json(16, 7);
    let new_json = model_json(24, 8);
    assert_ne!(old_json, new_json);
    let clip = generator().generate(1, 5);

    let (_clock, srv) = server(ServerConfig { cache_capacity: 1, ..ServerConfig::default() });
    let old = ModelSource::new("kws", old_json.clone());
    let new = ModelSource::new("kws", new_json.clone());
    let t = srv.submit(request("a", &old, EngineKind::EonCompiled, clip.clone())).unwrap();
    let before = srv.resolve(t).expect("completed");
    let t = srv.submit(request("a", &new, EngineKind::EonCompiled, clip.clone())).unwrap();
    let after = srv.resolve(t).expect("completed");

    let Outcome::Classified(before) = &before.outcome else { panic!("classified") };
    let Outcome::Classified(after) = &after.outcome else { panic!("classified") };
    assert_ne!(
        before.probabilities, after.probabilities,
        "the re-uploaded model must actually run, not the stale entry"
    );
    let key = ArtifactKey {
        content_hash: new.content_hash,
        board: String::new(),
        engine: EngineKind::EonCompiled,
        quantized: false,
    };
    let ground_truth = CompiledArtifact::compile(key, &new_json).unwrap();
    assert_eq!(after, &ground_truth.classify(&clip).unwrap());
    let stats = srv.cache_stats();
    assert_eq!((stats.misses, stats.evictions, stats.entries), (2, 1, 1));
}

/// Tentpole: bounded memory under overload — submissions past the queue
/// bound are rejected with `Overloaded` (no queue growth), while every
/// admitted request still completes within its deadline.
#[test]
fn overload_rejects_past_queue_bound_while_inflight_complete() {
    let json = model_json(16, 7);
    let model = ModelSource::new("kws", json);
    let clip = generator().generate(0, 3);

    let config = ServerConfig { queue_capacity: 4, quota_capacity: 100, ..ServerConfig::default() };
    let (_clock, srv) = server(config);
    let mut admitted = 0;
    let mut rejected = 0;
    for i in 0..12 {
        let tenant = format!("tenant-{}", i % 3);
        match srv.submit(request(&tenant, &model, EngineKind::EonCompiled, clip.clone())) {
            Ok(_) => admitted += 1,
            Err(Rejected::Overloaded { queue_depth }) => {
                assert_eq!(queue_depth, 4, "rejection reports the configured bound");
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
        assert!(srv.queue_depth() <= 4, "queue must never grow past its bound");
    }
    assert_eq!((admitted, rejected), (4, 8));
    let completions = srv.drain();
    assert_eq!(completions.len(), 4);
    for c in &completions {
        assert!(
            matches!(c.outcome, Outcome::Classified(_)),
            "admitted request must complete within its deadline: {c:?}"
        );
    }
    assert_eq!(srv.queue_depth(), 0);
}

/// Per-tenant token buckets: an exhausted tenant is rejected without
/// affecting others, and recovers as the (virtual) clock refills it.
#[test]
fn quota_exhausts_per_tenant_and_refills_on_the_clock() {
    let json = model_json(16, 7);
    let model = ModelSource::new("kws", json);
    let clip = generator().generate(0, 3);
    let config = ServerConfig {
        quota_capacity: 2,
        quota_refill_per_sec: 1_000.0,
        ..ServerConfig::default()
    };
    let (clock, srv) = server(config);

    let req = |t: &str| request(t, &model, EngineKind::EonCompiled, clip.clone());
    assert!(srv.submit(req("a")).is_ok());
    assert!(srv.submit(req("a")).is_ok());
    assert_eq!(srv.submit(req("a")), Err(Rejected::QuotaExceeded { tenant: "a".into() }));
    assert!(srv.submit(req("b")).is_ok(), "quota is per tenant");
    clock.advance_ms(2); // 1000 tokens/s -> 2 ms buys back a token
    assert!(srv.submit(req("a")).is_ok());
}

/// Deadlines propagate into the fault layer: a request whose deadline
/// passes while queued never runs, and one whose slack cannot cover the
/// batch service time is cut off by the `ei_faults` timeout.
#[test]
fn deadlines_propagate_into_fault_layer_timeouts() {
    let json = model_json(16, 7);
    let model = ModelSource::new("kws", json);
    let clip = generator().generate(0, 3);

    // expired while queued: completed without compiling anything
    let (clock, srv) = server(ServerConfig::default());
    let mut req = request("a", &model, EngineKind::EonCompiled, clip.clone());
    req.deadline_ms = 10;
    let ticket = srv.submit(req).unwrap();
    clock.advance_ms(50);
    let completion = srv.resolve(ticket).expect("completed");
    assert_eq!(completion.outcome, Outcome::DeadlineExceeded { waited_ms: 50 });
    assert_eq!(srv.cache_stats().misses, 0, "expired requests must not compile");

    // slack too small for the batch: the retry timeout fires
    let (_clock, srv) =
        server(ServerConfig { batch_overhead_ms: 1_000, ..ServerConfig::default() });
    let mut req = request("a", &model, EngineKind::EonCompiled, clip);
    req.deadline_ms = 200; // compile fits, the 1 s batch overhead does not
    let ticket = srv.submit(req).unwrap();
    let completion = srv.resolve(ticket).expect("completed");
    assert!(
        matches!(completion.outcome, Outcome::DeadlineExceeded { .. }),
        "batch overrun must surface as DeadlineExceeded: {completion:?}"
    );
}

/// Same-artifact requests coalesce into one micro-batch; results and
/// latencies are byte-identical across pool widths and repeated runs.
#[test]
fn micro_batched_trace_is_deterministic_across_thread_counts() {
    let kws = model_json(16, 7);
    let vww = model_json(24, 8);
    let gen = generator();

    let run = |threads: Parallelism| {
        let clock = VirtualClock::shared();
        let pool = Arc::new(ParPool::new(threads));
        let srv = Server::new(
            ServerConfig::default(),
            clock.clone() as Arc<dyn Clock>,
            pool,
            Tracer::disabled(),
        );
        let a = ModelSource::new("kws", kws.clone());
        let b = ModelSource::new("vww", vww.clone());
        let mut log = Vec::new();
        for round in 0..3u64 {
            for (tenant, model, engine) in [
                ("alpha", &a, EngineKind::EonCompiled),
                ("beta", &a, EngineKind::EonCompiled),
                ("gamma", &b, EngineKind::TflmInterpreter),
            ] {
                let clip = gen.generate((round % 2) as usize, round * 10 + 1);
                srv.submit(request(tenant, model, engine, clip)).unwrap();
            }
            for c in srv.drain() {
                assert!(matches!(c.outcome, Outcome::Classified(_)), "{c:?}");
                if c.tenant == "alpha" || c.tenant == "beta" {
                    assert_eq!(c.batch_size, 2, "same-artifact requests share a batch");
                }
                log.push(format!("{c:?}"));
            }
        }
        (log, clock.now_ms())
    };

    let (serial, t_serial) = run(Parallelism::serial());
    let (four, t_four) = run(Parallelism::new(4));
    let (env, t_env) = run(Parallelism::from_env());
    assert_eq!(serial, four, "pool width must not change completions");
    assert_eq!(serial, env, "EI_THREADS must not change completions");
    assert_eq!(t_serial, t_four);
    assert_eq!(t_serial, t_env);
}

/// Sharded admission: tenants stripe deterministically across shards,
/// per-shard bounds isolate a flooding tenant, and shard count never
/// changes any request's outcome.
#[test]
fn sharded_admission_isolates_tenants_and_preserves_outcomes() {
    let json = model_json(16, 7);
    let model = ModelSource::new("kws", json);
    let gen = generator();

    // the same 12-request trace through 1 and 4 admission shards
    let run = |shards: usize| {
        let config = ServerConfig { admission_shards: shards, ..ServerConfig::default() };
        let (_clock, srv) = server(config);
        assert_eq!(srv.admission_shards(), shards);
        for i in 0..12u64 {
            let tenant = format!("tenant-{}", i % 4);
            let clip = gen.generate((i % 2) as usize, i * 3 + 1);
            srv.submit(request(&tenant, &model, EngineKind::EonCompiled, clip)).unwrap();
        }
        let depths = srv.shard_depths();
        assert_eq!(depths.len(), shards);
        assert_eq!(depths.iter().sum::<usize>(), 12, "every submission queued");
        let mut completions = srv.drain();
        assert_eq!(completions.len(), 12);
        completions.sort_by_key(|c| c.ticket);
        completions
            .into_iter()
            .map(|c| {
                assert!(matches!(c.outcome, Outcome::Classified(_)), "{c:?}");
                (c.tenant, format!("{:?}", c.outcome))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4), "shard count must not change any request's outcome");

    // per-shard bounds: a flooding tenant fills only its own shard
    let config = ServerConfig {
        admission_shards: 4,
        queue_capacity: 8, // 2 per shard
        quota_capacity: 100,
        ..ServerConfig::default()
    };
    let (_clock, srv) = server(config);
    let flooder = "flood";
    let victim_shard = srv.admission_shard_of(flooder);
    let other = (0..32)
        .map(|i| format!("t-{i}"))
        .find(|t| srv.admission_shard_of(t) != victim_shard)
        .expect("some tenant lands on another shard");
    let clip = gen.generate(0, 3);
    let req = |t: &str| request(t, &model, EngineKind::EonCompiled, clip.clone());
    assert!(srv.submit(req(flooder)).is_ok());
    assert!(srv.submit(req(flooder)).is_ok());
    assert_eq!(
        srv.submit(req(flooder)),
        Err(Rejected::Overloaded { queue_depth: 2 }),
        "the flooder's shard is full at its own bound"
    );
    assert!(srv.submit(req(&other)).is_ok(), "other shards keep admitting");
    assert_eq!(srv.shard_depths().iter().sum::<usize>(), 3);
    assert_eq!(srv.drain().len(), 3);
}

/// The platform API path: registry models classify and estimate through
/// the attached serving layer, with project-scoped tenancy and access
/// control intact.
#[test]
fn api_classify_and_estimate_run_through_serving() {
    let api = Api::new();
    let owner = api.create_user("owner");
    let outsider = api.create_user("outsider");
    let project = api.create_project("serving", owner).unwrap();
    let json = model_json(16, 7);
    api.upload_model(project, owner, "kws-v1", json.clone()).unwrap();

    let clock = VirtualClock::shared();
    let srv = Arc::new(Server::new(
        ServerConfig::default(),
        clock.clone() as Arc<dyn Clock>,
        Arc::new(ParPool::new(Parallelism::from_env())),
        Tracer::disabled(),
    ));
    api.attach_serving(Arc::clone(&srv)).unwrap();
    assert!(api.attach_serving(srv).is_err(), "the serving layer attaches once");

    let clip = generator().generate(0, 9);
    let eon_spec = InferenceSpec::new("kws-v1", EngineKind::EonCompiled);
    let eon = api.classify(project, owner, &eon_spec, clip.clone()).unwrap();
    let tflm_spec = InferenceSpec::new("kws-v1", EngineKind::TflmInterpreter);
    let tflm = api.classify(project, owner, &tflm_spec, clip.clone()).unwrap();
    assert_eq!(eon.probabilities, tflm.probabilities, "engines agree bit for bit");
    assert_eq!(eon.label_index, tflm.label_index);

    // estimation keys the cache per board and reports deployment fit
    let estimate = api.estimate(project, owner, &eon_spec.clone().on_board("nano 33")).unwrap();
    assert_eq!(estimate.board, "Arduino Nano 33 BLE Sense");
    assert!(estimate.total_ms > 0.0);
    assert!(estimate.ram_bytes > 0 && estimate.flash_bytes > 0);
    assert!(estimate.fits, "a tiny MLP fits the Nano 33");

    // errors stay platform-shaped
    assert!(matches!(
        api.classify(
            project,
            owner,
            &InferenceSpec::new("missing", EngineKind::EonCompiled),
            clip.clone()
        ),
        Err(PlatformError::NotFound { .. })
    ));
    assert!(matches!(
        api.estimate(project, owner, &eon_spec.clone().on_board("no-such-board")),
        Err(PlatformError::BadRequest(_))
    ));
    assert!(
        api.classify(project, outsider, &eon_spec, clip).is_err(),
        "access control guards serving too"
    );
}
