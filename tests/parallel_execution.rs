//! Parallel execution integration: the `ei-par` pool driving tuner
//! sweeps, DSP feature extraction and scheduler jobs end to end.
//!
//! The two load-bearing guarantees exercised here:
//!
//! * **determinism** — a tuner sweep on a 4-thread pool produces a
//!   [`edgelab::tuner::TunerReport`] byte-identical (as JSON) to the
//!   serial run, so `EI_THREADS` is purely a wall-clock knob;
//! * **cancellation** — cancelling a scheduler job that owns a parallel
//!   sweep stops the sweep cooperatively and lands the job in
//!   `Cancelled`, not the dead-letter queue.

use edgelab::data::synth::KwsGenerator;
use edgelab::data::Dataset;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::blocks::MfeBlock;
use edgelab::dsp::{DspBlock, DspConfig, MfccConfig, MfeConfig};
use edgelab::faults::RetryPolicy;
use edgelab::nn::train::TrainConfig;
use edgelab::par::{ParPool, Parallelism};
use edgelab::platform::{JobScheduler, JobStatus, PlatformError};
use edgelab::tuner::{EonTuner, ModelChoice, SearchSpace, TunerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn space() -> SearchSpace {
    SearchSpace {
        dsp: vec![
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
            DspConfig::Mfe(MfeConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_filters: 12,
                sample_rate_hz: 4_000,
                low_hz: 0.0,
                high_hz: 0.0,
            }),
        ],
        models: vec![
            ModelChoice::DenseMlp { hidden: 16 },
            ModelChoice::Conv1dStack { depth: 2, base_filters: 8 },
        ],
    }
}

fn dataset() -> Dataset {
    KwsGenerator {
        classes: vec!["on".into(), "off".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
    .dataset(12, 3)
}

fn tuner(epochs: usize) -> EonTuner {
    EonTuner::new(
        space(),
        Profiler::new(Board::nano33_ble_sense()),
        1_000,
        TunerConfig {
            trials: 3,
            train: TrainConfig { epochs, learning_rate: 0.01, ..TrainConfig::default() },
            ..TunerConfig::default()
        },
    )
}

/// Satellite: the determinism regression. The report must not depend on
/// the thread count — serial, 4 threads, and whatever `EI_THREADS` says
/// (`scripts/check.sh` runs this suite under both 1 and 4) all agree
/// byte for byte.
#[test]
fn tuner_report_is_byte_identical_across_thread_counts() {
    let data = dataset();
    let serial = tuner(4)
        .with_pool(Arc::new(ParPool::new(Parallelism::serial())))
        .run(&data)
        .unwrap()
        .to_json();
    let four = tuner(4)
        .with_pool(Arc::new(ParPool::new(Parallelism::new(4))))
        .run(&data)
        .unwrap()
        .to_json();
    let env = tuner(4)
        .with_pool(Arc::new(ParPool::new(Parallelism::from_env())))
        .run(&data)
        .unwrap()
        .to_json();
    assert_eq!(serial, four, "4-thread report must match serial byte for byte");
    assert_eq!(serial, env, "EI_THREADS must not change the report");
}

/// Satellite: cancelling a scheduler job that owns a parallel tuner
/// sweep. The job wires its cancel token into the tuner; cancellation
/// stops the sweep (the pool drains queued candidate tasks without
/// starting them — covered bitwise in ei-par's unit tests) and the job
/// ends `Cancelled`, never dead-lettered.
#[test]
fn cancelling_a_job_stops_a_parallel_tuner_sweep() {
    let scheduler = JobScheduler::new(1);
    let sweep_pool = Arc::new(ParPool::new(Parallelism::new(4)));
    let started = Arc::new(AtomicBool::new(false));
    let started_in_job = Arc::clone(&started);
    let id = scheduler
        .submit_with(RetryPolicy::immediate(1), move |ctx| {
            started_in_job.store(true, Ordering::SeqCst);
            // hundreds of epochs per candidate: far longer than the
            // cancel round-trip, so the token fires mid-sweep
            let tuner =
                tuner(600).with_pool(Arc::clone(&sweep_pool)).with_cancel(ctx.cancel.clone());
            match tuner.run(&dataset()) {
                Ok(report) => Ok(format!("{} trials", report.trials.len())),
                Err(e) => Err(e.to_string()),
            }
        })
        .unwrap();
    while !started.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    scheduler.cancel(id).unwrap();
    assert!(matches!(scheduler.wait(id), Err(PlatformError::JobCancelled(i)) if i == id));
    assert_eq!(scheduler.status(id).unwrap(), JobStatus::Cancelled);
    assert!(scheduler.dead_letters().is_empty(), "cancellation must not dead-letter");
}

/// Satellite: pool edge cases — empty input, single element, and a chunk
/// size larger than the slice — all bitwise-equal to the serial loop at
/// `EI_THREADS=1` and `4`.
#[test]
fn par_map_edge_cases_are_bitwise_equal_to_serial() {
    let items: Vec<f32> = (0..7).map(|i| i as f32 * 0.37).collect();
    let serial_bits: Vec<u32> = items.iter().map(|x| x.sin().to_bits()).collect();
    for threads in [1, 4] {
        let pool = ParPool::new(Parallelism::new(threads));
        assert!(pool.par_map(&[] as &[f32], |x| x.sin()).is_empty(), "threads={threads}");
        assert_eq!(
            pool.par_map(&items[..1], |x| x.sin().to_bits()),
            serial_bits[..1],
            "threads={threads}"
        );
        assert_eq!(pool.par_map(&items, |x| x.sin().to_bits()), serial_bits, "threads={threads}");
    }
}

#[test]
fn par_chunks_reduce_edge_cases_are_bitwise_equal_to_serial() {
    let items: Vec<f32> = (0..7).map(|i| (i as f32 * 0.73).cos()).collect();
    for threads in [1, 4] {
        let pool = ParPool::new(Parallelism::new(threads));
        assert_eq!(
            pool.par_chunks_reduce(&[] as &[f32], 4, |c| c.iter().sum::<f32>(), |a, b| a + b),
            None,
            "empty input reduces to None (threads={threads})"
        );
        assert_eq!(
            pool.par_chunks_reduce(&items[..1], 4, |c| c.iter().sum::<f32>(), |a, b| a + b)
                .map(f32::to_bits),
            Some(items[0].to_bits()),
            "threads={threads}"
        );
        for chunk in [2, 16] {
            let serial =
                items.chunks(chunk).map(|c| c.iter().sum::<f32>()).reduce(|a, b| a + b).unwrap();
            let parallel = pool
                .par_chunks_reduce(&items, chunk, |c| c.iter().sum::<f32>(), |a, b| a + b)
                .unwrap();
            assert_eq!(
                parallel.to_bits(),
                serial.to_bits(),
                "chunk={chunk} threads={threads}: reduction must match serial bitwise"
            );
        }
    }
}

/// Dataset-wide DSP extraction through the facade: parallel output (and
/// error precedence) matches the serial loop at any thread count.
#[test]
fn parallel_dsp_extraction_matches_serial() {
    let block = MfeBlock::new(MfeConfig {
        frame_s: 0.032,
        stride_s: 0.016,
        n_filters: 12,
        sample_rate_hz: 4_000,
        low_hz: 0.0,
        high_hz: 0.0,
    })
    .unwrap();
    let windows: Vec<Vec<f32>> =
        (0..16).map(|w| (0..1_000).map(|i| ((w * 17 + i) as f32 * 0.01).sin()).collect()).collect();
    let serial: Vec<Vec<f32>> = windows.iter().map(|w| block.process(w).unwrap()).collect();
    for threads in [1, 4] {
        let pool = ParPool::new(Parallelism::new(threads));
        let parallel =
            edgelab::dsp::parallel::process_windows(&pool, &block, 1_000, &windows).unwrap();
        assert_eq!(parallel, serial, "threads={threads}");
    }
}
