//! MLOps integration: the collaborative project lifecycle through the API,
//! training as scheduled jobs, versioning, and the public registry.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::ingest::to_wav_bytes;
use edgelab::data::synth::KwsGenerator;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::platform::registry::{clone_project, search};
use edgelab::platform::{Api, JobScheduler, ProjectId};

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["on".into(), "off".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.03,
    }
}

fn impulse() -> ImpulseDesign {
    ImpulseDesign::new(
        "switch",
        2_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 20,
            sample_rate_hz: 8_000,
        }),
    )
    .expect("valid design")
}

#[test]
fn collaborative_project_lifecycle() {
    let api = Api::new();
    let alice = api.create_user("alice");
    let bob = api.create_user("bob");
    let _org = api.create_organization("iot-lab", alice).unwrap();
    let project = api.create_project("light-switch", alice).unwrap();
    api.add_collaborator(project, alice, bob).unwrap();

    // both collaborators ingest WAV clips through the API
    let gen = generator();
    for (ci, label) in gen.classes.clone().iter().enumerate() {
        for k in 0..12 {
            let wav = to_wav_bytes(8_000, &gen.generate(ci, k));
            let actor = if k % 2 == 0 { alice } else { bob };
            api.ingest(project, actor, "wav", &wav, Some(label)).unwrap();
        }
    }
    let stats = api.dataset(project, bob).unwrap().stats();
    assert_eq!(stats.total, 24);
    assert_eq!(stats.per_class.len(), 2);
    assert!(stats.training > 0 && stats.testing > 0);

    // configure the impulse and snapshot
    api.set_impulse(project, bob, impulse()).unwrap();
    let v = api.snapshot(project, alice, "ready to train").unwrap();
    assert_eq!(v, 1);

    // training runs as a job on the worker pool
    let scheduler = JobScheduler::new(2);
    let dataset = api.dataset(project, alice).unwrap();
    let design = api.impulse(project, alice).unwrap().expect("impulse configured");
    let job = scheduler
        .submit(1, move || {
            let spec = presets::dense_mlp(design.feature_dims().map_err(|e| e.to_string())?, 2, 16);
            let trained = design
                .train(
                    &spec,
                    &dataset,
                    &TrainConfig { epochs: 8, learning_rate: 0.01, ..TrainConfig::default() },
                )
                .map_err(|e| e.to_string())?;
            Ok(format!("{:.3}", trained.report().best_val_accuracy))
        })
        .unwrap();
    let accuracy: f32 = scheduler.wait(job).unwrap().parse().unwrap();
    assert!(accuracy > 0.7, "job-trained accuracy {accuracy}");

    // publish, search, clone
    api.make_public(project, alice, &["audio", "switch"]).unwrap();
    let hits = search(&api.registry_snapshot(), "switch");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].samples, 24);
    let source = &api.public_projects()[0];
    let cloned = clone_project(source, ProjectId(999), bob).expect("public projects clone");
    assert_eq!(cloned.owner, bob);
    assert_eq!(cloned.dataset.len(), 24);
}

#[test]
fn access_control_covers_the_whole_surface() {
    let api = Api::new();
    let owner = api.create_user("owner");
    let outsider = api.create_user("outsider");
    let project = api.create_project("private", owner).unwrap();
    let wav = to_wav_bytes(8_000, &[0.0; 100]);
    assert!(api.ingest(project, outsider, "wav", &wav, None).is_err());
    assert!(api.set_impulse(project, outsider, impulse()).is_err());
    assert!(api.snapshot(project, outsider, "x").is_err());
    assert!(api.make_public(project, outsider, &[]).is_err());
    assert!(api.dataset(project, outsider).is_err());
    // owner can do all of it
    assert!(api.ingest(project, owner, "wav", &wav, None).is_ok());
    assert!(api.set_impulse(project, owner, impulse()).is_ok());
    assert!(api.snapshot(project, owner, "ok").is_ok());
}

#[test]
fn workflow_degrades_when_an_optional_stage_fails() {
    use edgelab::core::{FlowRunner, FlowStage, StageOutcome};
    use edgelab::faults::{FailureCause, FaultPlan, RetryPolicy, VirtualClock};
    use std::cell::RefCell;

    let clock = VirtualClock::shared();
    let policy = RetryPolicy::default().with_seed(21).with_max_attempts(2);
    let runner = FlowRunner::with_clock(policy.clone(), clock.clone());

    let gen = generator();
    let dataset = RefCell::new(None);
    let trained = RefCell::new(None);
    // the optional anomaly stage crashes, then stays down — the flow must
    // ship a model anyway and report the stage as degraded
    let plan = FaultPlan::new().panic_on(1, "anomaly scorer crashed").error_on(2, "scorer offline");
    let mut anomaly_work = plan.arm(clock.clone(), || Ok::<_, String>("unreachable".into()));

    let report = runner
        .run(vec![
            FlowStage::required("ingest", |_| {
                let d = gen.dataset(10, 3);
                let n = d.len();
                *dataset.borrow_mut() = Some(d);
                Ok(format!("{n} samples"))
            }),
            FlowStage::required("train", |_| {
                let design = impulse();
                let spec =
                    presets::dense_mlp(design.feature_dims().map_err(|e| e.to_string())?, 2, 8);
                let t = design
                    .train(
                        &spec,
                        dataset.borrow().as_ref().expect("ingest ran first"),
                        &TrainConfig { epochs: 2, ..TrainConfig::default() },
                    )
                    .map_err(|e| e.to_string())?;
                let acc = t.report().best_val_accuracy;
                *trained.borrow_mut() = Some(t);
                Ok(format!("{acc:.3}"))
            }),
            FlowStage::optional("anomaly", move |_| anomaly_work()),
            FlowStage::required("deploy", |_| {
                let clip = gen.generate(0, 11);
                let t = trained.borrow();
                let result = t
                    .as_ref()
                    .expect("train ran first")
                    .classify(&clip)
                    .map_err(|e| e.to_string())?;
                Ok(result.label)
            }),
        ])
        .expect("flow must complete despite the optional-stage fault");

    assert!(report.degraded());
    assert_eq!(report.degraded_stages(), vec!["anomaly"]);
    // every other stage completed and produced output
    assert!(report.output("ingest").is_some());
    assert!(report.output("train").is_some());
    assert!(report.output("deploy").is_some());
    // the degraded stage carries its full attempt history: a panic, a
    // retry after the seeded backoff (stage index 2 is the jitter
    // stream), then the terminal error
    let anomaly = report.stage("anomaly").unwrap();
    assert_eq!(anomaly.outcome, StageOutcome::Degraded("scorer offline".into()));
    assert_eq!(anomaly.attempts.len(), 2);
    assert!(matches!(anomaly.attempts[0].cause, FailureCause::Panic(_)));
    assert_eq!(anomaly.attempts[0].backoff_ms, Some(policy.backoff_preview(2, 1)[0]));
    assert_eq!(plan.calls(), 2);
}

#[test]
fn parallel_training_jobs() {
    // several projects train concurrently on the pool, like the paper's
    // kubernetes workers
    let scheduler = JobScheduler::new(3);
    let gen = generator();
    let mut jobs = Vec::new();
    for seed in 0..4u64 {
        let dataset = gen.dataset(6, seed);
        let design = impulse();
        jobs.push(
            scheduler
                .submit(1, move || {
                    let spec =
                        presets::dense_mlp(design.feature_dims().map_err(|e| e.to_string())?, 2, 8);
                    design
                        .train(
                            &spec,
                            &dataset,
                            &TrainConfig { epochs: 2, ..TrainConfig::default() },
                        )
                        .map(|t| format!("{}", t.model().param_count()))
                        .map_err(|e| e.to_string())
                })
                .unwrap(),
        );
    }
    for job in jobs {
        let params: usize = scheduler.wait(job).unwrap().parse().unwrap();
        assert!(params > 100);
    }
}
