//! Shard invariance: the whole platform surface must be byte-identical
//! at any shard count. The same serving + MLOps + streaming flow runs on
//! a 1-shard and a 16-shard [`Api`], and every observable — the
//! `export_json` bytes, registry search order, classification outputs,
//! stream counters, job results and quota decisions — must match
//! exactly. `scripts/check.sh` runs this suite under `EI_THREADS=1` and
//! `4` and `EI_SHARDS=1` and `16`, so the contract holds across the
//! pool-width axis too.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::ingest::to_wav_bytes;
use edgelab::data::synth::KwsGenerator;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::faults::{Clock, VirtualClock};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::par::{ParPool, Parallelism};
use edgelab::platform::{Api, InferenceSpec, JobScheduler, PlatformError, SessionConfig};
use edgelab::runtime::EngineKind;
use edgelab::serve::{Server, ServerConfig};
use edgelab::trace::Tracer;
use std::sync::Arc;

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["go".into(), "stop".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

fn design() -> ImpulseDesign {
    ImpulseDesign::new(
        "invariance-kws",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .expect("valid design")
}

fn model_json() -> String {
    let d = design();
    let spec = presets::dense_mlp(d.feature_dims().expect("valid design"), 2, 8);
    let config = TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.01,
        seed: 21,
        ..TrainConfig::default()
    };
    d.train(&spec, &generator().dataset(4, 21), &config)
        .expect("training succeeds")
        .to_json()
        .expect("serializes")
}

/// Runs one end-to-end platform flow at `shards` shards and returns every
/// observable as a single comparable string.
fn flow(shards: usize, model: &str) -> String {
    let mut log = Vec::new();
    let clock = VirtualClock::shared();
    let pool = Arc::new(ParPool::new(Parallelism::from_env()));
    let api = Api::with_shards(shards);
    let server = Arc::new(Server::new(
        ServerConfig { admission_shards: shards, ..ServerConfig::default() },
        clock.clone() as Arc<dyn Clock>,
        Arc::clone(&pool),
        Tracer::disabled(),
    ));
    api.attach_serving(server).expect("attaches");
    let mut scheduler = JobScheduler::with_sharded_pool(Arc::clone(&pool), shards);

    // --- MLOps flow: users, org, projects, data, versions, registry ----
    let alice = api.create_user("alice");
    let bob = api.create_user("bob");
    api.create_organization("acme", alice).expect("org");
    let projects: Vec<_> = (0..12)
        .map(|i| api.create_project(&format!("proj-{i}"), alice).expect("project"))
        .collect();
    let wav = to_wav_bytes(4_000, &generator().generate(0, 5));
    for (i, &p) in projects.iter().enumerate() {
        api.ingest(p, alice, "wav", &wav, Some(if i % 2 == 0 { "go" } else { "stop" }))
            .expect("ingest");
        api.upload_model(p, alice, "m", model.to_string()).expect("upload");
        api.snapshot(p, alice, &format!("v-{i}")).expect("snapshot");
    }
    api.add_collaborator(projects[0], alice, bob).expect("collab");
    for (i, &p) in projects.iter().enumerate().take(6) {
        api.make_public(p, alice, &["kws", if i % 2 == 0 { "even" } else { "odd" }])
            .expect("publish");
    }
    let hits: Vec<String> = api
        .search_registry("kws")
        .into_iter()
        .map(|e| format!("{}:{}:{}", e.id, e.name, e.samples))
        .collect();
    log.push(format!("search={hits:?}"));
    log.push(format!("list={:?}", api.list_projects(bob)));

    // --- serving flow: classify + estimate through admission ------------
    let clip = generator().generate(0, 9);
    let spec = InferenceSpec::new("m", EngineKind::EonCompiled);
    let c = api.classify(projects[0], alice, &spec, clip.clone()).expect("classifies");
    log.push(format!("classify={c:?}"));
    let e = api.estimate(projects[1], alice, &spec.clone().on_board("nano 33")).expect("estimate");
    log.push(format!("estimate={e:?}"));

    // --- quota flow: a capped project denies identically ----------------
    api.set_project_quota(projects[2], alice, 2).expect("cap");
    let w = to_wav_bytes(4_000, &[0.0; 64]);
    let q: Vec<bool> =
        (0..4).map(|_| api.ingest(projects[2], alice, "wav", &w, None).is_ok()).collect();
    assert!(matches!(
        api.ingest(projects[2], alice, "wav", &w, None),
        Err(PlatformError::QuotaExceeded { .. })
    ));
    log.push(format!(
        "quota={q:?} usage={:?}",
        api.project_quota(projects[2], alice).expect("usage")
    ));

    // --- streaming flow: session pinned to the project's shard ----------
    let session = api
        .stream_open(projects[3], alice, "m", SessionConfig::new("", 256))
        .expect("stream opens");
    let signal: Vec<f32> =
        (0..3).flat_map(|i| generator().generate(i % 2, 31 + i as u64)).collect();
    for chunk in signal.chunks(256).take(8) {
        let verdicts = api.stream_push(session, alice, chunk).expect("push");
        log.push(format!(
            "verdicts={:?}",
            verdicts.iter().map(|v| (v.seq, v.smoothed_label.clone())).collect::<Vec<_>>()
        ));
    }
    let stats = api.stream_close(session, alice).expect("closes");
    log.push(format!(
        "stream windows={} classified={} identical={}",
        stats.windows_emitted,
        stats.windows_classified,
        stats.features_identical()
    ));

    // --- jobs flow: keyed jobs, FIFO per tenant, dead letters -----------
    let mut job_ids = Vec::new();
    for (i, &p) in projects.iter().enumerate().take(8) {
        let id =
            scheduler.submit_keyed(p.0, 1, move || Ok(format!("job-{i}"))).expect("job accepted");
        job_ids.push(id);
    }
    let outputs: Vec<String> =
        job_ids.iter().map(|&id| scheduler.wait(id).expect("job succeeds")).collect();
    log.push(format!("jobs={outputs:?}"));
    let failing = scheduler
        .submit_keyed(projects[0].0, 1, || Err::<String, _>("boom".into()))
        .expect("accepted");
    assert!(scheduler.wait(failing).is_err());
    let letters: Vec<u64> = scheduler.dead_letters().iter().map(|l| l.id).collect();
    log.push(format!("dead={letters:?}"));
    scheduler.shutdown();

    // --- rebalance must never change observable state -------------------
    let before = api.export_json().expect("exports");
    let report = api.rebalance(42);
    let after = api.export_json().expect("exports");
    assert_eq!(before, after, "rebalance must not change exported bytes");
    assert!(report.skew_after <= report.skew_before.max(1.0) + 1e-9);

    // --- export / import round-trip -------------------------------------
    let imported = Api::import_json(&after).expect("imports");
    assert_eq!(imported.export_json().expect("re-exports"), after, "round-trip is exact");

    log.push(format!("export={after}"));
    log.join("\n")
}

/// The tentpole contract: 1 shard and 16 shards produce byte-identical
/// observables for the same serving + MLOps + streaming + jobs flow.
#[test]
fn whole_platform_flow_is_identical_at_1_and_16_shards() {
    let model = model_json();
    let one = flow(1, &model);
    let sixteen = flow(16, &model);
    assert_eq!(one, sixteen, "shard count must never change observable behavior");
}

/// A 64-shard store (more shards than some maps have entries, so many
/// shards stay empty) still exports the identical bytes.
#[test]
fn empty_shards_do_not_perturb_export() {
    let model = model_json();
    let one = flow(1, &model);
    let wide = flow(64, &model);
    assert_eq!(one, wide);
}

/// `EI_SHARDS` drives `Api::new` placement without changing observables:
/// an export taken from an explicit 1-shard store imports into the
/// env-derived layout and re-exports the same bytes.
#[test]
fn env_shard_count_round_trips_export() {
    let api = Api::with_shards(1);
    let u = api.create_user("u");
    for i in 0..10 {
        api.create_project(&format!("p-{i}"), u).expect("project");
    }
    let exported = api.export_json().expect("exports");
    let imported = Api::import_json(&exported).expect("imports");
    assert_eq!(imported.export_json().expect("re-exports"), exported);
}
