//! Cross-crate observability guarantees: the per-layer profile sums
//! exactly to the end-to-end estimate on every paper board and engine, a
//! disabled subscriber changes nothing, traces under a [`VirtualClock`]
//! are byte-for-byte deterministic across runs, and the `ei-obs` layer's
//! flight recorder cuts byte-identical causal dumps for every fault
//! class — deadline overruns, dead letters and dist worker crashes — at
//! any pool width.
//!
//! `scripts/check.sh` runs this suite under both `EI_THREADS=1` and `4`.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::core::workflow::{FlowRunner, FlowStage};
use edgelab::data::synth::KwsGenerator;
use edgelab::device::{Board, Profiler};
use edgelab::dist::{DistConfig, DistFaultPlan, DistTrainer, WorkerFault};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::faults::{Clock, RetryPolicy, VirtualClock};
use edgelab::nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
use edgelab::nn::{presets, train::TrainConfig, Sequential};
use edgelab::obs::{FlightDump, Obs, ObsRegistry, SloSpec, OTHER_LABEL};
use edgelab::par::{ParPool, Parallelism};
use edgelab::platform::JobScheduler;
use edgelab::runtime::{EngineKind, EonProgram, InferenceEngine, Interpreter};
use edgelab::serve::{InferenceRequest, ModelSource, Outcome, Server, ServerConfig};
use edgelab::trace::Tracer;
use ei_bench::Task;
use std::sync::Arc;

#[test]
fn per_layer_rows_sum_exactly_to_the_estimate_on_every_board_and_engine() {
    let (float_a, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let engines: Vec<Box<dyn InferenceEngine>> = vec![
        Box::new(Interpreter::new(float_a.clone()).unwrap()),
        Box::new(EonProgram::compile(float_a).unwrap()),
        Box::new(Interpreter::new(int8_a.clone()).unwrap()),
        Box::new(EonProgram::compile(int8_a).unwrap()),
    ];
    for board in Board::paper_boards() {
        let profiler = Profiler::new(board.clone());
        for engine in &engines {
            let layers = profiler.per_layer_profile(engine.as_ref());
            assert!(!layers.is_empty());
            // bitwise equality: the estimate is defined as this sum
            let ms_sum: f64 = layers.iter().map(|l| l.ms).sum();
            let estimate = profiler.inference_ms(engine.as_ref());
            assert_eq!(
                ms_sum,
                estimate,
                "{} {}: breakdown {ms_sum} vs estimate {estimate}",
                board.name,
                engine.kind()
            );
            // the MAC column is the artifact's op MACs, untouched
            let macs: u64 = layers.iter().map(|l| l.macs).sum();
            let op_macs: u64 = engine.artifact().ops().iter().map(|o| o.macs).sum();
            assert_eq!(macs, op_macs);
            // every row carries a planned arena buffer
            assert!(layers.iter().all(|l| l.arena_bytes > 0));
        }
    }
}

/// A small, fully seeded traced pipeline: a flow with a degraded optional
/// stage, a short training run, and a per-layer profile on one board.
/// Returns the JSONL trace, the Chrome-trace export and the Prometheus
/// exposition.
fn traced_pipeline(tracer: &Tracer) -> edgelab::core::workflow::FlowReport {
    let runner = FlowRunner::with_clock(
        RetryPolicy::default().with_seed(9).with_max_attempts(2),
        VirtualClock::shared(),
    )
    .with_tracer(tracer.clone());
    let flow = runner
        .run(vec![
            FlowStage::required("ingest", |_| Ok("32 samples".into())),
            FlowStage::optional("enrich", |_| Err("service down".into())),
        ])
        .unwrap();

    let generator = KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.02,
    };
    let dataset = generator.dataset(6, 3);
    let design = ImpulseDesign::new(
        "obs-test",
        2_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 20,
            sample_rate_hz: 8_000,
        }),
    )
    .unwrap();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
    let config = TrainConfig { epochs: 3, learning_rate: 0.01, ..TrainConfig::default() };
    let trained = design.train_traced(&spec, &dataset, &config, tracer.clone()).unwrap();

    let engine = EonProgram::compile(trained.int8_artifact().unwrap()).unwrap();
    Profiler::new(Board::nano33_ble_sense()).emit_profile(tracer, &engine);
    flow
}

#[test]
fn disabled_subscriber_changes_no_behaviour_and_records_nothing() {
    let disabled = Tracer::disabled();
    let clock = VirtualClock::shared();
    let (enabled, collector) = Tracer::collecting(clock);

    let silent = traced_pipeline(&disabled);
    let observed = traced_pipeline(&enabled);

    // identical flow outcomes, stage by stage (including retry histories)
    assert_eq!(silent.stages, observed.stages);
    // the disabled tracer recorded and registered nothing
    assert!(disabled.metrics_snapshot().is_empty());
    assert_eq!(disabled.prometheus(), "");
    // while the enabled one saw the whole pipeline
    assert!(!collector.is_empty());
    let records = collector.records();
    for name in ["flow", "flow.stage", "stage.degraded", "train", "train.epoch", "profile.layer"] {
        assert!(records.iter().any(|r| r.name() == name), "missing {name}");
    }
    assert!(enabled.metrics_snapshot().contains_key("profile.inference_ms"));
}

#[test]
fn traces_under_virtual_clock_are_byte_for_byte_deterministic() {
    let run = || {
        let (tracer, collector) = Tracer::collecting(VirtualClock::shared());
        traced_pipeline(&tracer);
        (collector.jsonl(), collector.chrome_trace(), tracer.prometheus())
    };
    let (jsonl_a, chrome_a, prom_a) = run();
    let (jsonl_b, chrome_b, prom_b) = run();
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace must be deterministic");
    assert_eq!(chrome_a, chrome_b, "Chrome trace must be deterministic");
    assert_eq!(prom_a, prom_b, "Prometheus exposition must be deterministic");
}

// --- ei-obs: flight recorder + SLO + sharded registry, end to end ---

/// A tiny served model (two classes, small MLP) for the serving paths.
fn served_model_json() -> String {
    let generator = KwsGenerator {
        classes: vec!["go".into(), "stop".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    };
    let design = ImpulseDesign::new(
        "obs-serve",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .unwrap();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
    let config =
        TrainConfig { epochs: 4, batch_size: 8, learning_rate: 0.01, ..TrainConfig::default() };
    design.train(&spec, &generator.dataset(6, 7), &config).unwrap().to_json().unwrap()
}

fn serve_request(tenant: &str, model: &ModelSource, deadline_ms: u64) -> InferenceRequest {
    InferenceRequest {
        tenant: tenant.to_string(),
        model: model.clone(),
        board: String::new(),
        engine: EngineKind::EonCompiled,
        quantized: false,
        window: KwsGenerator {
            classes: vec!["go".into(), "stop".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
        .generate(0, 3),
        deadline_ms,
        precomputed: false,
    }
}

/// Tentpole: a deadline overrun inside a micro-batch trips the flight
/// recorder, and the capture holds the complete causal chain — request
/// span, batch span, and the parallel scope that ran it — byte for byte
/// identical at every pool width.
#[test]
fn deadline_dump_captures_the_request_chain_at_any_pool_width() {
    let json = served_model_json();
    let run = |threads: Parallelism| -> Vec<FlightDump> {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone() as Arc<dyn Clock>).build();
        let srv = Server::new(
            // the 1 s batch overhead guarantees the 200 ms deadline blows
            ServerConfig { batch_overhead_ms: 1_000, ..ServerConfig::default() },
            clock as Arc<dyn Clock>,
            Arc::new(ParPool::with_tracer(threads, obs.tracer().clone())),
            obs.tracer().clone(),
        )
        .with_obs(Arc::clone(&obs));
        let model = ModelSource::new("kws", json.clone());
        let ticket = srv.submit(serve_request("alpha", &model, 200)).unwrap();
        let completion = srv.resolve(ticket).expect("completed");
        assert!(
            matches!(completion.outcome, Outcome::DeadlineExceeded { .. }),
            "the batch must overrun: {completion:?}"
        );
        obs.dumps()
    };

    let serial = run(Parallelism::serial());
    assert_eq!(serial.len(), 1, "exactly one deadline dump");
    let dump = &serial[0];
    assert_eq!(dump.trigger, "serve.deadline_exceeded");
    assert!(dump.trace.is_some(), "the trigger must resolve to a causal trace");
    for name in ["serve.request", "serve.batch", "par.scope", "serve.deadline_exceeded"] {
        assert!(
            dump.jsonl.contains(&format!("\"name\":\"{name}\"")),
            "dump must hold {name}:\n{}",
            dump.jsonl
        );
    }
    assert_eq!(serial, run(Parallelism::new(4)), "dumps must not depend on pool width");
    assert_eq!(serial, run(Parallelism::from_env()), "dumps must not depend on EI_THREADS");
}

/// A job that exhausts its retries dead-letters, and the dump chains
/// back through the `job` span to the submitter's ambient request span.
#[test]
fn dead_letter_dump_chains_back_to_the_submitting_request() {
    let run = || -> Vec<FlightDump> {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone() as Arc<dyn Clock>).build();
        let scheduler =
            JobScheduler::with_clock_and_tracer(1, clock as Arc<dyn Clock>, obs.tracer().clone());
        let root = obs.tracer().span("pipeline.request");
        let id = {
            let _ambient = root.enter();
            scheduler.submit(2, || Err("disk full".into())).unwrap()
        };
        assert!(scheduler.wait(id).is_err(), "the job must exhaust its retries");
        drop(root);
        obs.dumps()
    };

    let dumps = run();
    assert_eq!(dumps.len(), 1, "one dead letter, one dump");
    let dump = &dumps[0];
    assert_eq!(dump.trigger, "job.dead_letter");
    assert!(dump.trace.is_some());
    for name in ["pipeline.request", "job", "job.queued", "job.running", "job.dead_letter"] {
        assert!(
            dump.jsonl.contains(&format!("\"name\":\"{name}\"")),
            "dump must chain back through {name}:\n{}",
            dump.jsonl
        );
    }
    assert_eq!(dumps, run(), "the dead-letter dump must be byte-identical across runs");
}

/// An injected dist worker crash trips the recorder, and the capture
/// chains the crash back through `dist.train` to the training request.
#[test]
fn dist_crash_dump_chains_back_to_the_training_request() {
    let spec = ModelSpec::new(Dims::new(1, 6, 1))
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
        .layer(LayerSpec::Softmax);
    let inputs: Vec<Vec<f32>> =
        (0..24).map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }; 6]).collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();

    let run = || -> Vec<FlightDump> {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone() as Arc<dyn Clock>).build();
        let root = obs.tracer().span("train.request");
        // one partition per worker: the doomed worker receives exactly one
        // command in the fatal step, so the coordinator never races its
        // thread exit on a second send and detection is always via the
        // heartbeat deadline (cause "missed_heartbeat"), never the closed
        // channel — keeping the dump byte-identical across runs
        let trainer = DistTrainer::new(
            DistConfig::new(2).with_partitions(2).with_timeout_ms(50),
            TrainConfig {
                epochs: 2,
                batch_size: 6,
                learning_rate: 0.01,
                validation_split: 0.0,
                seed: 7,
                ..TrainConfig::default()
            },
        )
        .with_clock(clock as Arc<dyn Clock>)
        .with_tracer(obs.tracer().clone())
        .with_faults(DistFaultPlan::new().inject(1, 1, 0, WorkerFault::Crash));
        let mut model = Sequential::build(&spec, 7).unwrap();
        let report = {
            let _ambient = root.enter();
            trainer.train(&mut model, &inputs, &labels).unwrap()
        };
        assert_eq!(report.crashes_detected, 1);
        drop(root);
        obs.dumps()
    };

    let dumps = run();
    assert_eq!(dumps.len(), 1, "one crash, one dump");
    let dump = &dumps[0];
    assert_eq!(dump.trigger, "dist.crash_detected");
    assert!(dump.trace.is_some());
    // the capture is cut at trigger time, so it ends at the crash event
    for name in ["train.request", "dist.train", "dist.epoch", "dist.crash_detected"] {
        assert!(
            dump.jsonl.contains(&format!("\"name\":\"{name}\"")),
            "dump must chain back through {name}:\n{}",
            dump.jsonl
        );
    }
    assert_eq!(dumps, run(), "the crash dump must be byte-identical across runs");
}

/// Satellite: N threads hammering M tenant series concurrently merge to
/// exactly the snapshot a serial run produces — counters, histograms
/// (integer-valued observations, so sums are exact) and gauges.
#[test]
fn concurrent_metric_recording_merges_to_the_serial_reference() {
    const THREADS: usize = 8;
    const TENANTS: usize = 16;
    const ROUNDS: usize = 50;
    const BOUNDS: [f64; 3] = [1.0, 5.0, 10.0];

    let record = |registry: &ObsRegistry| {
        for round in 0..ROUNDS {
            for t in 0..TENANTS {
                let tenant = format!("tenant-{t}");
                registry.add("hammer.requests", &tenant, 1);
                registry.observe("hammer.latency_ms", &tenant, (round % 12) as f64, &BOUNDS);
                // same value from every thread: last-write-wins is stable
                registry.set_gauge("hammer.inflight", &tenant, t as f64);
            }
        }
    };

    let serial = ObsRegistry::new(1, 64);
    for _ in 0..THREADS {
        record(&serial);
    }

    let hammered = Arc::new(ObsRegistry::new(4, 64));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&hammered);
            std::thread::spawn(move || record(&registry))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(hammered.counter("hammer.requests", "tenant-0"), Some((THREADS * ROUNDS) as u64));
    assert_eq!(
        hammered.snapshot(),
        serial.snapshot(),
        "concurrent merge must equal the serial reference"
    );
    assert_eq!(hammered.to_prometheus(), serial.to_prometheus());
}

/// Satellite: served traffic breaching a latency SLO leaves a breach
/// dump, while the label-cardinality cap folds overflow tenants into
/// `__other__` instead of growing the registry.
#[test]
fn served_slo_breach_dumps_and_overflow_tenants_fold() {
    let json = served_model_json();
    let clock = VirtualClock::shared();
    let obs = Obs::builder(clock.clone() as Arc<dyn Clock>)
        .label_cap(2)
        // virtual-clock service time (compile + batch) dwarfs 1 ms
        .slo(SloSpec::latency("serve-p99", 1.0, 0.99).with_min_samples(3).with_cooldown_ms(0))
        .build();
    let srv = Server::new(
        ServerConfig::default(),
        clock as Arc<dyn Clock>,
        Arc::new(ParPool::new(Parallelism::from_env())),
        obs.tracer().clone(),
    )
    .with_obs(Arc::clone(&obs));
    let model = ModelSource::new("kws", json);
    for t in 0..4 {
        let ticket = srv.submit(serve_request(&format!("tenant-{t}"), &model, 0)).unwrap();
        let completion = srv.resolve(ticket).expect("completed");
        assert!(matches!(completion.outcome, Outcome::Classified(_)), "{completion:?}");
    }

    assert!(
        obs.dumps().iter().any(|d| d.trigger == "slo.breach"),
        "slow traffic must breach the 1 ms objective: {:?}",
        obs.dumps().iter().map(|d| d.trigger.clone()).collect::<Vec<_>>()
    );
    assert!(obs.registry().folded() > 0, "tenants past the cap of 2 must fold");
    let prometheus = obs.prometheus();
    assert!(prometheus.contains("tenant=\"tenant-0\""), "admitted tenants keep their series");
    assert!(
        prometheus.contains(&format!("tenant=\"{OTHER_LABEL}\"")),
        "folded tenants must surface as {OTHER_LABEL}:\n{prometheus}"
    );
}
