//! Cross-crate observability guarantees: the per-layer profile sums
//! exactly to the end-to-end estimate on every paper board and engine, a
//! disabled subscriber changes nothing, and traces under a
//! [`VirtualClock`] are byte-for-byte deterministic across runs.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::core::workflow::{FlowRunner, FlowStage};
use edgelab::data::synth::KwsGenerator;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::faults::{RetryPolicy, VirtualClock};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::runtime::{EonProgram, InferenceEngine, Interpreter};
use edgelab::trace::Tracer;
use ei_bench::Task;

#[test]
fn per_layer_rows_sum_exactly_to_the_estimate_on_every_board_and_engine() {
    let (float_a, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let engines: Vec<Box<dyn InferenceEngine>> = vec![
        Box::new(Interpreter::new(float_a.clone()).unwrap()),
        Box::new(EonProgram::compile(float_a).unwrap()),
        Box::new(Interpreter::new(int8_a.clone()).unwrap()),
        Box::new(EonProgram::compile(int8_a).unwrap()),
    ];
    for board in Board::paper_boards() {
        let profiler = Profiler::new(board.clone());
        for engine in &engines {
            let layers = profiler.per_layer_profile(engine.as_ref());
            assert!(!layers.is_empty());
            // bitwise equality: the estimate is defined as this sum
            let ms_sum: f64 = layers.iter().map(|l| l.ms).sum();
            let estimate = profiler.inference_ms(engine.as_ref());
            assert_eq!(
                ms_sum,
                estimate,
                "{} {}: breakdown {ms_sum} vs estimate {estimate}",
                board.name,
                engine.kind()
            );
            // the MAC column is the artifact's op MACs, untouched
            let macs: u64 = layers.iter().map(|l| l.macs).sum();
            let op_macs: u64 = engine.artifact().ops().iter().map(|o| o.macs).sum();
            assert_eq!(macs, op_macs);
            // every row carries a planned arena buffer
            assert!(layers.iter().all(|l| l.arena_bytes > 0));
        }
    }
}

/// A small, fully seeded traced pipeline: a flow with a degraded optional
/// stage, a short training run, and a per-layer profile on one board.
/// Returns the JSONL trace, the Chrome-trace export and the Prometheus
/// exposition.
fn traced_pipeline(tracer: &Tracer) -> edgelab::core::workflow::FlowReport {
    let runner = FlowRunner::with_clock(
        RetryPolicy::default().with_seed(9).with_max_attempts(2),
        VirtualClock::shared(),
    )
    .with_tracer(tracer.clone());
    let flow = runner
        .run(vec![
            FlowStage::required("ingest", |_| Ok("32 samples".into())),
            FlowStage::optional("enrich", |_| Err("service down".into())),
        ])
        .unwrap();

    let generator = KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.02,
    };
    let dataset = generator.dataset(6, 3);
    let design = ImpulseDesign::new(
        "obs-test",
        2_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 20,
            sample_rate_hz: 8_000,
        }),
    )
    .unwrap();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
    let config = TrainConfig { epochs: 3, learning_rate: 0.01, ..TrainConfig::default() };
    let trained = design.train_traced(&spec, &dataset, &config, tracer.clone()).unwrap();

    let engine = EonProgram::compile(trained.int8_artifact().unwrap()).unwrap();
    Profiler::new(Board::nano33_ble_sense()).emit_profile(tracer, &engine);
    flow
}

#[test]
fn disabled_subscriber_changes_no_behaviour_and_records_nothing() {
    let disabled = Tracer::disabled();
    let clock = VirtualClock::shared();
    let (enabled, collector) = Tracer::collecting(clock);

    let silent = traced_pipeline(&disabled);
    let observed = traced_pipeline(&enabled);

    // identical flow outcomes, stage by stage (including retry histories)
    assert_eq!(silent.stages, observed.stages);
    // the disabled tracer recorded and registered nothing
    assert!(disabled.metrics_snapshot().is_empty());
    assert_eq!(disabled.prometheus(), "");
    // while the enabled one saw the whole pipeline
    assert!(!collector.is_empty());
    let records = collector.records();
    for name in ["flow", "flow.stage", "stage.degraded", "train", "train.epoch", "profile.layer"] {
        assert!(records.iter().any(|r| r.name() == name), "missing {name}");
    }
    assert!(enabled.metrics_snapshot().contains_key("profile.inference_ms"));
}

#[test]
fn traces_under_virtual_clock_are_byte_for_byte_deterministic() {
    let run = || {
        let (tracer, collector) = Tracer::collecting(VirtualClock::shared());
        traced_pipeline(&tracer);
        (collector.jsonl(), collector.chrome_trace(), tracer.prometheus())
    };
    let (jsonl_a, chrome_a, prom_a) = run();
    let (jsonl_b, chrome_b, prom_b) = run();
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace must be deterministic");
    assert_eq!(chrome_a, chrome_b, "Chrome trace must be deterministic");
    assert_eq!(prom_a, prom_b, "Prometheus exposition must be deterministic");
}
