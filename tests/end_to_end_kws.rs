//! End-to-end integration: data generation → impulse training →
//! quantization → both engines → deployment bundle → AT-command firmware.
//!
//! Exercises the full platform surface a real keyword-spotting project
//! touches, on a downscaled (8 kHz) workload so it runs quickly in debug.

use edgelab::core::deploy::{build_bundle, DeploymentTarget};
use edgelab::core::impulse::ImpulseDesign;
use edgelab::core::sdk::FirmwareDevice;
use edgelab::data::synth::KwsGenerator;
use edgelab::data::Split;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::runtime::{EngineKind, EonProgram, InferenceEngine, Interpreter};

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["go".into(), "stop".into(), "noise".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.03,
    }
}

fn design() -> ImpulseDesign {
    ImpulseDesign::new(
        "e2e-kws",
        4_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 24,
            sample_rate_hz: 8_000,
        }),
    )
    .expect("valid design")
}

#[test]
fn full_pipeline_from_audio_to_firmware() {
    let gen = generator();
    let dataset = gen.dataset(15, 7);
    let design = design();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 3, 32);
    let trained = design
        .train(
            &spec,
            &dataset,
            &TrainConfig { epochs: 12, learning_rate: 0.01, ..TrainConfig::default() },
        )
        .expect("training succeeds");

    // float accuracy on holdout must be strong on separable synthetic data
    let float_eval = trained.evaluate(&trained.float_artifact(), &dataset, Split::Testing).unwrap();
    assert!(float_eval.accuracy > 0.8, "float accuracy {}", float_eval.accuracy);

    // int8 must stay close
    let int8 = trained.int8_artifact().unwrap();
    let int8_eval = trained.evaluate(&int8, &dataset, Split::Testing).unwrap();
    assert!(
        float_eval.accuracy - int8_eval.accuracy <= 0.2,
        "float {} vs int8 {}",
        float_eval.accuracy,
        int8_eval.accuracy
    );

    // both engines execute the same artifact identically
    let eon = EonProgram::compile(int8.clone()).unwrap();
    let interp = Interpreter::new(int8.clone()).unwrap();
    let features = design.dsp_block().unwrap().process(&gen.generate(0, 1234)).unwrap();
    assert_eq!(eon.run(&features).unwrap(), interp.run(&features).unwrap());

    // profiling on the paper's boards yields usable estimates and fits
    let cost = design.dsp_block().unwrap().cost(4_000).unwrap();
    for board in Board::paper_boards() {
        let profile = Profiler::new(board).profile(Some(cost), &eon);
        assert!(profile.total_ms > 0.0);
        assert!(profile.fit.fits, "small int8 model fits everywhere: {:?}", profile.fit.reasons);
    }

    // deployment bundle is complete and internally consistent
    let bundle =
        build_bundle(&trained, int8.clone(), DeploymentTarget::CppLibrary, EngineKind::EonCompiled)
            .unwrap();
    let source = &bundle.file("model/model_compiled.c").unwrap().contents;
    assert!(source.contains("kernel_dense_s8"));
    assert!(source.contains(&format!("#define MODEL_OUTPUT_LEN {}", trained.labels().len())));

    // the firmware facade classifies a streamed clip correctly
    let mut device = FirmwareDevice::new("test-rig", trained, int8);
    let clip = gen.generate(1, 999); // "stop"
    for chunk in clip.chunks(800) {
        let csv: Vec<String> = chunk.iter().map(f32::to_string).collect();
        device.handle_command(&format!("AT+SAMPLE={}", csv.join(","))).unwrap();
    }
    let response = device.handle_command("AT+RUNIMPULSE").unwrap();
    assert!(response.contains("winner=stop"), "device said: {response}");
}

#[test]
fn deterministic_end_to_end() {
    let gen = generator();
    let dataset = gen.dataset(6, 3);
    let design = design();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 3, 16);
    let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
    let a = design.train(&spec, &dataset, &cfg).unwrap();
    let b = design.train(&spec, &dataset, &cfg).unwrap();
    let clip = gen.generate(2, 42);
    assert_eq!(
        a.classify(&clip).unwrap().probabilities,
        b.classify(&clip).unwrap().probabilities,
        "identical config + data must give identical models"
    );
}
