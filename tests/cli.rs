//! End-to-end test of the `edgelab` CLI binary: demo data → train →
//! classify → profile → deploy → EIM serving, all through the real
//! executable (the §4.1 CLI workflow).

use std::io::Write as _;
use std::path::Path;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_edgelab")
}

fn run(args: &[&str]) -> (bool, String) {
    let output = Command::new(bin()).args(args).output().expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.success(), text)
}

#[test]
fn full_cli_workflow() {
    let dir = std::env::temp_dir().join(format!("edgelab-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data");
    let model = dir.join("model.json");
    let bundle = dir.join("bundle");

    // demo data
    let (ok, out) = run(&["demo-data", data.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("48 clips"));
    assert!(data.join("go").join("go_00.wav").exists());

    // train
    let (ok, out) = run(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--epochs",
        "10",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("holdout accuracy"));
    assert!(model.exists());

    // classify a known clip
    let clip = data.join("stop").join("stop_05.wav");
    let (ok, out) =
        run(&["classify", "--model", model.to_str().unwrap(), "--wav", clip.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("=> stop"), "classified: {out}");

    // profile against a named board
    let (ok, out) =
        run(&["profile", "--model", model.to_str().unwrap(), "--board", "pico", "--int8"]);
    assert!(ok, "{out}");
    assert!(out.contains("Ras. Pi Pico"));
    assert!(out.contains("fits: true"));
    assert!(out.contains("per-layer:"));

    // deploy the C bundle
    let (ok, out) = run(&[
        "deploy",
        "--model",
        model.to_str().unwrap(),
        "--out",
        bundle.to_str().unwrap(),
        "--int8",
    ]);
    assert!(ok, "{out}");
    assert!(bundle.join("model").join("model_compiled.c").exists());
    assert!(bundle.join("model").join("edgelab_kernels.h").exists());

    // eim protocol over stdio
    let mut child = Command::new(bin())
        .args(["eim", "--model", model.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"{\"hello\": 1}\n").unwrap();
    drop(child.stdin.take());
    let output = child.wait_with_output().unwrap();
    let response = String::from_utf8_lossy(&output.stdout);
    assert!(response.contains("\"label_count\":3"), "eim said: {response}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_usage_and_errors() {
    let (ok, out) = run(&[]);
    assert!(!ok);
    assert!(out.contains("USAGE"));
    let (ok, out) = run(&["train", "--out", "x.json"]);
    assert!(!ok);
    assert!(out.contains("--data"));
    let (ok, out) = run(&["classify", "--model", "/nonexistent.json", "--wav", "x.wav"]);
    assert!(!ok);
    assert!(out.contains("error"));
    let (ok, out) = run(&["profile", "--model", "/nonexistent.json"]);
    assert!(!ok);
    assert!(out.contains("error"));

    // unknown board is a clean error, not a panic
    let dir = std::env::temp_dir().join(format!("edgelab-cli-err-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data");
    let model = dir.join("m.json");
    run(&["demo-data", data.to_str().unwrap()]);
    run(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--epochs",
        "2",
    ]);
    let (ok, out) =
        run(&["profile", "--model", model.to_str().unwrap(), "--board", "nonexistent-board"]);
    assert!(!ok);
    assert!(out.contains("unknown board"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = Path::new("");
}
