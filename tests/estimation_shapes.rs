//! The paper's evaluation *shapes*, asserted as tests: these encode what
//! "reproduction" means for Tables 2 and 4 (relative orderings and
//! magnitudes, not the authors' absolute testbed numbers). If a cost-model
//! change breaks one of these, the reproduction claims in EXPERIMENTS.md
//! no longer hold.

use edgelab::device::{Board, Profiler};
use edgelab::runtime::{EonProgram, InferenceEngine, Interpreter};
use ei_bench::Task;

fn latencies(task: Task, board: Board) -> Option<(f64, f64, f64)> {
    // (dsp_ms, float_total, int8_total); None when float doesn't fit
    let (float_a, int8_a) = task.untrained_artifacts();
    let profiler = Profiler::new(board);
    let cost = task.dsp_cost();
    let f = profiler.profile(Some(cost), &EonProgram::compile(float_a).unwrap());
    let q = profiler.profile(Some(cost), &EonProgram::compile(int8_a).unwrap());
    assert!(q.fit.fits, "int8 fits every paper board");
    if f.fit.fits {
        Some((f.dsp_ms, f.total_ms, q.total_ms))
    } else {
        None
    }
}

#[test]
fn table2_int8_speedup_large_on_cortex_small_on_lx6() {
    let (_, nano_f, nano_q) =
        latencies(Task::KeywordSpotting, Board::nano33_ble_sense()).expect("kws fits nano");
    let (_, esp_f, esp_q) =
        latencies(Task::KeywordSpotting, Board::esp_eye()).expect("kws fits esp");
    let (_, pico_f, pico_q) =
        latencies(Task::KeywordSpotting, Board::raspberry_pi_pico()).expect("kws fits pico");
    let nano_gain = nano_f / nano_q;
    let esp_gain = esp_f / esp_q;
    let pico_gain = pico_f / pico_q;
    assert!(nano_gain > 3.0, "nano speedup {nano_gain}");
    assert!(pico_gain > 3.0, "pico speedup {pico_gain}");
    assert!(esp_gain < 2.5, "esp speedup should be small, got {esp_gain}");
}

#[test]
fn table2_kws_preprocessing_rivals_optimized_inference() {
    for board in Board::paper_boards() {
        let (dsp, _, int8_total) = latencies(Task::KeywordSpotting, board.clone()).unwrap();
        assert!(
            dsp > 0.2 * int8_total,
            "{}: dsp {dsp} ms should be a large share of int8 total {int8_total} ms",
            board.name
        );
    }
}

#[test]
fn table2_vww_float_only_fits_the_esp() {
    assert!(latencies(Task::VisualWakeWords, Board::nano33_ble_sense()).is_none());
    assert!(latencies(Task::VisualWakeWords, Board::raspberry_pi_pico()).is_none());
    assert!(latencies(Task::VisualWakeWords, Board::esp_eye()).is_some());
}

#[test]
fn table2_pico_is_slowest_float_platform() {
    for task in [Task::KeywordSpotting, Task::ImageClassification] {
        let (_, nano, _) = latencies(task, Board::nano33_ble_sense()).unwrap();
        let (_, esp, _) = latencies(task, Board::esp_eye()).unwrap();
        let (_, pico, _) = latencies(task, Board::raspberry_pi_pico()).unwrap();
        assert!(pico > nano && pico > esp, "{task:?}: pico {pico} nano {nano} esp {esp}");
    }
}

#[test]
fn tight_ram_board_rejects_float_kws_but_takes_int8() {
    // the 128 kB ST Discovery cannot hold the float DS-CNN (arena +
    // overhead ≈ 160 kB) but the int8 one fits — the quantize-to-fit
    // story on existing hardware (paper §8.2)
    let (float_a, int8_a) = Task::KeywordSpotting.untrained_artifacts();
    let profiler = Profiler::new(Board::st_iot_discovery());
    let cost = Task::KeywordSpotting.dsp_cost();
    let f = profiler.profile(Some(cost), &EonProgram::compile(float_a).unwrap());
    let q = profiler.profile(Some(cost), &EonProgram::compile(int8_a).unwrap());
    assert!(!f.fit.fits, "float KWS must not fit 128 kB RAM");
    assert!(q.fit.fits, "int8 KWS must fit: {:?}", q.fit.reasons);
}

#[test]
fn table4_eon_always_saves_ram_and_flash() {
    for task in Task::all() {
        let (float_a, int8_a) = task.untrained_artifacts();
        for artifact in [float_a, int8_a] {
            let tflm = Interpreter::new(artifact.clone()).unwrap().memory();
            let eon = EonProgram::compile(artifact.clone()).unwrap().memory();
            let ram_saving = 1.0 - eon.ram_total() as f64 / tflm.ram_total() as f64;
            let flash_saving = 1.0 - eon.flash_total() as f64 / tflm.flash_total() as f64;
            // paper Table 4: EON saves roughly 2-35% RAM and 5-45% flash
            assert!((0.005..0.40).contains(&ram_saving), "{task:?} ram saving {ram_saving}");
            assert!((0.03..0.50).contains(&flash_saving), "{task:?} flash saving {flash_saving}");
        }
    }
}

#[test]
fn table4_int8_shrinks_ram_and_flash_severalfold() {
    for task in Task::all() {
        let (float_a, int8_a) = task.untrained_artifacts();
        let f = EonProgram::compile(float_a).unwrap().memory();
        let q = EonProgram::compile(int8_a).unwrap().memory();
        assert!(f.arena_bytes as f64 / q.arena_bytes as f64 > 3.0, "{task:?} arena ratio");
        assert!(f.weight_bytes as f64 / q.weight_bytes as f64 > 3.0, "{task:?} weight ratio");
    }
}

#[test]
fn table2_absolute_magnitudes_plausible() {
    // our calibrated cost model should land within ~3x of the paper's
    // measured milliseconds for the anchor cells
    let (dsp, float_total, int8_total) =
        latencies(Task::KeywordSpotting, Board::nano33_ble_sense()).unwrap();
    assert!((50.0..450.0).contains(&dsp), "kws nano dsp {dsp} vs paper 141.65");
    assert!((1000.0..9000.0).contains(&float_total), "kws nano float {float_total} vs paper 3007");
    assert!((150.0..1400.0).contains(&int8_total), "kws nano int8 {int8_total} vs paper 461");
}
