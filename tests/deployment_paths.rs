//! Integration of the deployment-side runtimes: the EIM JSON protocol,
//! the continuous streaming classifier, and the saved-model round trip —
//! together they are the "ship it" half of the platform.

use edgelab::calibration::{ContinuousClassifier, PostProcessConfig};
use edgelab::core::eim::EimRunner;
use edgelab::core::impulse::{ImpulseDesign, TrainedImpulse};
use edgelab::data::synth::KwsGenerator;
use edgelab::data::{Dataset, Sample, SensorKind};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["go".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.03,
    }
}

/// Keyword-vs-noise dataset matching what a streaming deployment sees.
fn dataset() -> Dataset {
    let gen = generator();
    let mut ds = Dataset::new("deploy");
    let mut rng = StdRng::seed_from_u64(42);
    for k in 0..18 {
        ds.add(Sample::new(0, gen.generate(0, k), SensorKind::Audio).with_label("go"));
        let noise: Vec<f32> = (0..2_000).map(|_| rng.gen_range(-0.06f32..0.06)).collect();
        ds.add(Sample::new(0, noise, SensorKind::Audio).with_label("background"));
    }
    ds
}

fn spotter() -> TrainedImpulse {
    let design = ImpulseDesign::new(
        "deploy-kws",
        2_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 20,
            sample_rate_hz: 8_000,
        }),
    )
    .unwrap();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 24);
    design
        .train(
            &spec,
            &dataset(),
            &TrainConfig { epochs: 14, learning_rate: 0.01, ..TrainConfig::default() },
        )
        .unwrap()
}

#[test]
fn saved_model_behaves_identically_through_eim() {
    let trained = spotter();
    let clip = generator().generate(0, 500);
    let direct = trained.classify(&clip).unwrap();

    // round-trip through the registry format, then serve over EIM
    let reloaded = TrainedImpulse::from_json(&trained.to_json().unwrap()).unwrap();
    let artifact = reloaded.float_artifact();
    let runner = EimRunner::new(reloaded, artifact);
    let response = runner.handle(&json!({"classify": clip, "id": 9}));
    assert_eq!(response["success"], true);
    assert_eq!(response["winner"], direct.label);
    let go_index = trained.labels().iter().position(|l| l == "go").expect("'go' exists");
    let served = response["result"]["classification"]["go"].as_f64().unwrap() as f32;
    assert!(
        (served - direct.probabilities[go_index]).abs() < 1e-6,
        "EIM after save/load must match the original exactly"
    );
}

#[test]
fn streaming_deployment_detects_and_stays_quiet() {
    let trained = spotter();
    let go = trained.labels().iter().position(|l| l == "go").unwrap();
    let artifact = trained.int8_artifact().unwrap(); // deploy quantized
    let mut cc = ContinuousClassifier::new(
        trained,
        artifact,
        go,
        500,
        PostProcessConfig { mean_filter: 1, threshold: 0.6, suppression: 6 },
    );

    // a stream with two keywords
    let mut rng = StdRng::seed_from_u64(7);
    let mut stream: Vec<f32> = (0..20_000).map(|_| rng.gen_range(-0.04f32..0.04)).collect();
    for (k, pos) in [5_000usize, 13_000].iter().enumerate() {
        let clip = generator().generate(0, 900 + k as u64);
        for (i, &v) in clip.iter().enumerate() {
            stream[pos + i] += v;
        }
    }
    let mut events = Vec::new();
    for chunk in stream.chunks(640) {
        events.extend(cc.push(chunk).unwrap());
    }
    assert_eq!(events.len(), 2, "events: {events:?}");
    assert!(events[0].sample_offset.abs_diff(5_000) <= 2_500);
    assert!(events[1].sample_offset.abs_diff(13_000) <= 2_500);
}
