//! Cross-crate streaming guarantees: incremental DSP features are bitwise
//! equal to batch recomputation no matter how the signal is chunked, the
//! verdict stream is identical at any pool width, every `serve.request`
//! chains causally under its `stream.session` span (so SLO breach dumps
//! name the stream that caused them), the serving layer exports queue
//! depth and per-tenant in-flight gauges, and the platform API's stream
//! endpoints enforce project access control end to end.
//!
//! `scripts/check.sh` runs this suite under both `EI_THREADS=1` and `4`.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::faults::{Clock, VirtualClock};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::obs::{Obs, SloSpec};
use edgelab::par::{ParPool, Parallelism};
use edgelab::platform::{Api, PlatformError};
use edgelab::serve::{ModelSource, Server, ServerConfig};
use edgelab::stream::{SessionConfig, SessionStats, StreamSession, WindowVerdict};
use edgelab::trace::Tracer;
use std::sync::Arc;

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["yes".into(), "no".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
}

/// A tiny KWS model: window 1000 samples, MFCC frames of 128 every 64.
fn model_json() -> String {
    let design = ImpulseDesign::new(
        "stream-kws",
        1_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        }),
    )
    .unwrap();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 8);
    let config = TrainConfig { epochs: 2, seed: 11, ..TrainConfig::default() };
    design.train(&spec, &generator().dataset(4, 11), &config).unwrap().to_json().unwrap()
}

fn audio(clips: usize) -> Vec<f32> {
    let gen = generator();
    (0..clips).flat_map(|i| gen.generate(i % 2, i as u64)).collect()
}

fn server_on(pool: Parallelism) -> Arc<Server> {
    Arc::new(Server::new(
        ServerConfig { queue_capacity: 64, ..ServerConfig::default() },
        VirtualClock::shared() as Arc<dyn Clock>,
        Arc::new(ParPool::new(pool)),
        Tracer::disabled(),
    ))
}

/// Runs one whole session and returns its verdicts + final stats.
fn run_session(
    json: &str,
    pool: Parallelism,
    chunk_len: usize,
) -> (Vec<WindowVerdict>, SessionStats) {
    let mut config = SessionConfig::new("tenant-a", 256);
    config.max_pending = 64;
    let mut session =
        StreamSession::open(server_on(pool), ModelSource::new("kws", json.to_string()), config)
            .unwrap();
    let signal = audio(4);
    let mut verdicts = Vec::new();
    for chunk in signal.chunks(chunk_len) {
        session.push(chunk).unwrap();
        verdicts.extend(session.poll());
    }
    verdicts.extend(session.poll());
    (verdicts, session.close())
}

/// Tentpole: the incremental extractor's features are *bitwise* equal to
/// batch recomputation (the in-session oracle re-derives every window from
/// raw samples), regardless of how the signal is chunked on the way in.
#[test]
fn incremental_features_match_batch_bitwise_at_any_chunking() {
    let json = model_json();
    for chunk_len in [37usize, 500, 4_000] {
        let (verdicts, stats) = run_session(&json, Parallelism::from_env(), chunk_len);
        assert!(verdicts.len() >= 10, "chunk_len {chunk_len}: {verdicts:?}");
        assert!(stats.oracle_windows >= 10, "oracle must check every window");
        assert!(
            stats.features_identical(),
            "chunk_len {chunk_len}: incremental DSP diverged from batch: {stats:?}"
        );
        // overlapping windows shared columns instead of recomputing them
        assert!(
            stats.frames_used > 2 * stats.frames_computed,
            "expected >2x column reuse: {stats:?}"
        );
    }
}

/// The whole verdict stream — sequence numbers, classifications,
/// timestamps, smoothed labels — is identical at every pool width.
#[test]
fn verdict_stream_is_identical_at_any_pool_width() {
    let json = model_json();
    let (serial, serial_stats) = run_session(&json, Parallelism::serial(), 500);
    let (wide, wide_stats) = run_session(&json, Parallelism::new(4), 500);
    let (env, env_stats) = run_session(&json, Parallelism::from_env(), 500);
    assert!(!serial.is_empty());
    assert_eq!(serial, wide, "verdicts must not depend on pool width");
    assert_eq!(serial_stats, wide_stats);
    assert_eq!(serial, env, "verdicts must not depend on EI_THREADS");
    assert_eq!(serial_stats, env_stats);
}

/// Requests submitted by a session adopt its `stream.session` span as
/// causal parent, so an SLO breach dump cut by ei-obs names the stream
/// that caused the breach — and the capture is byte-identical across
/// runs.
#[test]
fn slo_breach_dump_chains_back_to_the_stream_session() {
    let json = model_json();
    let run = || {
        let clock = VirtualClock::shared();
        let obs = Obs::builder(clock.clone() as Arc<dyn Clock>)
            // virtual-clock service time dwarfs 1 ms, so traffic breaches
            .slo(SloSpec::latency("stream-p99", 1.0, 0.99).with_min_samples(3).with_cooldown_ms(0))
            .build();
        let server = Arc::new(
            Server::new(
                ServerConfig { queue_capacity: 64, ..ServerConfig::default() },
                clock as Arc<dyn Clock>,
                Arc::new(ParPool::new(Parallelism::from_env())),
                obs.tracer().clone(),
            )
            .with_obs(Arc::clone(&obs)),
        );
        let mut config = SessionConfig::new("stream-tenant", 256);
        config.max_pending = 64;
        let mut session =
            StreamSession::open(Arc::clone(&server), ModelSource::new("kws", json.clone()), config)
                .unwrap();
        for chunk in audio(2).chunks(500) {
            session.push(chunk).unwrap();
            session.poll();
        }
        session.close();
        obs.dumps()
    };
    let dumps = run();
    let breach = dumps
        .iter()
        .find(|d| d.trigger == "slo.breach")
        .expect("slow virtual-clock traffic must breach the 1 ms objective");
    for name in ["stream.session", "serve.request"] {
        assert!(
            breach.jsonl.contains(&format!("\"name\":\"{name}\"")),
            "breach dump must chain back through {name}:\n{}",
            breach.jsonl
        );
    }
    assert_eq!(dumps, run(), "breach dumps must be byte-identical across runs");
}

/// Satellite: the serving layer exports admission-queue depth and
/// per-tenant in-flight request gauges into the ei-obs registry.
#[test]
fn serve_exports_queue_depth_and_inflight_gauges() {
    use edgelab::obs::SeriesValue;
    let json = model_json();
    let clock = VirtualClock::shared();
    let obs = Obs::builder(clock.clone() as Arc<dyn Clock>).build();
    let server = Arc::new(
        Server::new(
            ServerConfig { queue_capacity: 64, ..ServerConfig::default() },
            clock as Arc<dyn Clock>,
            Arc::new(ParPool::new(Parallelism::from_env())),
            obs.tracer().clone(),
        )
        .with_obs(Arc::clone(&obs)),
    );
    let mut config = SessionConfig::new("gauge-tenant", 256);
    config.max_pending = 64;
    let mut session =
        StreamSession::open(Arc::clone(&server), ModelSource::new("kws", json), config).unwrap();
    session.push(&audio(2)).unwrap();

    let gauge = |metric: &str, label: &str| -> Option<f64> {
        match obs.registry().snapshot().get(&(metric.to_string(), label.to_string())) {
            Some(SeriesValue::Gauge { value, .. }) => Some(*value),
            _ => None,
        }
    };
    // windows were submitted but not yet resolved: both gauges are live
    assert!(
        gauge("serve.queue_depth", "__all__").is_some(),
        "queue depth gauge must exist: {:?}",
        obs.registry().snapshot().keys().collect::<Vec<_>>()
    );
    let inflight = gauge("serve.inflight", "gauge-tenant").expect("per-tenant in-flight gauge");
    assert!(inflight > 0.0, "submitted windows must show as in-flight, got {inflight}");
    assert_eq!(server.tenant_inflight("gauge-tenant"), inflight as u64);

    let verdicts = session.poll();
    assert!(!verdicts.is_empty());
    session.close();
    // everything resolved: the gauges drain back to zero
    assert_eq!(gauge("serve.inflight", "gauge-tenant"), Some(0.0));
    assert_eq!(gauge("serve.queue_depth", "__all__"), Some(0.0));
}

/// The platform API's stream endpoints: project-scoped access control,
/// default project billing identity, and full-session accounting.
#[test]
fn platform_stream_endpoints_enforce_access_and_account_windows() {
    let api = Api::new();
    let owner = api.create_user("owner");
    let outsider = api.create_user("outsider");
    let project = api.create_project("live", owner).unwrap();
    api.attach_serving(server_on(Parallelism::from_env())).unwrap();
    api.upload_model(project, owner, "kws", model_json()).unwrap();

    let mut config = SessionConfig::new("", 256); // empty tenant -> project-<id>
    config.max_pending = 64;
    let sid = api.stream_open(project, owner, "kws", config).unwrap();

    assert!(matches!(
        api.stream_push(sid, outsider, &[0.0; 64]),
        Err(PlatformError::AccessDenied(_))
    ));

    let signal = audio(4);
    let mut verdicts = Vec::new();
    for chunk in signal.chunks(500) {
        verdicts.extend(api.stream_push(sid, owner, chunk).unwrap());
    }
    let stats = api.stream_stats(sid, owner).unwrap();
    assert_eq!(stats.samples_in, signal.len() as u64);
    let final_stats = api.stream_close(sid, owner).unwrap();
    assert!(final_stats.windows_classified >= 10);
    assert!(final_stats.features_identical());
    assert!(!verdicts.is_empty());
    assert!(api.stream_push(sid, owner, &[0.0; 64]).is_err(), "closed session is gone");
}
