//! Kernel parity integration: the blocked/fused kernels must be
//! *bitwise*-identical to the naive reference loops — not approximately
//! equal — over awkward shapes, both dtypes, and every pool width.
//!
//! That identity is the contract that lets one set of blocked kernels
//! back both the TFLM-style interpreter and the EON executor (and lets
//! `EI_THREADS` stay a pure wall-clock knob): if the bits ever diverged,
//! engine-parity and determinism guarantees elsewhere in the test suite
//! would silently weaken. Shapes here are deliberately odd — prime dims,
//! partial register tiles, K panels straddling the `KC` boundary, `Same`
//! padding with asymmetric overhang — because that is where tiled
//! kernels break first.

use edgelab::nn::layers::conv::{
    conv1d_forward, conv2d_forward, depthwise_forward, Conv1dGeom, Conv2dGeom,
};
use edgelab::nn::layers::dense::dense_forward;
use edgelab::nn::par::{
    conv1d_forward_auto, conv2d_forward_auto, dense_forward_auto, depthwise_forward_auto,
    gemm_f32_auto,
};
use edgelab::nn::spec::Padding;
use edgelab::par::{ParPool, Parallelism};
use edgelab::tensor::gemm::{gemm_f32, gemm_i8_fused, reference, KC, MR, NR};

/// Deterministic f32 data mixing zeros, negative zeros and sign flips so
/// the kernels' `x == 0.0` skip is exercised, not just dense arithmetic.
fn data(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
            match h % 11 {
                0 => 0.0,
                1 => -0.0,
                _ => ((h % 113) as f32 - 56.0) * 0.017,
            }
        })
        .collect()
}

fn data_i8(n: usize, seed: u64) -> Vec<i8> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
            (h >> 32) as i8
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The pool widths every parity check runs at: serial, a fixed width the
/// CI matrix always covers, and whatever `EI_THREADS` says right now.
fn pools() -> Vec<ParPool> {
    vec![
        ParPool::new(Parallelism::serial()),
        ParPool::new(Parallelism::new(4)),
        ParPool::new(Parallelism::from_env()),
    ]
}

#[test]
fn blocked_gemm_matches_reference_on_odd_shapes() {
    for &(m, k, n) in &[
        (1, 1, 1),
        (1, 257, 19),
        (2, 31, NR - 1),
        (MR - 1, 64, NR + 1),
        (MR + 1, KC - 1, 2 * NR + 3),
        (13, KC + 7, 29),
        (37, 2 * KC + 5, 17),
        (64, 100, 1),
    ] {
        let a = data(m * k, 7);
        let b = data(k * n, 8);
        let bias = data(n, 9);
        let mut want = vec![0.0f32; m * n];
        reference::matmul_f32(m, k, n, &a, &b, Some(&bias), &mut want);
        let mut got = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, Some(&bias), &mut got);
        assert_eq!(bits(&want), bits(&got), "serial blocked, shape ({m},{k},{n})");
        for pool in pools() {
            let mut auto = vec![0.0f32; m * n];
            gemm_f32_auto(&pool, m, k, n, &a, &b, Some(&bias), &mut auto);
            assert_eq!(
                bits(&want),
                bits(&auto),
                "auto at {} threads, shape ({m},{k},{n})",
                pool.threads()
            );
        }
    }
}

#[test]
fn fused_int8_gemm_matches_two_pass_reference() {
    for &(m, k, n) in &[(1, 9, 5), (3, 64, 7), (MR + 2, KC + 3, NR + 5), (33, 127, 31)] {
        let a = data_i8(m * k, 3);
        let b = data_i8(k * n, 4);
        let bias: Vec<i32> = (0..n as i32).map(|j| j * 31 - 400).collect();
        let a_zp = -7;
        let epi = |j: usize, acc: i32| {
            let scaled = ((acc as i64 * (1_100_000_000 + j as i64)) >> 38) as i32;
            scaled.clamp(-128, 127) as i8
        };
        let want: Vec<i8> = reference::matmul_i8(m, k, n, &a, a_zp, &b, &bias)
            .iter()
            .enumerate()
            .map(|(i, &acc)| epi(i % n, acc))
            .collect();
        let mut got = vec![0i8; m * n];
        gemm_i8_fused(m, k, n, &a, a_zp, &b, &bias, epi, &mut got);
        assert_eq!(want, got, "shape ({m},{k},{n})");
    }
}

#[test]
fn conv2d_lowering_is_bitwise_identical_across_pool_widths() {
    for padding in [Padding::Same, Padding::Valid] {
        // 19x11 with stride 2 gives asymmetric Same-padding overhang.
        let g = Conv2dGeom {
            in_h: 19,
            in_w: 11,
            in_c: 13,
            out_c: 17,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding,
        };
        let input = data(g.in_h * g.in_w * g.in_c, 21);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c * g.out_c, 22);
        let bias = data(g.out_c, 23);
        let want = conv2d_forward(&input, &weights, &bias, g);
        for pool in pools() {
            let got = conv2d_forward_auto(&pool, &input, &weights, &bias, g);
            assert_eq!(bits(&want), bits(&got), "{padding:?} at {} threads", pool.threads());
        }
    }
}

#[test]
fn depthwise_bands_are_bitwise_identical_across_pool_widths() {
    for padding in [Padding::Same, Padding::Valid] {
        let g = Conv2dGeom {
            in_h: 41,
            in_w: 23,
            in_c: 19,
            out_c: 19,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding,
        };
        let input = data(g.in_h * g.in_w * g.in_c, 31);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c, 32);
        let bias = data(g.in_c, 33);
        let want = depthwise_forward(&input, &weights, &bias, g);
        for pool in pools() {
            let got = depthwise_forward_auto(&pool, &input, &weights, &bias, g);
            assert_eq!(bits(&want), bits(&got), "{padding:?} at {} threads", pool.threads());
        }
    }
}

#[test]
fn conv1d_and_dense_lowerings_are_bitwise_identical() {
    let g =
        Conv1dGeom { in_w: 199, in_c: 23, out_c: 29, kernel: 5, stride: 2, padding: Padding::Same };
    let input = data(g.in_w * g.in_c, 41);
    let weights = data(g.kernel * g.in_c * g.out_c, 42);
    let bias = data(g.out_c, 43);
    let want = conv1d_forward(&input, &weights, &bias, g);

    let (inputs, units) = (601, 251);
    let d_in = data(inputs, 44);
    let d_w = data(inputs * units, 45);
    let d_b = data(units, 46);
    let d_want = dense_forward(&d_in, &d_w, &d_b, units);

    for pool in pools() {
        let got = conv1d_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&want), bits(&got), "conv1d at {} threads", pool.threads());
        let d_got = dense_forward_auto(&pool, &d_in, &d_w, &d_b, units);
        assert_eq!(bits(&d_want), bits(&d_got), "dense at {} threads", pool.threads());
    }
}
