//! Fault-tolerance integration: the scripted fault-injection harness
//! driving the job scheduler end to end on a mocked clock — panics,
//! transient errors, deadline overruns and dead-lettering, with zero
//! wall-clock sleeps.

use edgelab::faults::{Clock, FailureCause, FaultPlan, RetryPolicy, VirtualClock};
use edgelab::platform::JobScheduler;

#[test]
fn scripted_faults_recover_with_the_exact_seeded_backoff_schedule() {
    let clock = VirtualClock::shared();
    let scheduler = JobScheduler::with_clock(1, clock.clone());
    let policy = RetryPolicy::default().with_seed(2024).with_max_attempts(5);
    // the script: panic on attempt 1, error on attempt 2, succeed on 3
    let plan =
        FaultPlan::new().panic_on(1, "feature extractor crashed").error_on(2, "blob storage flake");
    let mut work = plan.arm(scheduler.clock(), || Ok::<_, String>("features extracted".into()));
    let id = scheduler.submit_with(policy.clone(), move |_| work()).unwrap();

    assert_eq!(scheduler.wait(id).unwrap(), "features extracted");
    assert_eq!(plan.calls(), 3);

    let history = scheduler.attempt_history(id).unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].cause, FailureCause::Panic("feature extractor crashed".into()));
    assert_eq!(history[1].cause, FailureCause::Error("blob storage flake".into()));

    // the backoffs taken are exactly the policy's seeded jittered schedule
    // for this job's stream…
    let backoffs: Vec<u64> = history.iter().map(|a| a.backoff_ms.unwrap()).collect();
    assert_eq!(backoffs, policy.backoff_preview(id, 2));
    // …and the only time that passed is the backoff itself: the whole
    // scenario ran on logical time, no wall-clock sleeps
    assert_eq!(clock.now_ms(), backoffs.iter().sum::<u64>());
}

#[test]
fn deadline_overrun_is_recorded_timed_out_then_retried() {
    let clock = VirtualClock::shared();
    let scheduler = JobScheduler::with_clock(1, clock);
    let policy = RetryPolicy::default().with_seed(7).with_max_attempts(3).with_timeout(100);
    // attempt 1 sleeps 500 logical ms — far past the 100 ms deadline —
    // and still returns Ok; the stale result must be discarded
    let plan = FaultPlan::new().sleep_on(1, 500);
    let mut work = plan.arm(scheduler.clock(), || Ok::<_, String>("dsp features".into()));
    let id = scheduler.submit_with(policy, move |_| work()).unwrap();

    assert_eq!(scheduler.wait(id).unwrap(), "dsp features");
    assert_eq!(plan.calls(), 2, "the timed-out attempt must be retried");
    let history = scheduler.attempt_history(id).unwrap();
    assert_eq!(history[0].cause, FailureCause::TimedOut { limit_ms: 100 });
    assert!(history[0].duration_ms >= 500, "overrun duration is recorded");
}

#[test]
fn exhausted_job_lands_in_the_dead_letter_queue_with_full_history() {
    let scheduler = JobScheduler::with_clock(2, VirtualClock::shared());
    let policy = RetryPolicy::default().with_max_attempts(3);
    let id = scheduler
        .submit_with(policy, |ctx| Err(format!("attempt {} failed", ctx.attempt)))
        .unwrap();
    assert!(scheduler.wait(id).is_err());

    let dead = scheduler.dead_letters();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].id, id);
    assert_eq!(dead[0].error, "attempt 3 failed");
    let attempts: Vec<u32> = dead[0].attempts.iter().map(|a| a.attempt).collect();
    assert_eq!(attempts, vec![1, 2, 3]);
    assert!(dead[0].attempts[2].backoff_ms.is_none(), "terminal attempt has no backoff");
}
