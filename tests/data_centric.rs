//! Data-centric workflow integration (paper §3 objective 3, §8.1): the
//! explorer finds the bad sample, augmentation stretches a tiny dataset,
//! and the cleaned/augmented data trains a better model.

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::augment::{augment_dataset, AugmentConfig};
use edgelab::data::explorer::{explore, DataWarning};
use edgelab::data::synth::KwsGenerator;
use edgelab::data::{Dataset, Sample, SensorKind, Split};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};

fn generator() -> KwsGenerator {
    KwsGenerator {
        classes: vec!["left".into(), "right".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.25,
        noise: 0.08,
    }
}

fn design() -> ImpulseDesign {
    ImpulseDesign::new(
        "data-centric",
        2_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 20,
            sample_rate_hz: 8_000,
        }),
    )
    .expect("valid design")
}

#[test]
fn explorer_flags_the_corrupted_capture() {
    let gen = generator();
    let mut dataset = gen.dataset(12, 3);
    // a clipped/saturated capture sneaks in (a real field failure mode)
    let bad = dataset.add(Sample::new(0, vec![1.0; 2_000], SensorKind::Audio).with_label("left"));
    // and one sample with the wrong length
    dataset.add(Sample::new(0, vec![0.1; 500], SensorKind::Audio).with_label("right"));

    let report = explore(&dataset, 4.0);
    assert!(
        report.outliers.iter().any(|o| o.id == bad),
        "saturated capture must be flagged: {:?}",
        report.outliers
    );
    assert!(report
        .warnings
        .iter()
        .any(|w| matches!(w, DataWarning::InconsistentLengths { label, .. } if label == "right")));

    // the cleaning loop: remove what the explorer flagged
    for outlier in &report.outliers {
        dataset.remove(outlier.id).unwrap();
    }
    let after = explore(&dataset, 4.0);
    assert!(after.outliers.is_empty(), "cleaned dataset has no outliers");
}

#[test]
fn augmentation_helps_in_the_low_data_regime() {
    let gen = generator();
    let design = design();
    let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 24);
    let config = TrainConfig { epochs: 10, learning_rate: 0.01, ..TrainConfig::default() };

    // a *harder* variant: very noisy, very few clips
    let gen = KwsGenerator { noise: 0.25, ..gen };
    let tiny: Dataset = gen.dataset(3, 5).with_test_percent(0);
    let eval_set = gen.dataset(25, 900).with_test_percent(100);

    let baseline = design.train(&spec, &tiny, &config).unwrap();
    let baseline_acc =
        baseline.evaluate(&baseline.float_artifact(), &eval_set, Split::Testing).unwrap().accuracy;

    let mut augmented = tiny.clone();
    let added = augment_dataset(&mut augmented, AugmentConfig::default(), 5, 7);
    assert_eq!(added, 6 * 5);
    let boosted = design.train(&spec, &augmented, &config).unwrap();
    let boosted_acc =
        boosted.evaluate(&boosted.float_artifact(), &eval_set, Split::Testing).unwrap().accuracy;

    // augmentation must not hurt in the low-data regime
    assert!(
        boosted_acc + 0.1 >= baseline_acc,
        "augmented {boosted_acc} vs baseline {baseline_acc}"
    );
    assert!(boosted_acc > 0.7, "augmented model still learns: {boosted_acc}");
}
