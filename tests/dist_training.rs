//! Distributed-training integration: bitwise determinism and crash
//! recovery of the `ei-dist` cluster, end to end through the facade —
//! worker sweeps, seeded fault scripts, the job-scheduler bridge, the
//! tuner's distributed backend and the `dist.*` trace counters.
//!
//! `EI_DIST_FAULT_SEED` (default 42) selects the seeded fault script, so
//! CI replays the whole suite under multiple scripts.

use edgelab::dist::{
    train_serial_reference, weight_checksum, DistConfig, DistError, DistFaultPlan, DistTrainer,
    WorkerFault,
};
use edgelab::faults::VirtualClock;
use edgelab::nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
use edgelab::nn::train::TrainConfig;
use edgelab::nn::Sequential;
use edgelab::platform::dist::{submit_distributed_training, DistTrainingJob};
use edgelab::platform::JobScheduler;
use edgelab::trace::{MetricValue, Tracer};

fn fault_seed() -> u64 {
    std::env::var("EI_DIST_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// Deterministic two-class blobs in 6-D.
fn blobs(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut state = 0xb10b_5eedu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let center = if class == 0 { 1.0f32 } else { -1.0 };
        inputs.push((0..6).map(|_| center + 0.35 * next()).collect());
        labels.push(class);
    }
    (inputs, labels)
}

fn spec() -> ModelSpec {
    ModelSpec::new(Dims::new(1, 6, 1))
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense { units: 12, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 6,
        learning_rate: 0.01,
        validation_split: 0.0,
        seed: 7,
        ..TrainConfig::default()
    }
}

fn dist_cfg(workers: usize) -> DistConfig {
    DistConfig::new(workers).with_partitions(6).with_timeout_ms(50)
}

/// The serial-SGD oracle's final weight checksum for this suite's task.
fn reference_checksum() -> u64 {
    let (inputs, labels) = blobs(72);
    let mut model = Sequential::build(&spec(), train_cfg().seed).unwrap();
    train_serial_reference(&mut model, &train_cfg(), &dist_cfg(1), &inputs, &labels).unwrap();
    weight_checksum(&model)
}

#[test]
fn weights_are_bitwise_identical_at_every_worker_count() {
    let (inputs, labels) = blobs(72);
    let reference = reference_checksum();
    for workers in [1usize, 2, 4] {
        let trainer = DistTrainer::new(dist_cfg(workers), train_cfg());
        let mut model = Sequential::build(&spec(), train_cfg().seed).unwrap();
        let report = trainer.train(&mut model, &inputs, &labels).unwrap();
        assert_eq!(
            report.weight_checksum, reference,
            "{workers} workers diverged from the serial-SGD reference"
        );
        assert_eq!(weight_checksum(&model), reference);
        assert_eq!(report.crashes_detected, 0);
    }
}

#[test]
fn seeded_fault_script_recovers_to_the_exact_no_fault_bits() {
    let (inputs, labels) = blobs(72);
    let reference = reference_checksum();
    let cfg = train_cfg();
    // steps per epoch = partition size / batch = 12 / 6 = 2
    let faults = DistFaultPlan::seeded(fault_seed(), 4, cfg.epochs, 2, 1.0);
    assert!(!faults.is_empty(), "a 100% crash rate must script at least one fault");
    let trainer = DistTrainer::new(dist_cfg(4), cfg.clone())
        .with_clock(VirtualClock::shared())
        .with_faults(faults.fresh());
    let mut model = Sequential::build(&spec(), cfg.seed).unwrap();
    let report = trainer.train(&mut model, &inputs, &labels).unwrap();
    assert!(report.crashes_detected >= 1, "the script must kill at least one worker mid-epoch");
    assert!(report.partitions_rescheduled >= 1, "orphaned partitions must be adopted");
    assert_eq!(
        report.weight_checksum, reference,
        "crash recovery must converge to the no-fault serial-SGD bits"
    );
}

#[test]
fn crash_stall_and_panic_all_recover_identically() {
    let (inputs, labels) = blobs(72);
    let reference = reference_checksum();
    for fault in [WorkerFault::Crash, WorkerFault::Stall(1_000_000), WorkerFault::Panic] {
        let trainer = DistTrainer::new(dist_cfg(2), train_cfg())
            .with_clock(VirtualClock::shared())
            .with_faults(DistFaultPlan::new().inject(1, 1, 0, fault));
        let mut model = Sequential::build(&spec(), train_cfg().seed).unwrap();
        let report = trainer.train(&mut model, &inputs, &labels).unwrap();
        assert_eq!(report.crashes_detected, 1, "{fault:?} must be detected as one death");
        assert_eq!(report.weight_checksum, reference, "{fault:?} recovery diverged");
    }
}

#[test]
fn losing_every_worker_is_a_clean_error() {
    let (inputs, labels) = blobs(72);
    let trainer = DistTrainer::new(dist_cfg(2), train_cfg())
        .with_clock(VirtualClock::shared())
        .with_faults(DistFaultPlan::new().inject(0, 0, 0, WorkerFault::Crash).inject(
            1,
            0,
            0,
            WorkerFault::Crash,
        ));
    let mut model = Sequential::build(&spec(), train_cfg().seed).unwrap();
    match trainer.train(&mut model, &inputs, &labels) {
        Err(DistError::AllWorkersDead { epoch: 0 }) => {}
        other => panic!("expected AllWorkersDead, got {other:?}"),
    }
}

#[test]
fn trace_counters_record_the_recovery() {
    let (inputs, labels) = blobs(72);
    let clock = VirtualClock::shared();
    let (tracer, collector) = Tracer::collecting(clock.clone());
    let cfg = train_cfg();
    let trainer = DistTrainer::new(dist_cfg(2), cfg.clone())
        .with_clock(clock)
        .with_tracer(tracer.clone())
        .with_faults(DistFaultPlan::new().inject(1, 2, 1, WorkerFault::Crash));
    let mut model = Sequential::build(&spec(), cfg.seed).unwrap();
    trainer.train(&mut model, &inputs, &labels).unwrap();
    let snapshot = tracer.metrics_snapshot();
    assert_eq!(snapshot.get("dist.epochs"), Some(&MetricValue::Counter(cfg.epochs as u64)));
    assert_eq!(snapshot.get("dist.crashes_detected"), Some(&MetricValue::Counter(1)));
    assert!(
        matches!(snapshot.get("dist.partitions_rescheduled"), Some(&MetricValue::Counter(n)) if n >= 1)
    );
    assert!(matches!(snapshot.get("dist.reductions"), Some(&MetricValue::Counter(n)) if n > 0));
    let records = collector.records();
    assert!(records.iter().any(|r| r.name() == "dist.train"));
    assert!(records.iter().any(|r| r.name() == "dist.crash_detected"));
    assert!(records.iter().any(|r| r.name() == "dist.checkpoint_restored"));
}

#[test]
fn scheduler_retries_a_job_whose_cluster_died_and_dead_letters_exhaustion() {
    use edgelab::faults::RetryPolicy;
    let (inputs, labels) = blobs(72);
    let scheduler = JobScheduler::new(1);
    // attempt 1 loses the lone worker; the one-shot fault is consumed,
    // so the scheduler's retry converges — with the reference bits
    let trainer = DistTrainer::new(dist_cfg(1), train_cfg())
        .with_faults(DistFaultPlan::new().inject(0, 0, 0, WorkerFault::Crash));
    let job = DistTrainingJob { trainer, spec: spec(), inputs, labels };
    let handle = submit_distributed_training(&scheduler, RetryPolicy::immediate(2), job).unwrap();
    scheduler.wait(handle.id).unwrap();
    let report = handle.report().unwrap();
    assert_eq!(report.weight_checksum, reference_checksum());
    assert_eq!(scheduler.attempt_history(handle.id).unwrap().len(), 1);

    // a cluster that cannot ever survive exhausts retries → dead letter
    // → inspectable and requeueable through the new queue API
    let (inputs, labels) = blobs(72);
    let trainer = DistTrainer::new(dist_cfg(1), train_cfg()).with_faults(
        DistFaultPlan::new().inject(0, 0, 0, WorkerFault::Crash).inject(
            0,
            0,
            1,
            WorkerFault::Crash,
        ),
    );
    let job = DistTrainingJob { trainer, spec: spec(), inputs, labels };
    let handle = submit_distributed_training(&scheduler, RetryPolicy::immediate(2), job).unwrap();
    assert!(scheduler.wait(handle.id).is_err());
    let letter = scheduler.dead_letter(handle.id).unwrap();
    assert!(letter.error.contains("all workers dead"), "{}", letter.error);
    assert!(letter.requeueable);
    // both scripted faults were consumed by the two failed attempts, so
    // the operator's requeue converges
    let requeued = scheduler.requeue(handle.id).unwrap();
    scheduler.wait(requeued).unwrap();
}

#[test]
fn tuner_distributed_backend_skips_killed_trials() {
    use edgelab::data::synth::KwsGenerator;
    use edgelab::device::{Board, Profiler};
    use edgelab::dsp::{DspConfig, MfccConfig};
    use edgelab::tuner::{EonTuner, SearchSpace, TunerConfig};

    let dataset = KwsGenerator {
        classes: vec!["go".into(), "stop".into()],
        sample_rate_hz: 4_000,
        duration_s: 0.25,
        noise: 0.02,
    }
    .dataset(10, 3);
    let space = SearchSpace {
        dsp: vec![DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 8,
            n_filters: 16,
            sample_rate_hz: 4_000,
        })],
        models: vec![edgelab::tuner::ModelChoice::DenseMlp { hidden: 16 }],
    };
    let config = TunerConfig {
        trials: 1,
        train: TrainConfig { epochs: 3, validation_split: 0.0, ..TrainConfig::default() },
        ..TunerConfig::default()
    };
    let make = || {
        EonTuner::new(
            space.clone(),
            Profiler::new(Board::nano33_ble_sense()),
            1_000,
            config.clone(),
        )
    };

    // distributed training succeeds → a normal trial
    let ok = make().with_distributed(DistConfig::new(2).with_timeout_ms(50)).run(&dataset).unwrap();
    assert_eq!(ok.trials.len(), 1);

    // an unsurvivable cluster kills the trial → skipped-trial record,
    // exactly like run_hyperband's evaluation-failure path
    let killed = make()
        .with_distributed(DistConfig::new(1).with_timeout_ms(50))
        .with_dist_faults(DistFaultPlan::new().inject(0, 0, 0, WorkerFault::Crash))
        .run(&dataset)
        .unwrap();
    assert!(killed.trials.is_empty());
    assert_eq!(killed.filtered.len(), 1);
    assert!(killed.filtered[0].1.contains("evaluation failed"), "{}", killed.filtered[0].1);
}
