//! Cross-engine and cross-dtype parity: the interpreter and the EON
//! program must be bit-identical for any artifact, and quantized models
//! must track their float counterparts, across randomized architectures.

use edgelab::nn::spec::{Activation, Dims, LayerSpec, ModelSpec, Padding};
use edgelab::nn::Sequential;
use edgelab::quant::quantize_model;
use edgelab::runtime::{EonProgram, InferenceEngine, Interpreter, ModelArtifact};
use edgelab::tensor::ops::argmax;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a small random conv/pool/dense architecture from a seed.
fn random_spec(seed: u64) -> ModelSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = [6usize, 8, 10][rng.gen_range(0..3)];
    let channels = [1usize, 2, 3][rng.gen_range(0..3)];
    let mut spec = ModelSpec::new(Dims::new(side, side, channels)).named("random");
    let filters = [2usize, 4, 8][rng.gen_range(0..3)];
    spec = spec.layer(LayerSpec::Conv2d {
        filters,
        kernel: 3,
        stride: 1,
        padding: Padding::Same,
        activation: if rng.gen() { Activation::Relu } else { Activation::Relu6 },
    });
    if rng.gen() {
        spec = spec.layer(LayerSpec::MaxPool { size: 2 });
    } else {
        spec = spec.layer(LayerSpec::AvgPool { size: 2 });
    }
    if rng.gen() {
        spec = spec.layer(LayerSpec::DepthwiseConv2d {
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        });
    }
    spec.layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

fn random_input(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_bit_identical_on_random_models(seed in 0u64..10_000) {
        let spec = random_spec(seed);
        let model = Sequential::build(&spec, seed).expect("random spec builds");
        let input = random_input(spec.input.len(), seed ^ 0xABCD);
        let artifact = ModelArtifact::Float(model);
        let eon = EonProgram::compile(artifact.clone()).unwrap();
        let interp = Interpreter::new(artifact.clone()).unwrap();
        let reference = artifact.run_reference(&input).unwrap();
        prop_assert_eq!(eon.run(&input).unwrap(), reference.clone());
        prop_assert_eq!(interp.run(&input).unwrap(), reference);
    }

    #[test]
    fn quantized_random_models_track_float(seed in 0u64..10_000) {
        let spec = random_spec(seed);
        let model = Sequential::build(&spec, seed).expect("random spec builds");
        let calib: Vec<Vec<f32>> =
            (0..12).map(|i| random_input(spec.input.len(), seed.wrapping_add(i))).collect();
        let qmodel = quantize_model(&model, &calib).expect("quantizes");
        for x in calib.iter().take(4) {
            let f = model.forward(x).unwrap();
            let q = qmodel.forward(x).unwrap();
            // post-softmax probabilities must be close
            for (a, b) in f.iter().zip(&q) {
                prop_assert!((a - b).abs() < 0.2, "float {a} vs int8 {b} (seed {seed})");
            }
        }
    }

    #[test]
    fn arena_execution_validates_plans_on_random_models(seed in 0u64..10_000) {
        // run_in_arena verifies every buffer read-before-use at the planned
        // offsets; any planner aliasing bug would fail here
        let spec = random_spec(seed);
        let model = Sequential::build(&spec, seed).expect("builds");
        let input = random_input(spec.input.len(), seed ^ 0x5555);
        let artifact = ModelArtifact::Float(model);
        let eon = EonProgram::compile(artifact).unwrap();
        prop_assert_eq!(eon.run_in_arena(&input).unwrap(), eon.run(&input).unwrap());
    }

    #[test]
    fn eon_never_uses_more_memory_than_interpreter(seed in 0u64..10_000) {
        let spec = random_spec(seed);
        let model = Sequential::build(&spec, seed).expect("builds");
        let artifact = ModelArtifact::Float(model);
        let eon = EonProgram::compile(artifact.clone()).unwrap();
        let interp = Interpreter::new(artifact).unwrap();
        prop_assert!(eon.memory().ram_total() <= interp.memory().ram_total());
        prop_assert!(eon.memory().flash_total() <= interp.memory().flash_total());
    }
}

#[test]
fn quantized_argmax_agreement_rate() {
    // across many random models, int8 and float argmax must almost always
    // agree on in-distribution inputs
    let mut agree = 0usize;
    let mut total = 0usize;
    for seed in 0..20u64 {
        let spec = random_spec(seed);
        let model = Sequential::build(&spec, seed).unwrap();
        let calib: Vec<Vec<f32>> =
            (0..16).map(|i| random_input(spec.input.len(), seed * 100 + i)).collect();
        let qmodel = quantize_model(&model, &calib).unwrap();
        for x in calib.iter().take(8) {
            let f = model.forward(x).unwrap();
            let q = qmodel.forward(x).unwrap();
            if argmax(&f) == argmax(&q) {
                agree += 1;
            }
            total += 1;
        }
    }
    assert!(agree as f64 / total as f64 > 0.9, "argmax agreement {agree}/{total} below 90%");
}
