//! `edgelab` — the command-line tool over the platform library.
//!
//! The paper's workflow is driven by "command line interface (CLI) tools
//! that interface with device firmware to ingest data" plus a web API
//! (§4.1, §4.9). This binary is that CLI: generate or ingest data, train,
//! classify, profile against boards, export deployment bundles, and serve
//! a trained model over the EIM JSON protocol on stdio.
//!
//! ```text
//! edgelab demo-data <dir>                          generate demo WAV clips
//! edgelab train --data <dir> --out <model.json>    train a keyword spotter
//! edgelab classify --model <m.json> --wav <f.wav>  classify one clip
//! edgelab profile --model <m.json> [--board name]  latency/memory estimate
//! edgelab deploy --model <m.json> --out <dir>      write the C bundle
//! edgelab eim --model <m.json>                     serve EIM JSON on stdio
//! ```

use std::io::{BufRead, Write as _};
use std::path::{Path, PathBuf};

use edgelab::core::deploy::{build_bundle, DeploymentTarget};
use edgelab::core::eim::EimRunner;
use edgelab::core::impulse::{ImpulseDesign, TrainedImpulse};
use edgelab::data::ingest::{parse_wav, to_wav_bytes};
use edgelab::data::synth::KwsGenerator;
use edgelab::data::{Dataset, Sample, SensorKind, Split};
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::runtime::{EngineKind, EonProgram};

type CliResult<T> = Result<T, Box<dyn std::error::Error>>;

const SAMPLE_RATE: u32 = 8_000;
const WINDOW: usize = 4_000; // 0.5 s

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo-data") => cmd_demo_data(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("deploy") => cmd_deploy(&args[1..]),
        Some("eim") => cmd_eim(&args[1..]),
        _ => {
            eprint!("{}", USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "\
edgelab — TinyML MLOps from the command line

USAGE:
  edgelab demo-data <dir>                          generate demo WAV clips
  edgelab train --data <dir> --out <model.json>    train a keyword spotter
  edgelab classify --model <m.json> --wav <f.wav>  classify one clip
  edgelab profile --model <m.json> [--board name]  latency/memory estimate
  edgelab deploy --model <m.json> --out <dir>      write the C bundle
  edgelab eim --model <m.json>                     serve EIM JSON on stdio

Training data layout: <dir>/<label>/<clip>.wav (0.5 s mono PCM16 @ 8 kHz).
";

/// Reads the value following a `--flag`.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn required(args: &[String], name: &str) -> CliResult<String> {
    flag(args, name).ok_or_else(|| format!("missing {name} <value>").into())
}

fn default_design() -> CliResult<ImpulseDesign> {
    Ok(ImpulseDesign::new(
        "cli-kws",
        WINDOW,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 24,
            sample_rate_hz: SAMPLE_RATE,
        }),
    )?)
}

/// `edgelab demo-data <dir>` — writes labeled demo WAV clips.
fn cmd_demo_data(args: &[String]) -> CliResult<()> {
    let dir = args.first().ok_or("usage: edgelab demo-data <dir>")?;
    let generator = KwsGenerator {
        classes: vec!["go".into(), "stop".into(), "noise".into()],
        sample_rate_hz: SAMPLE_RATE,
        duration_s: 0.5,
        noise: 0.04,
    };
    let mut written = 0usize;
    for (ci, class) in generator.classes.iter().enumerate() {
        let class_dir = Path::new(dir).join(class);
        std::fs::create_dir_all(&class_dir)?;
        for k in 0..16u64 {
            let clip = generator.generate(ci, 100 * ci as u64 + k);
            let path = class_dir.join(format!("{class}_{k:02}.wav"));
            std::fs::write(&path, to_wav_bytes(SAMPLE_RATE, &clip))?;
            written += 1;
        }
    }
    println!("wrote {written} clips under {dir}/<label>/*.wav");
    Ok(())
}

/// Loads a `<dir>/<label>/*.wav` tree into a dataset.
fn load_wav_tree(dir: &str) -> CliResult<Dataset> {
    let mut dataset = Dataset::new(dir);
    let mut clips = 0usize;
    for label_entry in std::fs::read_dir(dir)? {
        let label_entry = label_entry?;
        if !label_entry.file_type()?.is_dir() {
            continue;
        }
        let label = label_entry.file_name().to_string_lossy().to_string();
        for file in std::fs::read_dir(label_entry.path())? {
            let path: PathBuf = file?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("wav") {
                continue;
            }
            let bytes = std::fs::read(&path)?;
            let (rate, mut samples) = parse_wav(&bytes)?;
            samples.resize(WINDOW, 0.0); // pad/trim to the impulse window
            dataset.add(
                Sample::new(0, samples, SensorKind::Audio)
                    .with_label(&label)
                    .with_sample_rate(rate),
            );
            clips += 1;
        }
    }
    if clips == 0 {
        return Err(format!("no .wav files found under {dir}/<label>/").into());
    }
    Ok(dataset)
}

/// `edgelab train --data <dir> --out <model.json>`.
fn cmd_train(args: &[String]) -> CliResult<()> {
    let data_dir = required(args, "--data")?;
    let out = required(args, "--out")?;
    let epochs: usize = flag(args, "--epochs").map(|v| v.parse()).transpose()?.unwrap_or(12);
    let dataset = load_wav_tree(&data_dir)?;
    let stats = dataset.stats();
    println!(
        "loaded {} clips / {} classes ({} train, {} test)",
        stats.total,
        stats.per_class.len(),
        stats.training,
        stats.testing
    );
    let design = default_design()?;
    let spec = presets::dense_mlp(design.feature_dims()?, dataset.labels().len(), 32);
    let trained = design.train(
        &spec,
        &dataset,
        &TrainConfig { epochs, learning_rate: 0.01, ..TrainConfig::default() },
    )?;
    let eval = trained.evaluate(&trained.float_artifact(), &dataset, Split::Testing)?;
    println!("holdout accuracy: {:.1}%  (macro F1 {:.2})", eval.accuracy * 100.0, eval.macro_f1);
    println!("{}", eval.matrix);
    std::fs::write(&out, trained.to_json()?)?;
    println!("saved model to {out}");
    Ok(())
}

fn load_model(args: &[String]) -> CliResult<TrainedImpulse> {
    let path = required(args, "--model")?;
    let json = std::fs::read_to_string(&path)?;
    Ok(TrainedImpulse::from_json(&json)?)
}

/// `edgelab classify --model <m.json> --wav <f.wav>`.
fn cmd_classify(args: &[String]) -> CliResult<()> {
    let trained = load_model(args)?;
    let wav = required(args, "--wav")?;
    let (_, mut samples) = parse_wav(&std::fs::read(&wav)?)?;
    samples.resize(trained.design().window_samples, 0.0);
    let result = trained.classify(&samples)?;
    for (label, p) in trained.labels().iter().zip(&result.probabilities) {
        println!("{label:<12} {:.4}", p);
    }
    println!("=> {} ({:.1}%)", result.label, result.confidence * 100.0);
    Ok(())
}

/// `edgelab profile --model <m.json> [--board <name>] [--int8]`.
fn cmd_profile(args: &[String]) -> CliResult<()> {
    let trained = load_model(args)?;
    let board = match flag(args, "--board") {
        Some(name) => Board::by_name(&name)?,
        None => Board::nano33_ble_sense(),
    };
    let artifact = if args.iter().any(|a| a == "--int8") {
        trained.int8_artifact()?
    } else {
        trained.float_artifact()
    };
    let engine = EonProgram::compile(artifact)?;
    let cost = trained.design().dsp_block()?.cost(trained.design().window_samples)?;
    let profiler = Profiler::new(board);
    let report = profiler.profile(Some(cost), &engine);
    println!("board: {}", report.board);
    println!("dsp:        {:>9.2} ms", report.dsp_ms);
    println!("inference:  {:>9.2} ms", report.inference_ms);
    println!("total:      {:>9.2} ms", report.total_ms);
    println!("model RAM:  {:>9.1} kB", report.model_ram_bytes as f64 / 1024.0);
    println!("model flash:{:>9.1} kB", report.model_flash_bytes as f64 / 1024.0);
    println!(
        "fits: {}{}",
        report.fit.fits,
        if report.fit.fits {
            String::new()
        } else {
            format!(" ({})", report.fit.reasons.join("; "))
        }
    );
    println!();
    println!("per-layer:");
    for (op, ms) in profiler.per_op_profile(&engine) {
        println!("  {op:<18} {ms:>9.2} ms");
    }
    Ok(())
}

/// `edgelab deploy --model <m.json> --out <dir> [--int8] [--target cpp|arduino|eim|wasm]`.
fn cmd_deploy(args: &[String]) -> CliResult<()> {
    let trained = load_model(args)?;
    let out_dir = required(args, "--out")?;
    let target = match flag(args, "--target").as_deref() {
        None | Some("cpp") => DeploymentTarget::CppLibrary,
        Some("arduino") => DeploymentTarget::ArduinoLibrary,
        Some("eim") => DeploymentTarget::LinuxEim,
        Some("wasm") => DeploymentTarget::Wasm,
        Some(other) => return Err(format!("unknown target {other:?}").into()),
    };
    let artifact = if args.iter().any(|a| a == "--int8") {
        trained.int8_artifact()?
    } else {
        trained.float_artifact()
    };
    let bundle = build_bundle(&trained, artifact, target, EngineKind::EonCompiled)?;
    for file in &bundle.files {
        let path = Path::new(&out_dir).join(&file.path);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, &file.contents)?;
        println!("wrote {}", path.display());
    }
    println!("{} files, {} bytes total", bundle.files.len(), bundle.size_bytes());
    Ok(())
}

/// `edgelab eim --model <m.json>` — newline-delimited JSON on stdio.
fn cmd_eim(args: &[String]) -> CliResult<()> {
    let trained = load_model(args)?;
    let artifact = if args.iter().any(|a| a == "--int8") {
        trained.int8_artifact()?
    } else {
        trained.float_artifact()
    };
    let runner = EimRunner::new(trained, artifact);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match runner.handle_line(&line) {
            Ok(r) => r,
            Err(e) => format!("{{\"success\": false, \"error\": \"{e}\"}}"),
        };
        writeln!(stdout, "{response}")?;
        stdout.flush()?;
    }
    Ok(())
}
