#![warn(missing_docs)]

//! # edgelab
//!
//! A TinyML MLOps platform in Rust — a from-scratch reproduction of the
//! system described in *Edge Impulse: An MLOps Platform for Tiny Machine
//! Learning* (MLSys 2023).
//!
//! This facade crate re-exports every subsystem so downstream users can
//! depend on one crate:
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`tensor`] | `ei-tensor` | tensors + TFLM-style arena allocation |
//! | [`dsp`] | `ei-dsp` | MFE/MFCC/spectral/image processing blocks |
//! | [`nn`] | `ei-nn` | model specs, training, preset architectures |
//! | [`quant`] | `ei-quant` | int8 quantization + operator fusion |
//! | [`runtime`] | `ei-runtime` | TFLM-style interpreter vs EON compiler |
//! | [`device`] | `ei-device` | board models + latency/memory estimation |
//! | [`data`] | `ei-data` | datasets, ingestion, synthetic workloads |
//! | [`dist`] | `ei-dist` | fault-tolerant data-parallel distributed training |
//! | [`core`] | `ei-core` | the impulse pipeline + deployment + firmware SDK |
//! | [`tuner`] | `ei-tuner` | the EON Tuner (AutoML) |
//! | [`calibration`] | `ei-calibration` | streaming performance calibration |
//! | [`anomaly`] | `ei-anomaly` | K-means / GMM anomaly detection |
//! | [`active`] | `ei-active` | embeddings, 2-D projection, auto-labeling |
//! | [`platform`] | `ei-platform` | projects, API facade, job scheduler |
//! | [`serve`] | `ei-serve` | multi-tenant inference serving + artifact cache |
//! | [`stream`] | `ei-stream` | streaming ingestion + continuous inference sessions |
//! | [`faults`] | `ei-faults` | retry policies, mock clock, fault injection |
//! | [`trace`] | `ei-trace` | structured spans, metrics, trace exporters |
//! | [`obs`] | `ei-obs` | production telemetry: SLO monitors + flight recorder |
//! | [`par`] | `ei-par` | deterministic work-stealing thread pool |
//!
//! # Quickstart
//!
//! ```no_run
//! use edgelab::core::impulse::ImpulseDesign;
//! use edgelab::data::synth::KwsGenerator;
//! use edgelab::dsp::{DspConfig, MfccConfig};
//! use edgelab::nn::{presets, train::TrainConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = KwsGenerator::default().dataset(30, 42);
//! let design = ImpulseDesign::new("kws", 16_000, DspConfig::Mfcc(MfccConfig::default()))?;
//! let spec = presets::ds_cnn(design.feature_dims()?, 4, 64);
//! let trained = design.train(&spec, &dataset, &TrainConfig::default())?;
//! let result = trained.classify(&KwsGenerator::default().generate(0, 7))?;
//! println!("heard: {} ({:.1}%)", result.label, result.confidence * 100.0);
//! # Ok(())
//! # }
//! ```

pub use ei_active as active;
pub use ei_anomaly as anomaly;
pub use ei_calibration as calibration;
pub use ei_core as core;
pub use ei_data as data;
pub use ei_device as device;
pub use ei_dist as dist;
pub use ei_dsp as dsp;
pub use ei_faults as faults;
pub use ei_nn as nn;
pub use ei_obs as obs;
pub use ei_par as par;
pub use ei_platform as platform;
pub use ei_quant as quant;
pub use ei_runtime as runtime;
pub use ei_serve as serve;
pub use ei_stream as stream;
pub use ei_tensor as tensor;
pub use ei_trace as trace;
pub use ei_tuner as tuner;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // touch one symbol per subsystem so a broken re-export fails to compile
        let _ = crate::tensor::Shape::d1(1);
        let _ = crate::dsp::MfccConfig::default();
        let _ = crate::nn::spec::Dims::new(1, 1, 1);
        let _ = crate::device::Board::nano33_ble_sense();
        let _ = crate::data::Dataset::new("t");
        let _ = crate::platform::Api::new();
        let _ = crate::calibration::PostProcessConfig::default();
        let _ = crate::faults::RetryPolicy::default();
        let _ = crate::trace::Tracer::disabled();
        let _ = crate::obs::SloSpec::latency("t", 100.0, 0.99);
        let _ = crate::par::Parallelism::serial();
        let _ = crate::stream::MajorityVote::new(3);
    }
}
