//! Quickstart: the full Edge-Impulse-style workflow in ~80 lines.
//!
//! Collect data → design an impulse (window + MFCC block) → train a DS-CNN
//! → evaluate on the holdout split → quantize to int8 → estimate on-device
//! latency/memory for the Arduino Nano 33 BLE Sense → export a deployment
//! bundle.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use edgelab::core::deploy::{build_bundle, DeploymentTarget};
use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::data::Split;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::runtime::{EngineKind, EonProgram};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. data collection: synthetic stand-in for Google Speech Commands
    let generator = KwsGenerator::default();
    let dataset = generator.dataset(24, 42);
    let stats = dataset.stats();
    println!("dataset: {} clips, {} train / {} test", stats.total, stats.training, stats.testing);

    // 2. impulse design: 1 s @ 16 kHz window -> MFCC -> DS-CNN
    let design = ImpulseDesign::new(
        "kws-quickstart",
        16_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.02,
            stride_s: 0.01,
            n_coefficients: 10,
            n_filters: 40,
            sample_rate_hz: 16_000,
        }),
    )?;
    let dims = design.feature_dims()?;
    println!("impulse: window 16000 samples -> {} -> DSP {} features", design.dsp.summary(), dims);
    let spec = presets::ds_cnn(dims, dataset.labels().len(), 64);

    // 3. training (LR finder, class-bias init and best-checkpoint restore
    //    all happen inside the trainer)
    let trained = design.train(
        &spec,
        &dataset,
        &TrainConfig { epochs: 10, batch_size: 16, learning_rate: 0.005, ..TrainConfig::default() },
    )?;
    println!(
        "trained {} ({} parameters), best val accuracy {:.1}%",
        spec.name,
        trained.model().param_count(),
        trained.report().best_val_accuracy * 100.0
    );

    // 4. evaluation on the holdout split
    let float_eval = trained.evaluate(&trained.float_artifact(), &dataset, Split::Testing)?;
    println!("float32 holdout accuracy: {:.1}%", float_eval.accuracy * 100.0);
    println!("{}", float_eval.matrix);

    // 5. compression: fully int8 post-training quantization
    let int8 = trained.int8_artifact()?;
    let int8_eval = trained.evaluate(&int8, &dataset, Split::Testing)?;
    println!("int8 holdout accuracy:    {:.1}%", int8_eval.accuracy * 100.0);

    // 6. estimation: latency/RAM/flash on a real target before flashing
    let engine = EonProgram::compile(int8)?;
    let dsp_cost = design.dsp_block()?.cost(16_000)?;
    let profile = Profiler::new(Board::nano33_ble_sense()).profile(Some(dsp_cost), &engine);
    println!(
        "on {}: DSP {:.0} ms + inference {:.0} ms = {:.0} ms end-to-end",
        profile.board, profile.dsp_ms, profile.inference_ms, profile.total_ms
    );
    println!(
        "model RAM {:.1} kB, flash {:.1} kB, fits: {}",
        profile.model_ram_bytes as f64 / 1024.0,
        profile.model_flash_bytes as f64 / 1024.0,
        profile.fit.fits
    );

    // 6b. per-layer latency breakdown (the Studio's per-block view)
    let profiler = Profiler::new(Board::nano33_ble_sense());
    println!("per-layer estimate on the Nano 33:");
    for (op, op_ms) in profiler.per_op_profile(&engine) {
        if op_ms > 0.5 {
            println!("  {op:<18} {op_ms:>8.1} ms");
        }
    }

    // 7. live classification of a fresh clip
    let clip = generator.generate(2, 777);
    let result = trained.classify(&clip)?;
    println!("heard: {} ({:.1}% confident)", result.label, result.confidence * 100.0);

    // 8. deployment: generate the C++ library bundle (EON compiled)
    let bundle = build_bundle(
        &trained,
        trained.int8_artifact()?,
        DeploymentTarget::CppLibrary,
        EngineKind::EonCompiled,
    )?;
    println!("deployment bundle: {} files, {} bytes", bundle.files.len(), bundle.size_bytes());
    for f in &bundle.files {
        println!("  {}", f.path);
    }
    Ok(())
}
