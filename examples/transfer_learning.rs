//! Transfer learning across keyword vocabularies (paper §4.3): pretrain a
//! spotter on a base vocabulary, publish it to a project's model registry,
//! then a second team downloads it and fine-tunes a new vocabulary on top
//! of the frozen feature extractor — with far less data than training from
//! scratch would need.
//!
//! ```bash
//! cargo run --release --example transfer_learning
//! ```

use edgelab::core::impulse::{ImpulseDesign, TrainedImpulse};
use edgelab::data::synth::KwsGenerator;
use edgelab::data::Split;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::platform::Api;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = ImpulseDesign::new(
        "kws-base",
        4_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 24,
            sample_rate_hz: 8_000,
        }),
    )?;

    // --- team A: pretrain on a large base vocabulary ------------------------
    let base_gen = KwsGenerator {
        classes: vec!["yes".into(), "no".into(), "up".into(), "down".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.03,
    };
    let base_dataset = base_gen.dataset(25, 3);
    let spec = presets::dense_mlp(design.feature_dims()?, 4, 48);
    let base = design.train(
        &spec,
        &base_dataset,
        &TrainConfig { epochs: 15, learning_rate: 0.01, ..TrainConfig::default() },
    )?;
    let base_eval = base.evaluate(&base.float_artifact(), &base_dataset, Split::Testing)?;
    println!(
        "base model: {} classes, {} parameters, holdout accuracy {:.1}%",
        base.labels().len(),
        base.model().param_count(),
        base_eval.accuracy * 100.0
    );

    // publish to the model registry
    let api = Api::new();
    let team_a = api.create_user("team-a");
    let team_b = api.create_user("team-b");
    let project = api.create_project("shared-kws", team_a)?;
    api.add_collaborator(project, team_a, team_b)?;
    api.upload_model(project, team_a, "kws-base-v1", base.to_json()?)?;
    println!(
        "published 'kws-base-v1' to the registry ({} models listed)",
        api.list_models(project, team_a)?.len()
    );

    // --- team B: download and fine-tune on a tiny new vocabulary -------------
    let downloaded = api.download_model(project, team_b, "kws-base-v1")?;
    let base_for_b = TrainedImpulse::from_json(&downloaded)?;
    println!("team B reloaded the base model ({} labels)", base_for_b.labels().len());

    let new_gen = KwsGenerator {
        classes: vec!["left".into(), "right".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.03,
    };
    // deliberately tiny and noisy: 4 clips per class
    let new_gen = KwsGenerator { noise: 0.12, ..new_gen };
    let new_dataset = new_gen.dataset(4, 11);
    let quick = TrainConfig { epochs: 10, learning_rate: 0.01, ..TrainConfig::default() };

    let transferred = base_for_b.transfer_to(&new_dataset, 2, &quick)?;

    // baseline: train the same architecture from scratch on the tiny set
    let scratch_spec = presets::dense_mlp(design.feature_dims()?, 2, 48);
    let scratch = design.train(&scratch_spec, &new_dataset, &quick)?;

    // evaluate both on a large fresh holdout (the tiny dataset's own test
    // split is only a handful of clips)
    let fresh = new_gen.dataset(25, 400).with_test_percent(100);
    let transfer_eval =
        transferred.evaluate(&transferred.float_artifact(), &fresh, Split::Testing)?;
    let scratch_eval = scratch.evaluate(&scratch.float_artifact(), &fresh, Split::Testing)?;

    println!();
    println!("fine-tuning on 4 noisy clips/class of a new vocabulary:");
    println!("  transfer (frozen body):  {:.1}% holdout accuracy", transfer_eval.accuracy * 100.0);
    println!("  from scratch:            {:.1}% holdout accuracy", scratch_eval.accuracy * 100.0);
    println!(
        "  trainable params: transfer fine-tunes the head, scratch trains all {}",
        scratch.model().param_count()
    );

    // live check
    let clip = new_gen.generate(1, 999); // "right"
    let result = transferred.classify(&clip)?;
    println!();
    println!("transferred model hears: {} ({:.1}%)", result.label, result.confidence * 100.0);
    Ok(())
}
