//! The active-learning loop of paper §4.8: train on a small labeled
//! subset, embed everything with an intermediate layer, project to 2-D,
//! and auto-label the unlabeled pool by cluster proximity.
//!
//! ```bash
//! cargo run --release --example active_learning
//! ```

use edgelab::active::{embed, refine_layout, AutoLabeler, Pca};
use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::data::Split;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = KwsGenerator {
        classes: vec!["left".into(), "right".into(), "noise".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.03,
    };

    // 1. a small labeled seed set plus a large unlabeled pool
    let labeled = generator.dataset(8, 1);
    let unlabeled_clips: Vec<(usize, Vec<f32>)> = (0..30)
        .map(|k| {
            let class = k % 3;
            (class, generator.generate(class, 500 + k as u64))
        })
        .collect();
    println!(
        "seed set: {} labeled clips; pool: {} unlabeled clips",
        labeled.len(),
        unlabeled_clips.len()
    );

    // 2. train on the seed set only
    let design = ImpulseDesign::new(
        "al-demo",
        4_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 24,
            sample_rate_hz: 8_000,
        }),
    )?;
    let spec = presets::dense_mlp(design.feature_dims()?, 3, 32);
    let trained = design.train(
        &spec,
        &labeled,
        &TrainConfig { epochs: 12, learning_rate: 0.01, ..TrainConfig::default() },
    )?;
    println!("seed model val accuracy: {:.1}%", trained.report().best_val_accuracy * 100.0);

    // 3. embed labeled + unlabeled samples with an intermediate layer
    let block = design.dsp_block()?;
    let (labeled_raw, labeled_ys) = labeled.xy(Split::Training)?;
    let labels = labeled.labels();
    let labeled_features: Vec<Vec<f32>> =
        labeled_raw.iter().map(|r| block.process(r)).collect::<Result<_, _>>()?;
    let pool_features: Vec<Vec<f32>> =
        unlabeled_clips.iter().map(|(_, r)| block.process(r)).collect::<Result<_, _>>()?;
    let labeled_emb = embed(trained.model(), &labeled_features, None)?;
    let pool_emb = embed(trained.model(), &pool_features, None)?;
    println!("embeddings: {} dimensions", labeled_emb[0].len());

    // 4. 2-D visualization: PCA then a t-SNE-style refinement
    let mut all_emb = labeled_emb.clone();
    all_emb.extend(pool_emb.iter().cloned());
    let pca = Pca::fit(&all_emb);
    let layout = pca.transform_all(&all_emb);
    let refined = refine_layout(&layout, &all_emb, 6, 25);
    println!(
        "2-D layout computed for {} points; first labeled point at ({:.2}, {:.2})",
        refined.len(),
        refined[0][0],
        refined[0][1]
    );

    // 5. cluster-proximity auto-labeling of the pool
    let label_strings: Vec<String> = labeled_ys.iter().map(|&y| labels[y].clone()).collect();
    let labeler = AutoLabeler::fit(&labeled_emb, &label_strings, 2.5);
    let suggestions = labeler.suggest(&pool_emb);
    let mut accepted = 0;
    let mut correct = 0;
    let mut flagged = 0;
    for (s, (true_class, _)) in suggestions.iter().zip(&unlabeled_clips) {
        match &s.label {
            Some(label) => {
                accepted += 1;
                // true_class indexes the generator's class list, not the
                // dataset's sorted label list
                if label == &generator.classes[*true_class] {
                    correct += 1;
                }
            }
            None => flagged += 1,
        }
    }
    println!();
    println!(
        "auto-labeling: {accepted} accepted ({correct} correct), {flagged} flagged for review"
    );
    if accepted > 0 {
        println!("suggestion precision: {:.0}%", 100.0 * correct as f64 / accepted as f64);
    }
    Ok(())
}
