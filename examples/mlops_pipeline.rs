//! The MLOps loop end to end, driven entirely through the platform API —
//! the programmatic automation path of paper §4.9 — with the whole run
//! observed through an `ei-trace` collecting subscriber.
//!
//! Creates users and an organization, ingests data over the API (WAV and
//! JSON payloads), audits the dataset through a fault-tolerant flow,
//! configures an impulse, runs training as a scheduled job on the worker
//! pool, versions the project, publishes it to the public registry,
//! profiles the deployed model per layer on the three paper boards, and
//! finally talks to a simulated device over its AT-command serial
//! protocol. The trace — job lifecycle events, per-stage flow spans,
//! per-epoch training metrics and the per-layer inference profile — is
//! printed as JSONL at the end, followed by the Prometheus-style metrics
//! exposition.
//!
//! ```bash
//! cargo run --release --example mlops_pipeline
//! ```

use edgelab::core::impulse::ImpulseDesign;
use edgelab::core::sdk::FirmwareDevice;
use edgelab::core::workflow::{FlowRunner, FlowStage};
use edgelab::data::ingest::to_wav_bytes;
use edgelab::data::synth::KwsGenerator;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::faults::{RetryPolicy, VirtualClock};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::platform::registry::search;
use edgelab::platform::{Api, JobScheduler};
use edgelab::runtime::EonProgram;
use edgelab::trace::Tracer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- observability ------------------------------------------------------
    // one tracer for the whole run, on a virtual clock so the emitted
    // trace is deterministic from run to run
    let clock = VirtualClock::shared();
    let (tracer, collector) = Tracer::collecting(clock.clone());

    // --- team setup ---------------------------------------------------------
    let api = Api::new();
    let alice = api.create_user("alice");
    let bob = api.create_user("bob");
    let org = api.create_organization("acme-sensing", alice)?;
    let project = api.create_project("wakeword-v2", alice)?;
    api.add_collaborator(project, alice, bob)?;
    println!("org {org}: project {project} shared between alice and bob");

    // --- data ingestion over the API ----------------------------------------
    let generator = KwsGenerator {
        classes: vec!["go".into(), "stop".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.03,
    };
    for (ci, label) in generator.classes.clone().iter().enumerate() {
        for k in 0..16 {
            let clip = generator.generate(ci, k);
            let wav = to_wav_bytes(8_000, &clip);
            api.ingest(project, if k % 2 == 0 { alice } else { bob }, "wav", &wav, Some(label))?;
        }
    }
    // one JSON acquisition payload, as a device's HTTP uploader would send
    let json = format!(
        r#"{{"values": {:?}, "interval_ms": 0.125, "sensor": "audio", "label": "go"}}"#,
        generator.generate(0, 99)
    );
    api.ingest(project, alice, "json", json.as_bytes(), None)?;

    // --- dataset audit as a fault-tolerant flow -----------------------------
    // a required audit stage plus an optional enrichment stage that is
    // down today: the flow degrades instead of failing, and both stages
    // (and the retries inside them) are visible as spans in the trace
    let runner =
        FlowRunner::with_clock(RetryPolicy::default().with_seed(7).with_max_attempts(2), clock)
            .with_tracer(tracer.clone());
    let flow = runner.run(vec![
        FlowStage::required("dataset-audit", |_| {
            let stats = api.dataset(project, bob).map(|d| d.stats()).map_err(|e| e.to_string())?;
            if stats.total == 0 {
                return Err("empty dataset".into());
            }
            Ok(format!(
                "{} samples ({} train / {} test) across {} classes",
                stats.total,
                stats.training,
                stats.testing,
                stats.per_class.len()
            ))
        }),
        FlowStage::optional("anomaly-enrichment", |_| {
            Err("anomaly service unreachable".to_string())
        }),
    ])?;
    println!("ingested {}", flow.output("dataset-audit").unwrap_or("?"));
    println!("flow degraded stages: {:?}", flow.degraded_stages());

    // --- impulse configuration ----------------------------------------------
    let design = ImpulseDesign::new(
        "wakeword",
        4_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 24,
            sample_rate_hz: 8_000,
        }),
    )?;
    api.set_impulse(project, alice, design.clone())?;
    let v1 = api.snapshot(project, alice, "data + impulse configured")?;
    println!("saved project version {v1}");

    // --- training as a scheduled, traced job --------------------------------
    let scheduler = JobScheduler::with_clock_and_tracer(2, VirtualClock::shared(), tracer.clone());
    let dataset = api.dataset(project, alice)?;
    let spec = presets::dense_mlp(design.feature_dims()?, 2, 32);
    let job_design = design.clone();
    let job_tracer = tracer.clone();
    let job = scheduler.submit(2, move || {
        let config = TrainConfig { epochs: 10, learning_rate: 0.01, ..TrainConfig::default() };
        let trained = job_design
            .train_traced(&spec, &dataset, &config, job_tracer.clone())
            .map_err(|e| e.to_string())?;
        Ok(format!("val accuracy {:.1}%", trained.report().best_val_accuracy * 100.0))
    })?;
    println!("training job {job} finished: {}", scheduler.wait(job)?);

    // --- publish to the community registry ----------------------------------
    api.make_public(project, alice, &["audio", "keyword-spotting", "demo"])?;
    let hits = search(&api.registry_snapshot(), "keyword");
    println!("public registry search 'keyword': {} hit(s): {}", hits.len(), hits[0].name);

    // --- per-layer profile on the three paper boards ------------------------
    let dataset = api.dataset(project, alice)?;
    let trained = design.train(
        &presets::dense_mlp(design.feature_dims()?, 2, 32),
        &dataset,
        &TrainConfig { epochs: 10, learning_rate: 0.01, ..TrainConfig::default() },
    )?;
    let artifact = trained.int8_artifact()?;
    let eon = EonProgram::compile(artifact.clone())?;
    println!();
    for board in Board::paper_boards() {
        let profiler = Profiler::new(board);
        let layers = profiler.emit_profile(&tracer, &eon);
        let sum_ms: f64 = layers.iter().map(|l| l.ms).sum();
        // the per-layer rows sum exactly to the end-to-end estimate
        assert_eq!(sum_ms, profiler.inference_ms(&eon));
        println!(
            "{:<28} {:>2} layers, inference {:>8.3} ms",
            profiler.board().name,
            layers.len(),
            sum_ms
        );
    }

    // --- talk to the deployed device over serial ----------------------------
    let mut device = FirmwareDevice::new("field-unit-07", trained, artifact);
    println!();
    println!("> AT+CONFIG?");
    println!("{}", device.handle_command("AT+CONFIG?")?);
    let clip = generator.generate(1, 555); // a "stop" utterance
    for chunk in clip.chunks(500) {
        let csv: Vec<String> = chunk.iter().map(f32::to_string).collect();
        device.handle_command(&format!("AT+SAMPLE={}", csv.join(",")))?;
    }
    println!("> AT+RUNIMPULSE");
    println!("{}", device.handle_command("AT+RUNIMPULSE")?);

    // --- the trace ----------------------------------------------------------
    drop(scheduler); // flush: dead-letter anything still queued
    println!();
    println!("--- trace (JSONL, {} records) ---", collector.len());
    print!("{}", collector.jsonl());
    println!("--- metrics (Prometheus exposition) ---");
    print!("{}", tracer.prometheus());
    Ok(())
}
