//! Performance calibration (paper §4.4): tune streaming post-processing
//! for a deployed keyword spotter with a genetic algorithm, trading off
//! false accepts against false rejections.
//!
//! Builds probability traces by sliding a *real* trained classifier over
//! composed audio streams with known keyword positions, then lets the GA
//! suggest Pareto-optimal post-processing configurations.
//!
//! ```bash
//! cargo run --release --example performance_calibration
//! ```

use edgelab::calibration::postprocess::score_detections;
use edgelab::calibration::stream::trace_from_classifier;
use edgelab::calibration::{calibrate, EventDetector, GaConfig, ProbabilityTrace};
use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::dsp::{DspConfig, MfccConfig};
use edgelab::nn::{presets, train::TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // train a small two-class spotter: "go" vs background noise
    let generator = KwsGenerator {
        classes: vec!["go".into(), "noise".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.04,
    };
    let dataset = generator.dataset(16, 2);
    let design = ImpulseDesign::new(
        "spotter",
        4_000,
        DspConfig::Mfcc(MfccConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_coefficients: 10,
            n_filters: 24,
            sample_rate_hz: 8_000,
        }),
    )?;
    let spec = presets::dense_mlp(design.feature_dims()?, 2, 32);
    let trained = design.train(
        &spec,
        &dataset,
        &TrainConfig { epochs: 12, learning_rate: 0.01, ..TrainConfig::default() },
    )?;
    println!("spotter val accuracy: {:.1}%", trained.report().best_val_accuracy * 100.0);

    // compose long streams: background noise with keywords at known spots
    let mut traces: Vec<ProbabilityTrace> = Vec::new();
    let window = 4_000usize;
    let stride = 1_000usize;
    for stream_seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let mut stream: Vec<f32> = (0..80_000).map(|_| rng.gen_range(-0.05f32..0.05)).collect();
        let mut truth = Vec::new();
        for k in 0..6 {
            let pos = 6_000 + k * 12_000;
            let clip = generator.generate(0, 100 + stream_seed * 10 + k as u64);
            for (i, &v) in clip.iter().enumerate() {
                stream[pos + i] += v;
            }
            truth.push(pos);
        }
        let trace = trace_from_classifier(&stream, &truth, window, stride, |w| {
            trained.classify(w).map(|c| c.probabilities[0]).unwrap_or(0.0)
        });
        traces.push(trace);
    }
    let total_events: usize = traces.iter().map(|t| t.truth.len()).sum();
    println!("built {} streams with {total_events} true keyword events", traces.len());

    // run the genetic algorithm over post-processing configurations
    let suggestions =
        calibrate(&traces, &GaConfig { population: 20, generations: 12, ..GaConfig::default() });
    println!();
    println!("Pareto-optimal post-processing configurations (FAR vs FRR):");
    println!(
        "{:>12} {:>10} {:>12} | {:>12} {:>8} | {:>6} {:>8} {:>8}",
        "mean filter", "threshold", "suppression", "FAR/1k win", "FRR", "hits", "misses", "false+"
    );
    for s in &suggestions {
        println!(
            "{:>12} {:>10.2} {:>12} | {:>12.2} {:>7.0}% | {:>6} {:>8} {:>8}",
            s.config.mean_filter,
            s.config.threshold,
            s.config.suppression,
            s.metrics.far_per_1k,
            s.metrics.frr * 100.0,
            s.metrics.hits,
            s.metrics.misses,
            s.metrics.false_accepts
        );
    }

    // deploy the balanced configuration and sanity-check it on a new stream
    let best = suggestions
        .iter()
        .min_by(|a, b| {
            let ca = a.metrics.far_per_1k + a.metrics.frr * 100.0;
            let cb = b.metrics.far_per_1k + b.metrics.frr * 100.0;
            ca.partial_cmp(&cb).expect("finite")
        })
        .expect("at least one suggestion");
    println!();
    println!(
        "selected: mean_filter={} threshold={:.2} suppression={}",
        best.config.mean_filter, best.config.threshold, best.config.suppression
    );
    let detector = EventDetector::new(best.config);
    let fresh = &traces[0];
    let detections = detector.detect(&fresh.probs);
    let metrics = score_detections(&detections, &fresh.truth, 4, fresh.len());
    println!(
        "replay on stream 0: {} detections, {} hits / {} events, {} false accepts",
        detections.len(),
        metrics.hits,
        fresh.truth.len(),
        metrics.false_accepts
    );
    Ok(())
}
