//! Design-space exploration with the EON Tuner (paper §4.7, §5.4).
//!
//! Searches MFE/MFCC preprocessing configurations crossed with conv1d
//! stacks and a MobileNetV2-style model for a keyword-spotting task under
//! the Arduino Nano 33 BLE Sense's constraints, then prints the trials,
//! the heuristic filtering decisions and the accuracy/latency Pareto
//! front. Finishes with the Hyperband-style successive-halving search the
//! paper lists as future work.
//!
//! ```bash
//! cargo run --release --example eon_tuner
//! ```

use edgelab::data::synth::KwsGenerator;
use edgelab::device::{Board, Profiler};
use edgelab::nn::train::TrainConfig;
use edgelab::runtime::EngineKind;
use edgelab::tuner::{EonTuner, SearchSpace, TunerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = KwsGenerator::default().dataset(16, 11);
    let board = Board::nano33_ble_sense();
    println!(
        "target: {} ({} MHz, {} kB RAM, {} MB flash)",
        board.name,
        board.clock_hz / 1_000_000,
        board.ram_bytes / 1024,
        board.flash_bytes / (1024 * 1024)
    );

    let tuner = EonTuner::new(
        SearchSpace::kws_table3(16_000),
        Profiler::new(board),
        16_000,
        TunerConfig {
            trials: 6,
            train: TrainConfig { epochs: 3, batch_size: 16, ..TrainConfig::default() },
            quantize: false,
            engine: EngineKind::TflmInterpreter,
            // enforce a real-time budget: one second of audio must be
            // classified in well under a second
            max_latency_ms: Some(900.0),
            seed: 5,
        },
    );

    println!("random search (6 trained trials, 900 ms latency budget)...");
    let report = tuner.run(&dataset)?;
    println!();
    println!(
        "{:<24} {:<24} {:>6} {:>9} {:>9} {:>10}",
        "DSP", "model", "acc", "total ms", "RAM kB", "flash kB"
    );
    for t in &report.trials {
        println!(
            "{:<24} {:<24} {:>5.0}% {:>9.0} {:>9.1} {:>10.1}",
            t.dsp_name,
            t.model_name,
            t.accuracy * 100.0,
            t.total_ms(),
            t.total_ram() as f64 / 1024.0,
            t.flash as f64 / 1024.0
        );
    }
    println!();
    println!("{} candidates filtered before training:", report.filtered.len());
    for (c, why) in report.filtered.iter().take(5) {
        println!("  {} + {}: {}", c.dsp.summary(), c.model.name(), why);
    }
    println!();
    println!("accuracy / latency Pareto front:");
    for t in report.pareto_front() {
        println!(
            "  {:>4.0}% @ {:>5.0} ms — {} + {}",
            t.accuracy * 100.0,
            t.total_ms(),
            t.dsp_name,
            t.model_name
        );
    }
    if let Some(best) = report.best_fitting() {
        println!();
        println!(
            "recommended: {} + {} ({:.0}%, {:.0} ms, fits: {})",
            best.dsp_name,
            best.model_name,
            best.accuracy * 100.0,
            best.total_ms(),
            best.fits
        );
    }

    println!();
    println!("successive halving (hyperband-style), 4 candidates, 2 rounds...");
    let hb = tuner.run_hyperband(&dataset, 4, 2, 2)?;
    for t in &hb.trials {
        println!("  {:>4.0}% — {} + {}", t.accuracy * 100.0, t.dsp_name, t.model_name);
    }
    Ok(())
}
