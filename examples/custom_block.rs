//! Extensibility (paper §4.9): build an impulse around a *user-defined*
//! processing block.
//!
//! The platform lets teams plug their own feature extractors into the
//! pipeline. Here we implement a zero-crossing-rate + short-time-energy
//! block (a classic low-cost voice-activity front-end), register it, and
//! run the standard train/evaluate/profile workflow on top — the custom
//! block serializes, estimates and deploys exactly like a built-in.
//!
//! ```bash
//! cargo run --release --example custom_block
//! ```

use std::sync::Arc;

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::synth::KwsGenerator;
use edgelab::data::Split;
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{register_custom_block, CustomParams, DspBlock, DspConfig, DspCost, DspError};
use edgelab::nn::{presets, train::TrainConfig};
use edgelab::runtime::EonProgram;

/// Zero-crossing rate + short-time energy per frame: 2 features per frame.
#[derive(Debug, Clone)]
struct ZcrEnergyBlock {
    frame: usize,
}

impl DspBlock for ZcrEnergyBlock {
    fn name(&self) -> &str {
        "ZCR+Energy"
    }

    fn output_len(&self, input_len: usize) -> Result<usize, DspError> {
        let frames = input_len / self.frame;
        if frames == 0 {
            return Err(DspError::InputTooShort { required: self.frame, actual: input_len });
        }
        Ok(frames * 2)
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize), DspError> {
        Ok((self.output_len(input_len)? / 2, 2, 1))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>, DspError> {
        self.output_len(input.len())?;
        let mut out = Vec::with_capacity(input.len() / self.frame * 2);
        for frame in input.chunks_exact(self.frame) {
            let crossings = frame.windows(2).filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0)).count();
            let energy = frame.iter().map(|x| x * x).sum::<f32>() / self.frame as f32;
            out.push(crossings as f32 / self.frame as f32);
            out.push((energy.max(1e-10)).ln());
        }
        Ok(out)
    }

    fn cost(&self, input_len: usize) -> Result<DspCost, DspError> {
        Ok(DspCost {
            flops: input_len as u64 * 4,
            scratch_bytes: self.frame * 4,
            output_features: self.output_len(input_len)?,
        })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Custom {
            name: "zcr-energy".into(),
            params: vec![("frame".into(), self.frame as f32)],
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. register the block, like installing a custom-block container
    register_custom_block(
        "zcr-energy",
        Arc::new(|params: &CustomParams| {
            let frame = params
                .iter()
                .find(|(k, _)| k == "frame")
                .map(|(_, v)| *v as usize)
                .filter(|&f| f > 1)
                .ok_or_else(|| DspError::InvalidConfig("frame must be > 1".into()))?;
            Ok(Box::new(ZcrEnergyBlock { frame }) as Box<dyn DspBlock>)
        }),
    );
    println!("registered custom blocks: {:?}", edgelab::dsp::custom::custom_block_names());

    // 2. the standard workflow, with the custom block as the DSP stage
    let generator = KwsGenerator {
        classes: vec!["tone-low".into(), "tone-high".into()],
        sample_rate_hz: 8_000,
        duration_s: 0.5,
        noise: 0.03,
    };
    let dataset = generator.dataset(16, 4);
    let design = ImpulseDesign::new(
        "custom-impulse",
        4_000,
        DspConfig::Custom { name: "zcr-energy".into(), params: vec![("frame".into(), 200.0)] },
    )?;
    let dims = design.feature_dims()?;
    println!("custom block output: {dims} ({} features)", dims.len());

    let spec = presets::dense_mlp(dims, 2, 16);
    let trained = design.train(
        &spec,
        &dataset,
        &TrainConfig { epochs: 12, learning_rate: 0.01, ..TrainConfig::default() },
    )?;
    let eval = trained.evaluate(&trained.float_artifact(), &dataset, Split::Testing)?;
    println!("holdout accuracy with the custom front-end: {:.1}%", eval.accuracy * 100.0);

    // 3. it estimates and deploys like any built-in block
    let engine = EonProgram::compile(trained.int8_artifact()?)?;
    let cost = design.dsp_block()?.cost(4_000)?;
    let profile = Profiler::new(Board::nano33_ble_sense()).profile(Some(cost), &engine);
    println!(
        "estimated on {}: DSP {:.2} ms + NN {:.2} ms, fits: {}",
        profile.board, profile.dsp_ms, profile.inference_ms, profile.fit.fits
    );

    // 4. and the serialized design round-trips (the registry resolves it)
    let json = serde_json::to_string(&design)?;
    let reloaded: ImpulseDesign = serde_json::from_str(&json)?;
    assert_eq!(reloaded.feature_dims()?, dims);
    println!("serialized custom design round-trips: ok");
    Ok(())
}
