//! Predictive maintenance: vibration monitoring with spectral features and
//! unsupervised anomaly detection (paper §1, §4.3).
//!
//! Trains K-means and a GMM on *normal-only* machine vibration, then scores
//! unseen windows — including injected bearing-wear, imbalance and drift
//! faults — exactly how the platform's anomaly block is used in the field.
//!
//! ```bash
//! cargo run --release --example predictive_maintenance
//! ```

use edgelab::anomaly::{gmm::GmmConfig, kmeans::KMeansConfig, Gmm, KMeans, Standardizer};
use edgelab::data::synth::{AnomalyKind, VibrationGenerator};
use edgelab::dsp::{DspConfig, SpectralConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = VibrationGenerator::default();
    let dsp = DspConfig::Spectral(SpectralConfig {
        axes: 3,
        fft_len: 128,
        n_buckets: 16,
        sample_rate_hz: 100,
    });
    let block = dsp.build()?;
    println!("spectral block: {} features per window", block.output_len(generator.window_len())?);

    // 1. extract features from normal-operation windows only
    let normal_features: Vec<Vec<f32>> = (0..60)
        .map(|seed| block.process(&generator.generate(None, seed)))
        .collect::<Result<_, _>>()?;

    // 2. standardize (log-energy dims would otherwise dominate distances),
    //    then fit both unsupervised models on normal data only
    let scaler = Standardizer::fit(&normal_features)?;
    let normal_features = scaler.transform_all(&normal_features)?;
    let kmeans = KMeans::fit(&normal_features, KMeansConfig { k: 4, ..Default::default() })?;
    let gmm = Gmm::fit(&normal_features, GmmConfig { components: 3, ..Default::default() })?;
    println!(
        "k-means: {} clusters fitted on {} windows",
        kmeans.centroids().len(),
        normal_features.len()
    );

    // 3. score unseen windows: fresh normal plus each fault type
    let cases: Vec<(&str, Option<AnomalyKind>)> = vec![
        ("normal (unseen)", None),
        ("bearing wear (high-freq)", Some(AnomalyKind::HighFrequency)),
        ("imbalance (amplitude)", Some(AnomalyKind::Amplitude)),
        ("mount loosening (drift)", Some(AnomalyKind::Drift)),
    ];
    println!();
    println!("{:<28} {:>14} {:>16}", "condition", "k-means score", "gmm -loglik");
    let mut normal_kmeans_score = 0.0f32;
    for (label, kind) in &cases {
        // average over a few windows to stabilize the report
        let mut km_score = 0.0f32;
        let mut gmm_score = 0.0f64;
        const N: u64 = 8;
        for seed in 1000..1000 + N {
            let features = scaler.transform(&block.process(&generator.generate(*kind, seed))?)?;
            km_score += kmeans.anomaly_score(&features)?;
            gmm_score += gmm.anomaly_score(&features)?;
        }
        km_score /= N as f32;
        gmm_score /= N as f64;
        if kind.is_none() {
            normal_kmeans_score = km_score;
        }
        println!("{label:<28} {km_score:>14.2} {gmm_score:>16.1}");
    }

    // 4. pick an alert threshold from the normal score distribution
    let threshold = normal_kmeans_score * 3.0;
    println!();
    println!("suggested k-means alert threshold: {threshold:.2} (3x the normal mean)");
    for kind in [AnomalyKind::HighFrequency, AnomalyKind::Amplitude, AnomalyKind::Drift] {
        let mut alerts = 0;
        for seed in 2000..2020 {
            let features =
                scaler.transform(&block.process(&generator.generate(Some(kind), seed))?)?;
            if kmeans.anomaly_score(&features)? > threshold {
                alerts += 1;
            }
        }
        println!("  {kind:?}: {alerts}/20 windows flagged");
    }
    let mut false_alarms = 0;
    for seed in 3000..3020 {
        let features = scaler.transform(&block.process(&generator.generate(None, seed))?)?;
        if kmeans.anomaly_score(&features)? > threshold {
            false_alarms += 1;
        }
    }
    println!("false alarms on normal: {false_alarms}/20");
    Ok(())
}
