//! Heat-strain monitoring on existing hardware — the SlateSafety case
//! study (paper §8.2): a wearable already in the field must predict a
//! continuous heat-strain index from physiological signals, on-device,
//! within the memory it has left.
//!
//! Simulates physiological windows (heart-rate-like oscillation whose
//! baseline, variability and drift encode the strain index), trains the
//! platform's *regression* learn block on them, verifies the model fits
//! the existing microcontroller, and ships it through the model-registry
//! path an over-the-air update would use.
//!
//! ```bash
//! cargo run --release --example heat_strain
//! ```

use edgelab::core::impulse::ImpulseDesign;
use edgelab::data::{Dataset, Sample, SensorKind, Split};
use edgelab::device::{Board, Profiler};
use edgelab::dsp::{DspConfig, SpectralConfig};
use edgelab::nn::spec::{Activation, LayerSpec, ModelSpec};
use edgelab::nn::train::TrainConfig;
use edgelab::runtime::{EonProgram, ModelArtifact};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WINDOW: usize = 256; // 2.56 s at 100 Hz, one axis
const RATE: f32 = 100.0;

/// Synthesizes one physiological window for a given strain index in [0, 1]:
/// higher strain raises the "pulse" rate and baseline and adds drift —
/// the kind of signature a body-worn sensor sees.
fn physio_window(strain: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pulse_hz = 1.0 + 1.5 * strain; // 60 -> 150 "bpm"
    let baseline = 0.3 + 0.5 * strain;
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    (0..WINDOW)
        .map(|t| {
            let time = t as f32 / RATE;
            baseline
                + 0.4 * (std::f32::consts::TAU * pulse_hz * time + phase).sin()
                + 0.3 * strain * time / 2.56 // drift grows with strain
                + rng.gen_range(-0.05f32..0.05)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. field data: windows labeled with the measured strain index
    let mut dataset = Dataset::new("heat-strain");
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..250u64 {
        let strain: f32 = rng.gen_range(0.0..1.0);
        dataset.add(
            Sample::new(0, physio_window(strain, 1000 + i), SensorKind::Inertial)
                .with_label(&format!("{strain:.4}"))
                .with_sample_rate(100),
        );
    }
    println!("collected {} labeled physiological windows", dataset.len());

    // 2. impulse: spectral features -> small regression head
    let design = ImpulseDesign::new(
        "heat-strain",
        WINDOW,
        DspConfig::Spectral(SpectralConfig {
            axes: 1,
            fft_len: 256,
            n_buckets: 16,
            sample_rate_hz: 100,
        }),
    )?;
    let dims = design.feature_dims()?;
    let spec = ModelSpec::new(dims)
        .named("heat-strain-regressor")
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense { units: 16, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: 1, activation: Activation::None });
    let model = design.train_regression(
        &spec,
        &dataset,
        &TrainConfig { epochs: 250, learning_rate: 0.01, ..TrainConfig::default() },
    )?;

    // 3. holdout evaluation
    let eval = model.evaluate(&dataset, Split::Testing)?;
    println!(
        "holdout: MAE {:.3}, RMSE {:.3}, R² {:.3} over {} windows",
        eval.mae, eval.rmse, eval.r2, eval.count
    );
    for strain in [0.1f32, 0.5, 0.9] {
        let pred = model.predict(&physio_window(strain, 777))?;
        println!("  true strain {strain:.2} -> predicted {pred:.2}");
    }

    // 4. must run on the *existing* wearable MCU (paper: "the resulting
    //    model had to run in real-time on an existing microcontroller with
    //    limited memory capacity")
    let artifact = ModelArtifact::Float(model.model().clone());
    let engine = EonProgram::compile(artifact)?;
    let dsp_cost = design.dsp_block()?.cost(WINDOW)?;
    let board = Board::nano33_ble_sense();
    let profile = Profiler::new(board).profile(Some(dsp_cost), &engine);
    println!();
    println!(
        "on {}: {:.1} ms end-to-end, {:.1} kB RAM, {:.1} kB flash, fits: {}",
        profile.board,
        profile.total_ms,
        profile.model_ram_bytes as f64 / 1024.0,
        profile.model_flash_bytes as f64 / 1024.0,
        profile.fit.fits
    );
    let realtime = profile.total_ms < (WINDOW as f64 / RATE as f64) * 1000.0;
    println!("real-time (faster than the 2.56 s window): {realtime}");

    // 5. ship like an OTA update: registry upload as a versioned artifact
    //    (regression models serialize their Sequential directly)
    let api = edgelab::platform::Api::new();
    let ops = api.create_user("fleet-ops");
    let project = api.create_project("band-v2", ops)?;
    let payload = serde_json::to_string(model.model())?;
    api.upload_model(project, ops, "heat-strain-v2", payload)?;
    println!(
        "uploaded 'heat-strain-v2' ({} bytes) for the OTA rollout",
        api.download_model(project, ops, "heat-strain-v2")?.len()
    );
    Ok(())
}
